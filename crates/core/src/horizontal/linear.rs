//! Linear SVM over horizontally partitioned data (§IV-A).
//!
//! The global problem (1) is rewritten as the consensus problem (6): every
//! learner `m` trains `(w_m, b_m)` on its own rows under the constraint
//! `w_m = z`, `b_m = s`, relaxed by the augmented Lagrangian (8). One ADMM
//! iteration is:
//!
//! 1. **Map** — each learner solves its local dual (a box QP; the bias is
//!    quadratically penalized so no equality constraint survives — see
//!    DESIGN.md §2 for the re-derivation) and recovers `(w_m, b_m)`;
//! 2. **Reduce** — the consensus variables are the *averages*
//!    `z = mean(w_m + γ_m)`, `s = mean(b_m + β_m)`, computed through a
//!    [`SecureSum`] protocol so the reducer never sees an individual model;
//! 3. **feedback** — `z, s` are broadcast back; learners take the scaled
//!    dual step `γ_m += w_m − z`, `β_m += b_m − s`.
//!
//! Lemma 4.1/4.2: the iterates converge to the centralized SVM optimum.

use ppml_crypto::SecureSum;
use ppml_data::Dataset;
use ppml_linalg::{vecops, Matrix};
use ppml_qp::{solve_box_from, QpConfig};
use ppml_svm::LinearSvm;
use ppml_telemetry as telemetry;
use telemetry::{EventKind, NO_PARTY};

use crate::{AdmmConfig, ConvergenceHistory, Result, TrainError};

/// Result of distributed linear training.
#[derive(Debug, Clone)]
pub struct LinearOutcome {
    /// The consensus model `(z, s)` every learner agreed on.
    pub model: LinearSvm,
    /// Per-iteration trace (Fig. 4 panels a/e).
    pub history: ConvergenceHistory,
    /// Each learner's final local model `(w_m, b_m)` — these converge to
    /// `model` (Lemma 4.1) and their spread is a convergence diagnostic.
    pub local_models: Vec<LinearSvm>,
}

/// One learner's persistent ADMM state; shared between the in-process
/// driver and the MapReduce job ([`crate::jobs`]).
#[derive(Debug, Clone)]
pub(crate) struct HlLearner {
    /// Rows scaled by their labels: row `i` is `y_i · x_i` ("YX").
    yx: Matrix,
    y: Vec<f64>,
    /// Constant dual Hessian `a·YXXᵀY + (1/ρ)(Y1)(Y1)ᵀ`.
    q: Matrix,
    lambda: Vec<f64>,
    pub(crate) gamma: Vec<f64>,
    pub(crate) beta: f64,
    pub(crate) w: Vec<f64>,
    pub(crate) b: f64,
    a: f64,
    rho: f64,
    c: f64,
}

impl HlLearner {
    pub(crate) fn new(data: &Dataset, m_learners: usize, cfg: &AdmmConfig) -> Result<Self> {
        if data.is_empty() {
            return Err(TrainError::BadPartition {
                reason: "empty learner partition".to_string(),
            });
        }
        let n = data.len();
        let k = data.features();
        let rho = cfg.rho;
        let a = m_learners as f64 / (1.0 + rho * m_learners as f64);
        let yx = Matrix::from_fn(n, k, |i, j| data.label(i) * data.x()[(i, j)]);
        // Q = a·(YX)(YX)ᵀ + (1/ρ)·(y)(y)ᵀ  (labels are ±1, so Y1 = y).
        let y = data.y().to_vec();
        let gram = yx.matmul(&yx.transpose()).expect("square product");
        let q = Matrix::from_fn(n, n, |i, j| a * gram[(i, j)] + y[i] * y[j] / rho);
        Ok(HlLearner {
            yx,
            y,
            q,
            lambda: vec![0.0; n],
            gamma: vec![0.0; k],
            beta: 0.0,
            w: vec![0.0; k],
            b: 0.0,
            a,
            rho,
            c: cfg.c,
        })
    }

    /// Solves the local dual given the current consensus `(z, s)` and
    /// refreshes `(w, b)`. Warm-starts from the previous `λ`.
    pub(crate) fn local_step(&mut self, z: &[f64], s: f64, qp: &QpConfig) -> Result<()> {
        let c_vec = vecops::sub(z, &self.gamma); // z − γ
        let d = s - self.beta;
        // q = aρ·Y(Xc) + d·y − 1  where (YXc)_i = y_i·x_iᵀc = (yx·c)_i.
        let yxc = self.yx.matvec(&c_vec).expect("feature dims match");
        let lin: Vec<f64> = (0..self.y.len())
            .map(|i| self.a * self.rho * yxc[i] + d * self.y[i] - 1.0)
            .collect();
        let sol = solve_box_from(&self.q, &lin, 0.0, self.c, &self.lambda, qp)?;
        self.lambda = sol.x;
        // w = a(XᵀYλ + ρ(z−γ)) = a((YX)ᵀλ + ρc)
        let xt_y_lambda = self.yx.t_matvec(&self.lambda).expect("row dims match");
        self.w = (0..self.w.len())
            .map(|j| self.a * (xt_y_lambda[j] + self.rho * c_vec[j]))
            .collect();
        // b = (s−β) + (λᵀy)/ρ
        let t = vecops::dot(&self.lambda, &self.y);
        self.b = d + t / self.rho;
        Ok(())
    }

    /// What the learner contributes to the secure average: `[w+γ ; b+β]`.
    pub(crate) fn share(&self) -> Vec<f64> {
        let mut out = vecops::add(&self.w, &self.gamma);
        out.push(self.b + self.beta);
        out
    }

    /// Scaled-dual ascent after receiving the new consensus.
    pub(crate) fn dual_update(&mut self, z: &[f64], s: f64) {
        for ((g, &w), &zj) in self.gamma.iter_mut().zip(&self.w).zip(z) {
            *g += w - zj;
        }
        self.beta += self.b - s;
    }
}

/// Trainer for linear SVMs over horizontally partitioned data.
///
/// See the crate-level example; [`HorizontalLinearSvm::train`] uses the
/// paper's pairwise-masking protocol, [`HorizontalLinearSvm::train_with`]
/// accepts any [`SecureSum`] backend, and
/// [`crate::jobs::train_linear_on_cluster`] runs the same algorithm on a
/// [`ppml_mapreduce::Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct HorizontalLinearSvm;

impl HorizontalLinearSvm {
    /// Trains with the paper's §V protocol as the aggregation backend.
    ///
    /// `eval` enables per-iteration accuracy recording (Fig. 4e).
    ///
    /// # Errors
    ///
    /// [`TrainError::BadPartition`]/[`TrainError::BadConfig`] on malformed
    /// input; solver and protocol failures are forwarded.
    pub fn train(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
    ) -> Result<LinearOutcome> {
        let masking = ppml_crypto::PairwiseMasking::new(cfg.seed);
        Self::train_with(parts, cfg, eval, &masking)
    }

    /// Trains with an explicit secure-aggregation backend.
    ///
    /// # Errors
    ///
    /// As [`HorizontalLinearSvm::train`].
    pub fn train_with(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        aggregator: &dyn SecureSum,
    ) -> Result<LinearOutcome> {
        cfg.validate()?;
        let k = validate_parts(parts)?;
        let m = parts.len();
        let mut learners = parts
            .iter()
            .map(|p| HlLearner::new(p, m, cfg))
            .collect::<Result<Vec<_>>>()?;

        let mut z = vec![0.0; k];
        let mut s = 0.0;
        let mut history = ConvergenceHistory::default();
        for iteration in 0..cfg.max_iter {
            for learner in &mut learners {
                learner.local_step(&z, s, &cfg.qp)?;
            }
            let shares: Vec<Vec<f64>> = learners.iter().map(HlLearner::share).collect();
            let sum = aggregator.aggregate(&shares)?;
            let mut z_new = vecops::scale(&sum[..k], 1.0 / m as f64);
            let s_new = sum[k] / m as f64;
            let delta = vecops::dist_sq(&z_new, &z);
            for learner in &mut learners {
                learner.dual_update(&z_new, s_new);
            }
            std::mem::swap(&mut z, &mut z_new);
            s = s_new;
            if telemetry::enabled() {
                // Aggregate diagnostics only (the §V privacy rule): norms
                // and objective values, never coordinates.
                let primal_sq: f64 = learners
                    .iter()
                    .map(|l| vecops::dist_sq(&l.w, &z) + (l.b - s) * (l.b - s))
                    .sum();
                let hinge: f64 = parts
                    .iter()
                    .map(|p| {
                        (0..p.len())
                            .map(|i| {
                                let margin = p.label(i) * (vecops::dot(&z, p.sample(i)) + s);
                                (1.0 - margin).max(0.0)
                            })
                            .sum::<f64>()
                    })
                    .sum();
                telemetry::emit(
                    NO_PARTY,
                    EventKind::AdmmIteration {
                        iteration: iteration as u64,
                        primal_sq,
                        dual_sq: cfg.rho * cfg.rho * m as f64 * delta,
                        z_delta: delta,
                        objective: Some(0.5 * vecops::norm_sq(&z) + cfg.c * hinge),
                    },
                );
            }
            history.z_delta.push(delta);
            if let Some(ds) = eval {
                let model = LinearSvm::from_parts(z.clone(), s);
                history.accuracy.push(model.accuracy(ds));
            }
            if let Some(tol) = cfg.tol {
                if delta < tol {
                    break;
                }
            }
        }
        Ok(LinearOutcome {
            model: LinearSvm::from_parts(z, s),
            local_models: learners
                .iter()
                .map(|l| LinearSvm::from_parts(l.w.clone(), l.b))
                .collect(),
            history,
        })
    }
}

/// Shared partition validation for the horizontal trainers: non-empty list,
/// non-empty parts, consistent feature count. Returns the feature count.
pub(crate) fn validate_parts(parts: &[Dataset]) -> Result<usize> {
    let first = parts.first().ok_or_else(|| TrainError::BadPartition {
        reason: "no learners".to_string(),
    })?;
    let k = first.features();
    for (i, p) in parts.iter().enumerate() {
        if p.is_empty() {
            return Err(TrainError::BadPartition {
                reason: format!("learner {i} has no rows"),
            });
        }
        if p.features() != k {
            return Err(TrainError::BadPartition {
                reason: format!(
                    "learner {i} has {} features, learner 0 has {k}",
                    p.features()
                ),
            });
        }
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};

    fn blob_parts() -> (Vec<Dataset>, Dataset, Dataset) {
        let ds = synth::blobs(160, 1);
        let (train, test) = ds.split(0.5, 2).unwrap();
        let parts = Partition::horizontal(&train, 4, 3).unwrap();
        (parts, train, test)
    }

    #[test]
    fn converges_on_separable_data() {
        let (parts, _train, test) = blob_parts();
        let cfg = AdmmConfig::default().with_max_iter(30);
        let out = HorizontalLinearSvm::train(&parts, &cfg, Some(&test)).unwrap();
        assert!(
            out.model.accuracy(&test) > 0.95,
            "{}",
            out.model.accuracy(&test)
        );
        assert_eq!(out.history.len(), 30);
        assert_eq!(out.history.accuracy.len(), 30);
        // z movement must shrink by orders of magnitude.
        let first = out.history.z_delta[0];
        let last = out.history.final_delta().unwrap();
        assert!(last < first * 1e-3, "no convergence: {first} -> {last}");
    }

    #[test]
    fn local_models_reach_consensus() {
        let (parts, _, _) = blob_parts();
        let cfg = AdmmConfig::default().with_max_iter(60);
        let out = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        for lm in &out.local_models {
            let d: f64 = lm
                .weights()
                .iter()
                .zip(out.model.weights())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(d < 1e-4, "learner model strayed from consensus by {d}");
        }
    }

    #[test]
    fn matches_centralized_svm() {
        // Lemma 4.1: the consensus optimum is the centralized optimum, so
        // the primal objective ½‖w‖² + C·Σ hinge of the distributed model
        // must approach the centralized minimum (it can never beat it).
        let ds = synth::cancer_like(240, 5);
        let (train, test) = ds.split(0.5, 6).unwrap();
        // ρ = 10 converges faster in objective than the paper's ρ = 100
        // (which privileges consensus speed); 200 iterations suffice here.
        let cfg = AdmmConfig::default().with_rho(10.0).with_max_iter(200);
        let objective = |w: &[f64], b: f64| {
            let norm = 0.5 * vecops::norm_sq(w);
            let hinge: f64 = (0..train.len())
                .map(|i| {
                    let margin = train.label(i) * (vecops::dot(w, train.sample(i)) + b);
                    (1.0 - margin).max(0.0)
                })
                .sum();
            norm + cfg.c * hinge
        };
        let central = ppml_svm::LinearSvm::train(&train, cfg.c).unwrap();
        let parts = Partition::horizontal(&train, 4, 7).unwrap();
        let out = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        let obj_c = objective(central.weights(), central.bias());
        let obj_d = objective(out.model.weights(), out.model.bias());
        assert!(
            obj_d >= obj_c - 1e-6 * obj_c.abs(),
            "distributed {obj_d} beat the optimum {obj_c}?"
        );
        assert!(
            obj_d < obj_c * 1.03 + 1e-9,
            "distributed objective {obj_d} too far above optimum {obj_c}"
        );
        // And test accuracies are in the same ballpark.
        let (acc_c, acc_d) = (central.accuracy(&test), out.model.accuracy(&test));
        assert!(
            (acc_c - acc_d).abs() < 0.08,
            "centralized {acc_c} vs distributed {acc_d}"
        );
    }

    #[test]
    fn single_class_partition_is_tolerated() {
        // Random assignment can hand one learner a single class; the
        // penalized-bias dual has no equality constraint, so this must work.
        let ds = synth::blobs(40, 9);
        let pos_idx: Vec<usize> = (0..40).filter(|&i| ds.label(i) > 0.0).collect();
        let neg_idx: Vec<usize> = (0..40).filter(|&i| ds.label(i) < 0.0).collect();
        let parts = vec![ds.select(&pos_idx), ds.select(&neg_idx)];
        let cfg = AdmmConfig::default().with_max_iter(40);
        let out = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        assert!(out.model.accuracy(&ds) > 0.9);
    }

    #[test]
    fn early_stop_honors_tol() {
        let (parts, _, _) = blob_parts();
        let cfg = AdmmConfig::default().with_max_iter(100).with_tol(1e-6);
        let out = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        assert!(out.history.len() < 100, "tol did not stop early");
        assert!(out.history.final_delta().unwrap() < 1e-6);
    }

    #[test]
    fn aggregator_backends_agree() {
        let (parts, _, _) = blob_parts();
        let cfg = AdmmConfig::default().with_max_iter(10);
        let a = HorizontalLinearSvm::train_with(
            &parts,
            &cfg,
            None,
            &ppml_crypto::PairwiseMasking::new(1),
        )
        .unwrap();
        let b = HorizontalLinearSvm::train_with(
            &parts,
            &cfg,
            None,
            &ppml_crypto::AdditiveSharing::new(2),
        )
        .unwrap();
        let c =
            HorizontalLinearSvm::train_with(&parts, &cfg, None, &ppml_crypto::PlainSum).unwrap();
        for ((wa, wb), wc) in a
            .model
            .weights()
            .iter()
            .zip(b.model.weights())
            .zip(c.model.weights())
        {
            // Fixed-point protocols quantize at 2⁻³²; they must agree with
            // the plain sum to that resolution (accumulated over iters).
            assert!((wa - wb).abs() < 1e-6);
            assert!((wa - wc).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_malformed_partitions() {
        assert!(matches!(
            HorizontalLinearSvm::train(&[], &AdmmConfig::default(), None),
            Err(TrainError::BadPartition { .. })
        ));
        let ds = synth::blobs(10, 1);
        let empty = Dataset::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert!(
            HorizontalLinearSvm::train(&[ds.clone(), empty], &AdmmConfig::default(), None).is_err()
        );
        let wrong_dim = synth::cancer_like(10, 1);
        assert!(
            HorizontalLinearSvm::train(&[ds, wrong_dim], &AdmmConfig::default(), None).is_err()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (parts, _, _) = blob_parts();
        let cfg = AdmmConfig::default().with_max_iter(5).with_seed(11);
        let a = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        let b = HorizontalLinearSvm::train(&parts, &cfg, None).unwrap();
        assert_eq!(a.model.weights(), b.model.weights());
        assert_eq!(a.history, b.history);
    }
}
