//! Privacy-preserving multiclass training via one-vs-rest (extension).
//!
//! The paper evaluates optdigits as a binary task, but the workload is
//! natively 10-class. The standard LIBSVM-style reduction trains one binary
//! classifier per class and predicts by arg-max decision value; this module
//! applies it on top of the horizontally partitioned linear trainer, so the
//! full multiclass pipeline inherits the binary scheme's privacy profile
//! (each class's model is just another consensus run over the same
//! partitions — nothing new leaves any learner).

use ppml_data::multiclass::MulticlassDataset;
use ppml_data::Dataset;
use ppml_svm::LinearSvm;

use crate::{AdmmConfig, HorizontalLinearSvm, Result, TrainError};

/// A one-vs-rest ensemble of privacy-preserving linear SVMs.
///
/// # Example
///
/// ```
/// use ppml_core::multiclass::OneVsRestSvm;
/// use ppml_core::AdmmConfig;
/// use ppml_data::multiclass::digits_like;
///
/// # fn main() -> Result<(), ppml_core::TrainError> {
/// let ds = digits_like(200, 4, 5);
/// let (train, test) = ds.split(0.5, 6)?;
/// let cfg = AdmmConfig::default().with_max_iter(30);
/// let model = OneVsRestSvm::train_horizontal(&train, 4, &cfg)?;
/// assert!(model.accuracy(&test) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OneVsRestSvm {
    models: Vec<LinearSvm>,
}

impl OneVsRestSvm {
    /// Trains one distributed binary SVM per class over horizontally
    /// partitioned data: the multiclass rows are split across `learners`
    /// once, and every class's one-vs-rest labeling reuses that partition
    /// (as a real federation would — the records don't move between runs).
    ///
    /// # Errors
    ///
    /// [`TrainError::BadPartition`]/[`TrainError::BadConfig`] plus anything
    /// the binary trainer reports.
    pub fn train_horizontal(
        data: &MulticlassDataset,
        learners: usize,
        cfg: &AdmmConfig,
    ) -> Result<Self> {
        cfg.validate()?;
        if data.is_empty() {
            return Err(TrainError::BadPartition {
                reason: "empty multiclass dataset".to_string(),
            });
        }
        // One fixed row partition, reused for every class.
        let row_sets = partition_rows(data.len(), learners, cfg.seed)?;
        let mut models = Vec::with_capacity(data.classes() as usize);
        for class in 0..data.classes() {
            let binary = data.one_vs_rest(class)?;
            let parts: Vec<Dataset> = row_sets.iter().map(|idx| binary.select(idx)).collect();
            let outcome = HorizontalLinearSvm::train(&parts, cfg, None)?;
            models.push(outcome.model);
        }
        Ok(OneVsRestSvm { models })
    }

    /// Trains centrally (baseline for the distributed ensemble).
    ///
    /// # Errors
    ///
    /// As the underlying [`LinearSvm::train`].
    pub fn train_centralized(data: &MulticlassDataset, c: f64) -> Result<Self> {
        let mut models = Vec::with_capacity(data.classes() as usize);
        for class in 0..data.classes() {
            let binary = data.one_vs_rest(class)?;
            models.push(LinearSvm::train(&binary, c)?);
        }
        Ok(OneVsRestSvm { models })
    }

    /// Number of classes.
    pub fn classes(&self) -> u32 {
        self.models.len() as u32
    }

    /// Per-class decision values for a sample.
    ///
    /// # Errors
    ///
    /// [`TrainError::Svm`] on a feature-dimension mismatch.
    pub fn decisions(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.models
            .iter()
            .map(|m| m.decision(x).map_err(TrainError::from))
            .collect()
    }

    /// Predicted class (arg-max decision value).
    ///
    /// # Errors
    ///
    /// As [`OneVsRestSvm::decisions`].
    pub fn predict(&self, x: &[f64]) -> Result<u32> {
        let d = self.decisions(x)?;
        Ok(d.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite decisions"))
            .map(|(i, _)| i as u32)
            .expect("at least one class"))
    }

    /// Multiclass accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimensions differ.
    pub fn accuracy(&self, data: &MulticlassDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| {
                self.predict(data.sample(i)).expect("dimension checked") == data.labels()[i]
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

/// Random row assignment shared across the per-class runs.
fn partition_rows(n: usize, learners: usize, seed: u64) -> Result<Vec<Vec<usize>>> {
    if learners == 0 || learners > n {
        return Err(TrainError::BadPartition {
            reason: format!("{learners} learners for {n} rows"),
        });
    }
    let mut rng = ppml_data::rng::seeded(seed ^ 0x0517);
    let perm = ppml_data::rng::permutation(n, &mut rng);
    let mut sets = vec![Vec::new(); learners];
    for (pos, &row) in perm.iter().enumerate() {
        if pos < learners {
            sets[pos].push(row);
        } else {
            sets[rng.index(learners)].push(row);
        }
    }
    Ok(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::multiclass::digits_like;

    #[test]
    fn distributed_ovr_matches_centralized() {
        let ds = digits_like(300, 5, 11);
        let (train, test) = ds.split(0.5, 12).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(40);
        let central = OneVsRestSvm::train_centralized(&train, cfg.c).unwrap();
        let distributed = OneVsRestSvm::train_horizontal(&train, 4, &cfg).unwrap();
        let ac = central.accuracy(&test);
        let ad = distributed.accuracy(&test);
        assert!(ac > 0.9, "central multiclass {ac}");
        assert!(ad > ac - 0.08, "distributed {ad} vs central {ac}");
        assert_eq!(distributed.classes(), 5);
    }

    #[test]
    fn predictions_are_valid_classes() {
        let ds = digits_like(100, 3, 13);
        let cfg = AdmmConfig::default().with_max_iter(15);
        let model = OneVsRestSvm::train_horizontal(&ds, 2, &cfg).unwrap();
        for i in 0..ds.len() {
            assert!(model.predict(ds.sample(i)).unwrap() < 3);
        }
    }

    #[test]
    fn rejects_empty_and_bad_partitioning() {
        let ds = digits_like(4, 2, 14);
        let cfg = AdmmConfig::default().with_max_iter(2);
        assert!(OneVsRestSvm::train_horizontal(&ds, 10, &cfg).is_err());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let ds = digits_like(60, 3, 15);
        let cfg = AdmmConfig::default().with_max_iter(5);
        let model = OneVsRestSvm::train_horizontal(&ds, 2, &cfg).unwrap();
        assert!(model.decisions(&[0.0; 3]).is_err());
    }
}
