//! Crash-consistent coordinator checkpoints (ISSUE 5 tentpole, piece 1).
//!
//! After every accepted consensus round the coordinator can snapshot the
//! whole of its recoverable state — round index, consensus iterate,
//! re-key epoch, roster and per-party liveness, convergence history and
//! byte counters — into a single self-describing file. A coordinator that
//! dies mid-run is then restarted with `--resume PATH` and continues the
//! run from the last accepted round; see [`crate::distributed`] for the
//! resume protocol and `DESIGN.md` §10 for the atomicity and privacy
//! arguments.
//!
//! # File format
//!
//! ```text
//! magic "PPMLCKPT" (8) · version u16 · payload_len u32 · payload · crc32
//! ```
//!
//! The payload is the [`Wire`] encoding of the fields in declaration
//! order; the trailing CRC (same polynomial as the frame codec) covers
//! everything before it. Loading validates magic, version, length, CRC
//! and the cross-field invariants, so a torn or tampered file is rejected
//! rather than resumed from.
//!
//! # Atomicity
//!
//! [`Checkpoint::save`] never writes the target path directly: it writes
//! `<path>.tmp`, fsyncs it, renames it over the target, and fsyncs the
//! parent directory. A crash at any point leaves either the previous
//! complete checkpoint or the new complete checkpoint at `path` — never a
//! torn mix. A stray `.tmp` from an interrupted write is garbage to be
//! overwritten, never read.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use ppml_transport::{crc32, Reader, Wire};

use crate::error::TrainError;
use crate::Result;

/// Leading magic of every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PPMLCKPT";
/// Format version written by this build; loading rejects anything else.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Everything the coordinator needs to continue a run after a crash.
///
/// `z`/`s` are the consensus iterate *after* round `next_round - 1` was
/// accepted, i.e. exactly the state the round-`next_round` broadcast
/// carries. No learner share, mask or raw datum ever enters a
/// checkpoint — the file holds the same already-aggregated values a
/// coordinator legitimately sees.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Telemetry run id gossiped before round 0 (0 when telemetry was
    /// off); a resumed coordinator re-gossips it so the pre- and
    /// post-crash streams correlate into one timeline.
    pub run_id: u64,
    /// Roster size `m` the run started with (coordinator is party `m`).
    pub learners: u32,
    /// Shared feature count `k` (shares are `k + 1` long).
    pub features: u32,
    /// Master seed — pair seeds, and therefore the §V masks, derive from
    /// it, so a resume under a different seed must be refused.
    pub seed: u64,
    /// The next round to broadcast (one past the last accepted round).
    pub next_round: u64,
    /// Re-key epoch at the time of the snapshot.
    pub epoch: u64,
    /// Consensus weight iterate.
    pub z: Vec<f64>,
    /// Consensus intercept iterate.
    pub s: f64,
    /// Parties still alive at the snapshot, ascending.
    pub alive: Vec<u32>,
    /// Parties declared dead, in drop order.
    pub dropped: Vec<u32>,
    /// Per-round `‖z_{t+1} − z_t‖²` so far.
    pub z_delta: Vec<f64>,
    /// Per-round evaluation accuracy so far (empty when not evaluating).
    pub accuracy: Vec<f64>,
    /// Coordinator-side broadcast bytes so far.
    pub bytes_broadcast: u64,
    /// Accepted-share bytes so far.
    pub bytes_shuffled: u64,
}

fn ckpt_err(reason: impl Into<String>) -> TrainError {
    TrainError::Checkpoint {
        reason: reason.into(),
    }
}

impl Checkpoint {
    /// Serializes the checkpoint into its file representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.run_id.encode_into(&mut payload);
        self.learners.encode_into(&mut payload);
        self.features.encode_into(&mut payload);
        self.seed.encode_into(&mut payload);
        self.next_round.encode_into(&mut payload);
        self.epoch.encode_into(&mut payload);
        self.z.encode_into(&mut payload);
        self.s.encode_into(&mut payload);
        self.alive.encode_into(&mut payload);
        self.dropped.encode_into(&mut payload);
        self.z_delta.encode_into(&mut payload);
        self.accuracy.encode_into(&mut payload);
        self.bytes_broadcast.encode_into(&mut payload);
        self.bytes_shuffled.encode_into(&mut payload);

        let mut out = Vec::with_capacity(8 + 2 + 4 + payload.len() + 4);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a checkpoint file image.
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] on bad magic, unknown version, length
    /// mismatch, CRC mismatch, truncation, trailing bytes or violated
    /// cross-field invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint> {
        if bytes.len() < 8 + 2 + 4 + 4 {
            return Err(ckpt_err("file too short to be a checkpoint"));
        }
        if &bytes[..8] != CHECKPOINT_MAGIC {
            return Err(ckpt_err("bad magic: not a checkpoint file"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("len 4"));
        if crc32(body) != stored {
            return Err(ckpt_err("crc mismatch: checkpoint is torn or corrupt"));
        }
        let mut r = Reader::new(&body[8..]);
        let version = r.u16().map_err(|e| ckpt_err(e.to_string()))?;
        if version != CHECKPOINT_VERSION {
            return Err(ckpt_err(format!(
                "unsupported checkpoint version {version} (this build reads \
                 {CHECKPOINT_VERSION})"
            )));
        }
        let payload_len = r.u32().map_err(|e| ckpt_err(e.to_string()))? as usize;
        if payload_len != r.remaining() {
            return Err(ckpt_err(format!(
                "payload length mismatch: header says {payload_len}, file has {}",
                r.remaining()
            )));
        }
        let wire = |e: ppml_transport::WireError| ckpt_err(e.to_string());
        let ckpt = Checkpoint {
            run_id: r.u64().map_err(wire)?,
            learners: r.u32().map_err(wire)?,
            features: r.u32().map_err(wire)?,
            seed: r.u64().map_err(wire)?,
            next_round: r.u64().map_err(wire)?,
            epoch: r.u64().map_err(wire)?,
            z: r.vec_f64().map_err(wire)?,
            s: r.f64().map_err(wire)?,
            alive: r.vec_u32().map_err(wire)?,
            dropped: r.vec_u32().map_err(wire)?,
            z_delta: r.vec_f64().map_err(wire)?,
            accuracy: r.vec_f64().map_err(wire)?,
            bytes_broadcast: r.u64().map_err(wire)?,
            bytes_shuffled: r.u64().map_err(wire)?,
        };
        if r.remaining() != 0 {
            return Err(ckpt_err(format!(
                "{} trailing bytes after the payload",
                r.remaining()
            )));
        }
        ckpt.check_invariants()?;
        Ok(ckpt)
    }

    fn check_invariants(&self) -> Result<()> {
        let m = self.learners;
        if m == 0 {
            return Err(ckpt_err("roster is empty"));
        }
        if self.z.len() != self.features as usize {
            return Err(ckpt_err(format!(
                "iterate length {} does not match feature count {}",
                self.z.len(),
                self.features
            )));
        }
        if self.alive.is_empty() {
            return Err(ckpt_err("no party alive — nothing to resume"));
        }
        if self.alive.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ckpt_err("alive set is not strictly ascending"));
        }
        if self.alive.iter().chain(&self.dropped).any(|&p| p >= m) {
            return Err(ckpt_err("party id out of roster range"));
        }
        if self.alive.iter().any(|p| self.dropped.contains(p)) {
            return Err(ckpt_err("a party is both alive and dropped"));
        }
        if self.next_round as usize != self.z_delta.len() {
            return Err(ckpt_err(format!(
                "next_round {} disagrees with {} recorded rounds",
                self.next_round,
                self.z_delta.len()
            )));
        }
        Ok(())
    }

    /// Refuses to resume a run whose identity differs from this process's
    /// configuration: roster size, feature count and mask seed must all
    /// match, or masks would fail to cancel and shares to line up.
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] naming the mismatched field.
    pub fn check_compatible(&self, learners: usize, features: usize, seed: u64) -> Result<()> {
        if self.learners as usize != learners {
            return Err(ckpt_err(format!(
                "checkpoint is for {} learners, this run has {learners}",
                self.learners
            )));
        }
        if self.features as usize != features {
            return Err(ckpt_err(format!(
                "checkpoint has {} features, this run has {features}",
                self.features
            )));
        }
        if self.seed != seed {
            return Err(ckpt_err(
                "checkpoint was written under a different mask seed",
            ));
        }
        Ok(())
    }

    /// Atomically writes the checkpoint to `path` (write `<path>.tmp` →
    /// fsync → rename → fsync directory) and returns the encoded size.
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] wrapping the failing I/O step.
    pub fn save(&self, path: &Path) -> Result<usize> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = Path::new(&tmp);
        let io =
            |step: &str, e: std::io::Error| ckpt_err(format!("{step} {}: {e}", path.display()));
        let mut file = File::create(tmp).map_err(|e| io("create", e))?;
        file.write_all(&bytes).map_err(|e| io("write", e))?;
        file.sync_all().map_err(|e| io("fsync", e))?;
        drop(file);
        fs::rename(tmp, path).map_err(|e| io("rename", e))?;
        // Durability of the rename itself: fsync the containing directory
        // (a no-op error on platforms where directories cannot be synced).
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes.len())
    }

    /// Loads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] on I/O failure or any validation
    /// failure of [`Checkpoint::from_bytes`].
    pub fn load(path: &Path) -> Result<Checkpoint> {
        let bytes =
            fs::read(path).map_err(|e| ckpt_err(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            run_id: 0xfeed_beef,
            learners: 3,
            features: 5,
            seed: 11,
            next_round: 4,
            epoch: 2,
            z: vec![0.25, -1.5, 0.0, 3.75, 1e-9],
            s: -0.125,
            alive: vec![0, 2],
            dropped: vec![1],
            z_delta: vec![1.0, 0.5, 0.25, 0.125],
            accuracy: vec![],
            bytes_broadcast: 4096,
            bytes_shuffled: 2048,
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ppml-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let ckpt = sample();
        assert_eq!(Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap(), ckpt);
    }

    #[test]
    fn save_load_round_trip_and_no_tmp_leftover() {
        let path = tmp_path("roundtrip");
        let ckpt = sample();
        let n = ckpt.save(&path).expect("save");
        assert_eq!(n, ckpt.to_bytes().len());
        assert_eq!(Checkpoint::load(&path).expect("load"), ckpt);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !Path::new(&tmp).exists(),
            "temp file must be renamed away on success"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_atomically_replaces_garbage() {
        let path = tmp_path("replace");
        fs::write(&path, b"not a checkpoint at all").expect("seed garbage");
        assert!(Checkpoint::load(&path).is_err());
        sample().save(&path).expect("save over garbage");
        assert_eq!(Checkpoint::load(&path).expect("load"), sample());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        // Flipping any one bit must be caught by magic, version, length
        // or CRC validation — never silently accepted.
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            assert!(
                Checkpoint::from_bytes(&evil).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = sample().to_bytes();
        bytes[8] = (CHECKPOINT_VERSION + 1) as u8; // version lives after magic
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
    }

    #[test]
    fn cross_field_invariants_are_enforced() {
        let broken = |f: &dyn Fn(&mut Checkpoint)| {
            let mut c = sample();
            f(&mut c);
            Checkpoint::from_bytes(&c.to_bytes())
        };
        assert!(broken(&|c| c.z.pop().map(|_| ()).unwrap()).is_err());
        assert!(broken(&|c| c.alive.clear()).is_err());
        assert!(broken(&|c| c.alive = vec![2, 0]).is_err());
        assert!(broken(&|c| c.alive = vec![0, 7]).is_err());
        assert!(broken(&|c| c.dropped = vec![0]).is_err());
        assert!(broken(&|c| c.next_round = 9).is_err());
        assert!(broken(&|c| c.learners = 0).is_err());
    }

    #[test]
    fn compatibility_gate_names_the_mismatch() {
        let c = sample();
        assert!(c.check_compatible(3, 5, 11).is_ok());
        assert!(c
            .check_compatible(4, 5, 11)
            .unwrap_err()
            .to_string()
            .contains("learners"));
        assert!(c
            .check_compatible(3, 6, 11)
            .unwrap_err()
            .to_string()
            .contains("features"));
        assert!(c
            .check_compatible(3, 5, 12)
            .unwrap_err()
            .to_string()
            .contains("seed"));
    }

    #[test]
    fn loading_a_missing_file_is_a_checkpoint_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/ppml.ckpt")).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint { .. }));
    }
}
