//! Secure distributed preprocessing.
//!
//! §VI's footnote concedes that feature selection/scaling "is also a
//! centralized operation" in the paper. This module provides the closest
//! distributed primitive with the same trust profile as training itself:
//! **secure standardization**. Each learner submits only its local
//! `(count, Σx_j, Σx_j²)` per feature through a [`SecureSum`] protocol; the
//! aggregate yields global means and variances without revealing any
//! learner's moments, and every learner then scales its partition locally.
//!
//! The aggregate `(n, Σx, Σx²)` discloses exactly the global first and
//! second moments — strictly less than what the final trained model
//! discloses, so the scheme's overall leakage profile is unchanged.

use ppml_crypto::{FixedPointCodec, PairwiseMasking, SecureSum};
use ppml_data::Dataset;

use crate::{Result, TrainError};

/// Global per-feature `(mean, std)` fitted through secure aggregation.
///
/// # Example
///
/// ```
/// use ppml_core::preprocessing::SecureStandardizer;
/// use ppml_data::{synth, Partition};
///
/// # fn main() -> Result<(), ppml_core::TrainError> {
/// let ds = synth::cancer_like(200, 3);
/// let parts = Partition::horizontal(&ds, 4, 5)?;
/// let scaler = SecureStandardizer::fit(&parts, 42)?;
/// let scaled: Vec<_> = parts
///     .iter()
///     .map(|p| scaler.transform(p))
///     .collect::<Result<_, _>>()?;
/// assert_eq!(scaled.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SecureStandardizer {
    stats: Vec<(f64, f64)>,
    total_count: usize,
}

impl SecureStandardizer {
    /// Fits global moments over horizontally partitioned data using the
    /// paper's masking protocol (seeded by `seed`).
    ///
    /// # Errors
    ///
    /// [`TrainError::BadPartition`] for empty/inconsistent partitions;
    /// protocol failures are forwarded.
    pub fn fit(parts: &[Dataset], seed: u64) -> Result<Self> {
        // Wider dynamic range than the default codec: second moments of a
        // few thousand unstandardized samples can reach ~1e7.
        let masking = PairwiseMasking::new(seed).with_codec(FixedPointCodec::new(20));
        Self::fit_with(parts, &masking)
    }

    /// Fits with an explicit aggregation backend.
    ///
    /// # Errors
    ///
    /// As [`SecureStandardizer::fit`].
    pub fn fit_with(parts: &[Dataset], aggregator: &dyn SecureSum) -> Result<Self> {
        let k = crate::horizontal::linear::validate_parts(parts)?;
        // Each learner's message: [count, Σx_0.., Σx_{k-1}, Σx²_0.., Σx²_{k-1}]
        let contributions: Vec<Vec<f64>> = parts
            .iter()
            .map(|p| {
                let mut msg = vec![p.len() as f64];
                let mut sums = vec![0.0; k];
                let mut sumsq = vec![0.0; k];
                for i in 0..p.len() {
                    for (j, &v) in p.sample(i).iter().enumerate() {
                        sums[j] += v;
                        sumsq[j] += v * v;
                    }
                }
                msg.extend_from_slice(&sums);
                msg.extend_from_slice(&sumsq);
                msg
            })
            .collect();
        let agg = aggregator.aggregate(&contributions)?;
        let n = agg[0];
        if n < 2.0 {
            return Err(TrainError::BadPartition {
                reason: "fewer than two samples in total".to_string(),
            });
        }
        let stats = (0..k)
            .map(|j| {
                let mean = agg[1 + j] / n;
                let var = (agg[1 + k + j] / n - mean * mean).max(0.0);
                (mean, var.sqrt().max(1e-12))
            })
            .collect();
        Ok(SecureStandardizer {
            stats,
            total_count: n.round() as usize,
        })
    }

    /// The fitted per-feature `(mean, std)`.
    pub fn stats(&self) -> &[(f64, f64)] {
        &self.stats
    }

    /// Total sample count across all learners (the only per-learner-free
    /// scalar the protocol reveals).
    pub fn total_count(&self) -> usize {
        self.total_count
    }

    /// Applies the global transform to a dataset (a learner's partition or
    /// a test set).
    ///
    /// # Errors
    ///
    /// [`TrainError::Data`] when the feature counts disagree.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        Ok(data.apply_scaling(&self.stats)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};

    fn parts() -> (Dataset, Vec<Dataset>) {
        let ds = synth::cancer_like(240, 13);
        let parts = Partition::horizontal(&ds, 4, 14).unwrap();
        (ds, parts)
    }

    #[test]
    fn secure_stats_match_centralized_stats() {
        let (ds, parts) = parts();
        let scaler = SecureStandardizer::fit(&parts, 1).unwrap();
        let (_, central_stats) = ds.standardize().unwrap();
        assert_eq!(scaler.total_count(), ds.len());
        for ((ms, ss), (mc, sc)) in scaler.stats().iter().zip(&central_stats) {
            assert!((ms - mc).abs() < 1e-4, "mean {ms} vs {mc}");
            assert!((ss - sc).abs() < 1e-4, "std {ss} vs {sc}");
        }
    }

    #[test]
    fn transformed_union_is_standardized() {
        let (_, parts) = parts();
        let scaler = SecureStandardizer::fit(&parts, 2).unwrap();
        // Pool the transformed partitions and check global moments.
        let mut all: Vec<Vec<f64>> = Vec::new();
        for p in &parts {
            let t = scaler.transform(p).unwrap();
            for i in 0..t.len() {
                all.push(t.sample(i).to_vec());
            }
        }
        let n = all.len() as f64;
        for j in 0..all[0].len() {
            let mean: f64 = all.iter().map(|r| r[j]).sum::<f64>() / n;
            let var: f64 = all
                .iter()
                .map(|r| (r[j] - mean) * (r[j] - mean))
                .sum::<f64>()
                / n;
            assert!(mean.abs() < 1e-6, "feature {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "feature {j} var {var}");
        }
    }

    #[test]
    fn plain_and_masked_fit_agree() {
        let (_, parts) = parts();
        let secure = SecureStandardizer::fit(&parts, 3).unwrap();
        let plain = SecureStandardizer::fit_with(&parts, &ppml_crypto::PlainSum).unwrap();
        for ((ms, ss), (mp, sp)) in secure.stats().iter().zip(plain.stats()) {
            assert!((ms - mp).abs() < 1e-4);
            assert!((ss - sp).abs() < 1e-4);
        }
    }

    #[test]
    fn scaling_improves_conditioning_for_training() {
        // Blow one feature's scale up; training on scaled data must not be
        // worse than on the raw data.
        let (ds, _) = parts();
        let raw = Dataset::new(
            ppml_linalg::Matrix::from_fn(ds.len(), ds.features(), |i, j| {
                ds.x()[(i, j)] * if j == 0 { 1000.0 } else { 1.0 }
            }),
            ds.y().to_vec(),
        )
        .unwrap();
        let parts = Partition::horizontal(&raw, 4, 15).unwrap();
        let scaler = SecureStandardizer::fit(&parts, 4).unwrap();
        let scaled: Vec<Dataset> = parts.iter().map(|p| scaler.transform(p).unwrap()).collect();
        let cfg = crate::AdmmConfig::default().with_max_iter(40);
        let on_scaled = crate::HorizontalLinearSvm::train(&scaled, &cfg, None).unwrap();
        let eval = scaler.transform(&raw).unwrap();
        assert!(on_scaled.model.accuracy(&eval) > 0.9);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(SecureStandardizer::fit(&[], 0).is_err());
    }

    #[test]
    fn transform_validates_dimensions() {
        let (_, parts) = parts();
        let scaler = SecureStandardizer::fit(&parts, 5).unwrap();
        let other = synth::blobs(10, 1); // 2 features ≠ 9
        assert!(scaler.transform(&other).is_err());
    }
}
