//! Pluggable secure-aggregation backends for distributed training
//! (ISSUE 8 tentpole).
//!
//! [`crate::distributed`] hard-wires the §V pairwise-masking scheme into
//! its round loop. This module lifts the aggregation step behind the
//! [`SecureAggregator`] trait and adds two more wire-backed protocols, so
//! a run can pick its dropout/threat trade-off per deployment:
//!
//! * **`pairwise`** ([`PairwiseBackend`]) — the §V default, delegating to
//!   the untouched [`crate::distributed`] machinery. Dropout costs one
//!   re-key round ([`ppml_transport::Message::Rekey`]); byte- and
//!   bit-identical to calling [`crate::distributed::coordinate_linear`]
//!   directly.
//! * **`shamir`** ([`ShamirBackend`]) — `t`-of-`m` Shamir threshold
//!   sharing over GF(2⁶¹−1). Each learner splits its share across the
//!   *original* roster and the coordinator relays blinded share blocks,
//!   so a learner that dies mid-collect (after distributing, before
//!   submitting) costs **no re-key round** and its input still lands in
//!   the round sum — reconstruction needs any `t` survivors.
//! * **`paillier`** ([`PaillierBackend`]) — additively homomorphic
//!   encryption. The coordinator folds ciphertexts with only the public
//!   key; learner 0 acts as the key authority and decrypts the aggregate
//!   alone. The expensive baseline the paper's masking protocol is
//!   designed to avoid, here as a live wire protocol for comparison
//!   (`secagg_bench` quantifies the gap).
//!
//! # Wire shapes per round
//!
//! | backend | learner → coordinator | coordinator → learner |
//! |---|---|---|
//! | pairwise | `MaskedShare` | `Consensus` (+ `Rekey` on dropout) |
//! | shamir | `ShamirDist`, then `Shares` | `Consensus`, `ShamirCollect` |
//! | paillier | `CipherShare` (authority also `CipherSum`) | `Consensus` (authority also `CipherAgg`) |
//!
//! # Shamir round anatomy
//!
//! 1. Every learner Shamir-splits each fixed-point coordinate `t`-of-`m`
//!    (share `x = party + 1`), keeps its own block, blinds each peer
//!    block with a deterministic ordered-pair pad stream, and sends the
//!    blinded blocks to the coordinator in one [`ShamirDist`] frame.
//! 2. At the round deadline the coordinator fixes the contributor set
//!    `C` (absentees are dropped — **no re-key frame**, the remaining
//!    shares stay valid) and relays to each `p ∈ C` the blocks destined
//!    for it ([`ShamirCollect`]). The pads keep the relayed shares
//!    opaque to the coordinator; `t − 1` colluding learners still learn
//!    nothing about another learner's input.
//! 3. Survivors unblind, field-sum (a sum of shares at one `x` is a
//!    share of the sum, by linearity), and submit via [`Shares`]. The
//!    coordinator Lagrange-reconstructs from the first `t` submissions
//!    and divides by `|C|`. A learner dying between distribution and
//!    submission therefore still contributes its input to the round.
//!
//! Because GF(2⁶¹−1) sums of [`ThresholdSharing`]-encoded values decode
//! to exactly the integer the pairwise path computes in `Z_{2⁶⁴}`, a
//! shamir run is **bit-identical** to the pairwise run with the same
//! membership schedule — the tests below assert exact equality.
//!
//! # Paillier round anatomy
//!
//! All learners derive the run keypair deterministically from
//! `cfg.seed`; the coordinator derives (and keeps) only the public half,
//! so it can fold but never decrypt. Per round each learner encrypts its
//! fixed-point coordinates ([`CipherShare`]); the coordinator multiplies
//! the ciphertexts coordinate-wise and sends the aggregate to learner 0
//! ([`CipherAgg`]), which decrypts the *sum* only and replies with the
//! decoded totals ([`CipherSum`]). Absent contributors are dropped with
//! no re-key; losing the authority ends the run with
//! [`TrainError::Dropped`].
//!
//! [`ShamirDist`]: ppml_transport::Message::ShamirDist
//! [`ShamirCollect`]: ppml_transport::Message::ShamirCollect
//! [`Shares`]: ppml_transport::Message::Shares
//! [`CipherShare`]: ppml_transport::Message::CipherShare
//! [`CipherAgg`]: ppml_transport::Message::CipherAgg
//! [`CipherSum`]: ppml_transport::Message::CipherSum

use std::collections::BTreeMap;
use std::time::Instant;

use ppml_crypto::shamir::{self, MODULUS};
use ppml_crypto::{FixedPointCodec, Paillier, PaillierPublicKey, ThresholdSharing};
use ppml_data::rng::Rng64;
use ppml_data::Dataset;
use ppml_mapreduce::JobMetrics;
use ppml_svm::LinearSvm;
use ppml_telemetry as telemetry;
use ppml_transport::{Courier, Frame, Message, PartyId, Transport, TransportError};
use telemetry::EventKind;

use crate::config::{AdmmConfig, DistributedTiming};
use crate::distributed::{
    clock_sync, coordinate_linear_with_recovery, learn_linear_inner, peer_is_lost, protocol,
    send_share_patiently, DistributedOutcome, RecoveryOptions,
};
use crate::error::TrainError;
use crate::history::ConvergenceHistory;
use crate::horizontal::linear::HlLearner;
use crate::masks::mix64;
use crate::observe::{self, TelemetryRelay};
use crate::Result;

/// Which secure-aggregation protocol a distributed run speaks.
///
/// The string forms (`pairwise` / `shamir` / `paillier`) are shared by
/// the `--secagg` CLI flag, the `PPML_SECAGG` environment variable and
/// the telemetry backend labels ([`ppml_telemetry::BACKENDS`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SecAggKind {
    /// §V pairwise masking with re-keying on dropout (the default).
    #[default]
    Pairwise,
    /// `t`-of-`m` Shamir threshold sharing; dropout needs no re-key.
    Shamir,
    /// Paillier additively homomorphic aggregation via a key authority.
    Paillier,
}

impl SecAggKind {
    /// Canonical lowercase name (also the telemetry backend label).
    pub fn as_str(self) -> &'static str {
        match self {
            SecAggKind::Pairwise => "pairwise",
            SecAggKind::Shamir => "shamir",
            SecAggKind::Paillier => "paillier",
        }
    }
}

impl std::fmt::Display for SecAggKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SecAggKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "pairwise" => Ok(SecAggKind::Pairwise),
            "shamir" => Ok(SecAggKind::Shamir),
            "paillier" => Ok(SecAggKind::Paillier),
            other => Err(format!(
                "unknown secure-aggregation backend {other:?} (expected pairwise, shamir or \
                 paillier)"
            )),
        }
    }
}

/// Backend selection plus its knobs, shared by coordinator and learners
/// (all parties must agree, like [`AdmmConfig`] itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecAggConfig {
    /// The protocol to speak.
    pub kind: SecAggKind,
    /// Shamir reconstruction threshold `t`; `None` picks
    /// `max(2, ⌈2m/3⌉)` clamped to `m`. Rejected for other backends.
    pub threshold: Option<usize>,
}

impl SecAggConfig {
    /// Config for `kind` with default knobs.
    pub fn new(kind: SecAggKind) -> Self {
        SecAggConfig {
            kind,
            threshold: None,
        }
    }

    /// The §V pairwise default.
    pub fn pairwise() -> Self {
        Self::new(SecAggKind::Pairwise)
    }

    /// Shamir threshold sharing with the default threshold.
    pub fn shamir() -> Self {
        Self::new(SecAggKind::Shamir)
    }

    /// Paillier homomorphic aggregation.
    pub fn paillier() -> Self {
        Self::new(SecAggKind::Paillier)
    }

    /// Overrides the Shamir threshold (validated against the roster at
    /// run start).
    #[must_use]
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// The reconstruction threshold a run over `learners` parties uses:
    /// the explicit override, else `max(2, ⌈2·learners/3⌉)` clamped to
    /// the roster size.
    pub fn effective_threshold(&self, learners: usize) -> usize {
        self.threshold
            .unwrap_or_else(|| ((2 * learners).div_ceil(3)).max(2))
            .min(learners.max(1))
    }

    /// Checks the config against a roster of `learners` parties.
    ///
    /// # Errors
    ///
    /// [`TrainError::BadConfig`] when a threshold is supplied for a
    /// non-Shamir backend or falls outside `1..=learners`.
    pub fn validate(&self, learners: usize) -> Result<()> {
        if let Some(t) = self.threshold {
            if self.kind != SecAggKind::Shamir {
                return Err(TrainError::BadConfig {
                    reason: format!(
                        "--secagg-threshold only applies to the shamir backend, not {}",
                        self.kind
                    ),
                });
            }
            if t < 1 || t > learners {
                return Err(TrainError::BadConfig {
                    reason: format!("shamir threshold {t} out of range 1..={learners}"),
                });
            }
        }
        Ok(())
    }
}

/// One secure-aggregation protocol, wire side included: drives either
/// end of a distributed linear-SVM run. [`coordinate_linear_secagg`] and
/// [`learn_linear_secagg`] dispatch to the backend named by a
/// [`SecAggConfig`]; the trait is public so embedders can drive a
/// backend directly or supply their own.
pub trait SecureAggregator<T: Transport> {
    /// Stable backend label (also used for telemetry).
    fn name(&self) -> &'static str;

    /// Drives the coordinator (party `learners`) end to end.
    ///
    /// # Errors
    ///
    /// As [`crate::distributed::coordinate_linear`]; backends without
    /// re-keying return [`TrainError::Dropped`] as soon as the survivor
    /// set can no longer complete a round.
    fn coordinate(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        features: usize,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        timing: DistributedTiming,
    ) -> Result<DistributedOutcome>;

    /// Drives one learner end to end. `defect_after` scripts a dropout
    /// at the backend's characteristic loss point (see
    /// [`learn_linear_secagg_with_defect`]); `rejoin` re-enters a run as
    /// a restarted process.
    ///
    /// # Errors
    ///
    /// As [`crate::distributed::learn_linear`].
    #[allow(clippy::too_many_arguments)]
    fn learn(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        data: &Dataset,
        cfg: &AdmmConfig,
        timing: DistributedTiming,
        defect_after: Option<u64>,
        rejoin: bool,
    ) -> Result<LinearSvm>;
}

/// The §V pairwise-masking backend: thin delegation to the untouched
/// [`crate::distributed`] implementation, so selecting `pairwise`
/// through this module is bit- and byte-identical to calling it
/// directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseBackend;

impl<T: Transport> SecureAggregator<T> for PairwiseBackend {
    fn name(&self) -> &'static str {
        SecAggKind::Pairwise.as_str()
    }

    fn coordinate(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        features: usize,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        timing: DistributedTiming,
    ) -> Result<DistributedOutcome> {
        coordinate_linear_with_recovery(
            courier,
            learners,
            features,
            cfg,
            eval,
            timing,
            RecoveryOptions::default(),
        )
    }

    fn learn(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        data: &Dataset,
        cfg: &AdmmConfig,
        timing: DistributedTiming,
        defect_after: Option<u64>,
        rejoin: bool,
    ) -> Result<LinearSvm> {
        learn_linear_inner(courier, learners, data, cfg, timing, defect_after, rejoin)
    }
}

/// The `t`-of-`m` Shamir threshold backend (see the module docs for the
/// round anatomy). Dropout costs no re-key round; any `t` survivors
/// reconstruct.
#[derive(Debug, Clone, Copy)]
pub struct ShamirBackend {
    /// Reconstruction threshold `t` (1 ≤ `t` ≤ `m`).
    pub threshold: usize,
}

impl<T: Transport> SecureAggregator<T> for ShamirBackend {
    fn name(&self) -> &'static str {
        SecAggKind::Shamir.as_str()
    }

    fn coordinate(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        features: usize,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        timing: DistributedTiming,
    ) -> Result<DistributedOutcome> {
        shamir_coordinate(
            courier,
            learners,
            features,
            cfg,
            eval,
            timing,
            self.threshold,
        )
    }

    fn learn(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        data: &Dataset,
        cfg: &AdmmConfig,
        timing: DistributedTiming,
        defect_after: Option<u64>,
        rejoin: bool,
    ) -> Result<LinearSvm> {
        shamir_learn(
            courier,
            learners,
            data,
            cfg,
            timing,
            self.threshold,
            defect_after,
            rejoin,
        )
    }
}

/// The Paillier homomorphic backend with learner 0 as key authority
/// (see the module docs for the round anatomy).
#[derive(Debug, Clone, Copy, Default)]
pub struct PaillierBackend;

impl<T: Transport> SecureAggregator<T> for PaillierBackend {
    fn name(&self) -> &'static str {
        SecAggKind::Paillier.as_str()
    }

    fn coordinate(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        features: usize,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        timing: DistributedTiming,
    ) -> Result<DistributedOutcome> {
        paillier_coordinate(courier, learners, features, cfg, eval, timing)
    }

    fn learn(
        &self,
        courier: &mut Courier<T>,
        learners: usize,
        data: &Dataset,
        cfg: &AdmmConfig,
        timing: DistributedTiming,
        defect_after: Option<u64>,
        rejoin: bool,
    ) -> Result<LinearSvm> {
        paillier_learn(courier, learners, data, cfg, timing, defect_after, rejoin)
    }
}

/// Coordinator entry point with backend selection: the
/// [`SecAggConfig::pairwise`] default is exactly
/// [`crate::distributed::coordinate_linear`].
///
/// # Errors
///
/// Config errors from [`SecAggConfig::validate`], plus the backend's
/// own (see [`SecureAggregator::coordinate`]).
pub fn coordinate_linear_secagg<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
    secagg: SecAggConfig,
) -> Result<DistributedOutcome> {
    coordinate_linear_secagg_with_recovery(
        courier,
        learners,
        features,
        cfg,
        eval,
        timing,
        secagg,
        RecoveryOptions::default(),
    )
}

/// [`coordinate_linear_secagg`] plus crash recovery. Checkpoint/resume
/// is a pairwise-only feature for now: the shamir and paillier loops
/// have no re-key epochs to fence resumed rounds with, so requesting
/// recovery under them is rejected rather than silently ignored.
///
/// # Errors
///
/// [`TrainError::BadConfig`] when recovery options are combined with a
/// non-pairwise backend; otherwise as [`coordinate_linear_secagg`].
#[allow(clippy::too_many_arguments)]
pub fn coordinate_linear_secagg_with_recovery<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
    secagg: SecAggConfig,
    recovery: RecoveryOptions,
) -> Result<DistributedOutcome> {
    secagg.validate(learners)?;
    if secagg.kind == SecAggKind::Pairwise {
        return coordinate_linear_with_recovery(
            courier, learners, features, cfg, eval, timing, recovery,
        );
    }
    if recovery.checkpoint_to.is_some() || recovery.resume_from.is_some() {
        return Err(TrainError::BadConfig {
            reason: format!(
                "checkpoint/resume is only supported by the pairwise backend, not {}",
                secagg.kind
            ),
        });
    }
    match secagg.kind {
        SecAggKind::Pairwise => unreachable!("handled above"),
        SecAggKind::Shamir => ShamirBackend {
            threshold: secagg.effective_threshold(learners),
        }
        .coordinate(courier, learners, features, cfg, eval, timing),
        SecAggKind::Paillier => {
            PaillierBackend.coordinate(courier, learners, features, cfg, eval, timing)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn learn_dispatch<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    secagg: SecAggConfig,
    defect_after: Option<u64>,
    rejoin: bool,
) -> Result<LinearSvm> {
    secagg.validate(learners)?;
    match secagg.kind {
        SecAggKind::Pairwise => {
            PairwiseBackend.learn(courier, learners, data, cfg, timing, defect_after, rejoin)
        }
        SecAggKind::Shamir => ShamirBackend {
            threshold: secagg.effective_threshold(learners),
        }
        .learn(courier, learners, data, cfg, timing, defect_after, rejoin),
        SecAggKind::Paillier => {
            PaillierBackend.learn(courier, learners, data, cfg, timing, defect_after, rejoin)
        }
    }
}

/// Learner entry point with backend selection; the pairwise default is
/// exactly [`crate::distributed::learn_linear`].
///
/// # Errors
///
/// As [`crate::distributed::learn_linear`], plus config errors from
/// [`SecAggConfig::validate`].
pub fn learn_linear_secagg<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    secagg: SecAggConfig,
) -> Result<LinearSvm> {
    learn_dispatch(courier, learners, data, cfg, timing, secagg, None, false)
}

/// Re-admission variant of [`learn_linear_secagg`] for a restarted
/// learner process (see [`crate::distributed::rejoin_linear`]). Under
/// shamir and paillier, re-admission needs no re-key at all — the
/// coordinator simply welcomes the party back at a round boundary.
///
/// # Errors
///
/// As [`crate::distributed::rejoin_linear`].
pub fn rejoin_linear_secagg<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    secagg: SecAggConfig,
) -> Result<LinearSvm> {
    learn_dispatch(courier, learners, data, cfg, timing, secagg, None, true)
}

/// Fault-injection variant of [`learn_linear_secagg`]: behaves
/// correctly for rounds `0..defect_after`, then drops out at the
/// backend's characteristic loss point while still draining (and
/// thereby ACKing) frames:
///
/// * **pairwise** — stops sending [`MaskedShare`] from round
///   `defect_after` on (the round excludes the defector after a re-key);
/// * **shamir** — still *distributes* its round-`defect_after` shares
///   but never submits its summed share: the canonical mid-collect
///   death, whose round-`defect_after` input still lands in the sum;
/// * **paillier** — stops sending [`CipherShare`] from round
///   `defect_after` on (the authority keeps answering [`CipherAgg`] so
///   a defecting learner 0 does not wedge the run).
///
/// # Errors
///
/// The expected exit is [`TrainError::Transport`] with a timeout once
/// the coordinator drops this learner; otherwise as
/// [`learn_linear_secagg`].
///
/// [`MaskedShare`]: ppml_transport::Message::MaskedShare
/// [`CipherShare`]: ppml_transport::Message::CipherShare
/// [`CipherAgg`]: ppml_transport::Message::CipherAgg
#[allow(clippy::too_many_arguments)]
pub fn learn_linear_secagg_with_defect<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    secagg: SecAggConfig,
    defect_after: u64,
) -> Result<LinearSvm> {
    learn_dispatch(
        courier,
        learners,
        data,
        cfg,
        timing,
        secagg,
        Some(defect_after),
        false,
    )
}

// ---------------------------------------------------------------------
// Deterministic seed derivation. Domain-separated from the pairwise
// masker's (seed, lo, hi, iteration) absorb by a per-purpose constant
// folded into the base seed, then the same sequential SplitMix64 absorb
// (see `masks::mix64` for why sequential absorption is required).

/// Domain tag for Shamir polynomial coefficient streams.
const DOMAIN_SPLIT: u64 = 0x5348_4D52_5350_4C54;
/// Domain tag for ordered-pair relay-blinding pad streams.
const DOMAIN_PAD: u64 = 0x5348_4D52_5041_4421;
/// Domain tag for the deterministic Paillier keypair.
const DOMAIN_KEY: u64 = 0x504C_4C52_4B45_5921;
/// Domain tag for Paillier encryption randomness.
const DOMAIN_ENC: u64 = 0x504C_4C52_454E_4352;

/// Paillier modulus size for the wire protocol: comfortably above the
/// 64-bit floor [`FixedPointCodec::encode_group`] requires, with room
/// for [`FixedPointCodec::max_parties`] summands.
const PAILLIER_BITS: usize = 128;

/// Coefficient stream for `party`'s Shamir split at `iteration`.
fn split_rng(seed: u64, party: usize, iteration: u64) -> Rng64 {
    let mut s = mix64(seed ^ DOMAIN_SPLIT);
    s = mix64(s ^ party as u64);
    s = mix64(s ^ iteration);
    Rng64::new(s)
}

/// Ordered-pair pad stream blinding the share block `from → to` at
/// `iteration` against the relaying coordinator. Both endpoints derive
/// it locally; the pair order matters (`from → to` ≠ `to → from`).
fn pad_rng(seed: u64, from: usize, to: usize, iteration: u64) -> Rng64 {
    let mut s = mix64(seed ^ DOMAIN_PAD);
    s = mix64(s ^ from as u64);
    s = mix64(s ^ to as u64);
    s = mix64(s ^ iteration);
    Rng64::new(s)
}

/// Prime stream for the run's deterministic Paillier keypair.
fn keygen_rng(seed: u64) -> Rng64 {
    Rng64::new(mix64(seed ^ DOMAIN_KEY))
}

/// Encryption randomness for `party` at `iteration`.
fn encrypt_rng(seed: u64, party: usize, iteration: u64) -> Rng64 {
    let mut s = mix64(seed ^ DOMAIN_ENC);
    s = mix64(s ^ party as u64);
    s = mix64(s ^ iteration);
    Rng64::new(s)
}

/// Index of destination `dest`'s block inside sender `from`'s flat
/// [`ppml_transport::Message::ShamirDist`] vector: blocks are laid out
/// in ascending destination order over the full roster, the sender's
/// own (locally kept) block excluded.
fn block_index(from: usize, dest: usize) -> usize {
    debug_assert_ne!(from, dest, "a sender keeps its own block locally");
    if dest > from {
        dest - 1
    } else {
        dest
    }
}

/// Marks `lost` parties dead: flips `alive`, records drop order, emits
/// [`EventKind::Dropout`]. Unlike the pairwise path this sends **no**
/// re-key — the remaining shares stay valid by construction.
fn declare_dropped<T: Transport>(
    courier: &Courier<T>,
    alive: &mut [bool],
    dropped: &mut Vec<PartyId>,
    lost: &[PartyId],
    iteration: u64,
) {
    for &p in lost {
        if alive[p as usize] {
            alive[p as usize] = false;
            dropped.push(p);
            telemetry::emit(
                courier.party(),
                EventKind::Dropout {
                    party: p,
                    iteration,
                },
            );
        }
    }
}

/// Re-admits rejoining learners at a round boundary for the stateless
/// backends: marks the joiner alive, resets its transport watermark and
/// answers its [`Message::Join`] with a [`Message::Welcome`]. Veterans
/// are not told — with no masks to re-key, membership changes only
/// matter to the coordinator's bookkeeping.
#[allow(clippy::too_many_arguments)]
fn admit_stateless<T: Transport>(
    courier: &mut Courier<T>,
    alive: &mut [bool],
    dropped: &mut Vec<PartyId>,
    joins: BTreeMap<PartyId, u64>,
    iteration: u64,
    z: &[f64],
    s: f64,
    metrics: &mut JobMetrics,
) -> Result<()> {
    for (p, nonce) in joins {
        if alive[p as usize] {
            continue;
        }
        alive[p as usize] = true;
        dropped.retain(|&d| d != p);
        telemetry::emit(
            courier.party(),
            EventKind::Rejoin {
                party: p,
                iteration,
            },
        );
        // The joiner is a fresh process: clear the dead incarnation's
        // dedup watermark before talking to it.
        courier.reset_peer(p);
        let survivors: Vec<PartyId> = (0..alive.len())
            .filter(|&q| alive[q])
            .map(|q| q as PartyId)
            .collect();
        let welcome = Message::Welcome {
            nonce,
            iteration,
            epoch: 0,
            survivors,
            z: z.to_vec(),
            s: vec![s],
        };
        match courier.send_reliable(p, &welcome) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => {
                declare_dropped(courier, alive, dropped, &[p], iteration);
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Shared coordinator-side validation for the non-pairwise loops.
fn validate_coordinator<T: Transport>(
    courier: &Courier<T>,
    learners: usize,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
) -> Result<()> {
    cfg.validate()?;
    timing.validate()?;
    if learners == 0 {
        return Err(TrainError::BadConfig {
            reason: "need at least one learner".to_string(),
        });
    }
    if (courier.party() as usize) != learners {
        return Err(TrainError::BadConfig {
            reason: format!(
                "coordinator must be party {learners}, got {}",
                courier.party()
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Shamir backend.

#[allow(clippy::too_many_lines)]
fn shamir_coordinate<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
    threshold: usize,
) -> Result<DistributedOutcome> {
    validate_coordinator(courier, learners, cfg, timing)?;
    let m = learners;
    if threshold < 1 || threshold > m {
        return Err(TrainError::BadConfig {
            reason: format!("shamir threshold {threshold} out of range 1..={m}"),
        });
    }
    let share_len = features + 1;
    let scheme = ThresholdSharing::new(threshold, cfg.seed);
    let mut z = vec![0.0; features];
    let mut s = 0.0;
    let mut history = ConvergenceHistory::default();
    let mut metrics = JobMetrics::default();
    let mut alive = vec![true; m];
    let mut dropped: Vec<PartyId> = Vec::new();
    let mut pending_joins: BTreeMap<PartyId, u64> = BTreeMap::new();

    if telemetry::enabled() {
        let run_id = telemetry::fresh_run_id();
        telemetry::emit(courier.party(), EventKind::RunInfo { run_id });
        clock_sync(courier, &alive, run_id);
    }

    for iteration in 0..cfg.max_iter as u64 {
        if !pending_joins.is_empty() {
            admit_stateless(
                courier,
                &mut alive,
                &mut dropped,
                std::mem::take(&mut pending_joins),
                iteration,
                &z,
                s,
                &mut metrics,
            )?;
        }
        let round_start = Instant::now();
        let round_bytes_before = metrics.bytes_broadcast + metrics.bytes_shuffled;
        telemetry::emit(
            courier.party(),
            EventKind::RoundOpen {
                iteration,
                epoch: 0,
            },
        );
        let broadcast = Message::Consensus {
            iteration,
            z: z.clone(),
            s: vec![s],
            done: false,
        };
        let mut lost: Vec<PartyId> = Vec::new();
        for p in (0..m).filter(|&p| alive[p]) {
            match courier.send_reliable(p as PartyId, &broadcast) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => lost.push(p as PartyId),
                Err(e) => return Err(e.into()),
            }
        }
        declare_dropped(courier, &mut alive, &mut dropped, &lost, iteration);

        // Phase 1: one ShamirDist per survivor, single deadline.
        let mut dists: Vec<Option<Vec<u64>>> = vec![None; m];
        let active = alive.iter().filter(|&&a| a).count();
        let mut have = 0usize;
        let deadline = Instant::now() + timing.round_deadline;
        while have < active {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let env = match courier.recv(remaining) {
                Ok(env) => env,
                Err(TransportError::Timeout) => break,
                Err(e) => return Err(e.into()),
            };
            if matches!(
                env.msg,
                Message::Heartbeat { .. } | Message::TimeReply { .. }
            ) {
                continue;
            }
            if matches!(env.msg, Message::Telemetry { .. }) {
                observe::fold_telemetry(courier.party(), &env.msg);
                continue;
            }
            if let Message::Join { party, nonce } = env.msg {
                if (party as usize) < m {
                    pending_joins.insert(party, nonce);
                }
                continue;
            }
            // Straggler submissions of an earlier round that arrived
            // after reconstruction had enough shares.
            if matches!(env.msg, Message::Shares { iteration: it, .. } if it < iteration) {
                continue;
            }
            let frame_len = Frame::encoded_len_of(&env.msg);
            let Message::ShamirDist {
                iteration: it,
                party,
                flat,
            } = env.msg
            else {
                return Err(protocol(format!(
                    "coordinator expected a shamir distribution, got {:?} from party {}",
                    env.msg, env.from
                )));
            };
            if it < iteration {
                continue;
            }
            if it > iteration {
                return Err(protocol(format!(
                    "shamir distribution from the future: round {it} while collecting \
                     round {iteration}"
                )));
            }
            if !alive.get(party as usize).copied().unwrap_or(false) {
                continue;
            }
            if flat.len() != (m - 1) * share_len {
                return Err(protocol(format!(
                    "shamir distribution length mismatch: expected {}, got {}",
                    (m - 1) * share_len,
                    flat.len()
                )));
            }
            let slot = &mut dists[party as usize];
            if let Some(existing) = slot {
                if *existing == flat {
                    continue;
                }
                return Err(protocol(format!(
                    "conflicting duplicate shamir distribution from party {party}"
                )));
            }
            *slot = Some(flat);
            metrics.bytes_shuffled += frame_len;
            have += 1;
        }
        if have < active {
            let lost: Vec<PartyId> = (0..m)
                .filter(|&p| alive[p] && dists[p].is_none())
                .map(|p| p as PartyId)
                .collect();
            telemetry::emit(
                courier.party(),
                EventKind::DeadlineMiss {
                    iteration,
                    epoch: 0,
                    missing: lost.len() as u32,
                },
            );
            declare_dropped(courier, &mut alive, &mut dropped, &lost, iteration);
        }
        let contributors: Vec<PartyId> = (0..m)
            .filter(|&p| dists[p].is_some())
            .map(|p| p as PartyId)
            .collect();
        if contributors.len() < threshold {
            return Err(TrainError::Dropped {
                parties: dropped.clone(),
            });
        }

        // Phase 2: relay each contributor its blinded blocks. A
        // contributor that became unreachable is dropped for *future*
        // rounds; its input is already inside this round's sum.
        for &p in &contributors {
            let mut flat = Vec::with_capacity((contributors.len() - 1) * share_len);
            for &q in &contributors {
                if q == p {
                    continue;
                }
                let dist = dists[q as usize].as_ref().expect("contributor has a dist");
                let base = block_index(q as usize, p as usize) * share_len;
                flat.extend_from_slice(&dist[base..base + share_len]);
            }
            let msg = Message::ShamirCollect {
                iteration,
                contributors: contributors.clone(),
                flat,
            };
            match courier.send_reliable(p, &msg) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => {
                    declare_dropped(courier, &mut alive, &mut dropped, &[p], iteration);
                }
                Err(e) => return Err(e.into()),
            }
        }

        // Phase 3: summed-share submissions; any `threshold` of them
        // reconstruct, so submitters lost mid-collect cost nothing but
        // their future membership.
        let mut subs: Vec<Option<Vec<u64>>> = vec![None; m];
        let mut have = 0usize;
        let want = contributors.iter().filter(|&&p| alive[p as usize]).count();
        let deadline = Instant::now() + timing.round_deadline;
        while have < want {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let env = match courier.recv(remaining) {
                Ok(env) => env,
                Err(TransportError::Timeout) => break,
                Err(e) => return Err(e.into()),
            };
            if matches!(
                env.msg,
                Message::Heartbeat { .. } | Message::TimeReply { .. }
            ) {
                continue;
            }
            if matches!(env.msg, Message::Telemetry { .. }) {
                observe::fold_telemetry(courier.party(), &env.msg);
                continue;
            }
            if let Message::Join { party, nonce } = env.msg {
                if (party as usize) < m {
                    pending_joins.insert(party, nonce);
                }
                continue;
            }
            if matches!(env.msg, Message::ShamirDist { iteration: it, .. } if it <= iteration) {
                continue;
            }
            let frame_len = Frame::encoded_len_of(&env.msg);
            let Message::Shares {
                iteration: it,
                values,
            } = env.msg
            else {
                return Err(protocol(format!(
                    "coordinator expected a summed share, got {:?} from party {}",
                    env.msg, env.from
                )));
            };
            if it < iteration {
                continue;
            }
            if it > iteration {
                return Err(protocol(format!(
                    "summed share from the future: round {it} while collecting round {iteration}"
                )));
            }
            let party = env.from;
            if !contributors.contains(&party) {
                continue;
            }
            if values.len() != share_len {
                return Err(protocol(format!(
                    "summed share length mismatch: expected {share_len}, got {}",
                    values.len()
                )));
            }
            let slot = &mut subs[party as usize];
            if let Some(existing) = slot {
                if *existing == values {
                    continue;
                }
                return Err(protocol(format!(
                    "conflicting duplicate summed share from party {party}"
                )));
            }
            *slot = Some(values);
            metrics.bytes_shuffled += frame_len;
            have += 1;
            observe::observe_share_lag(party, iteration, round_start.elapsed().as_nanos() as u64);
        }
        let got = subs.iter().filter(|s| s.is_some()).count();
        if got < want {
            let lost: Vec<PartyId> = contributors
                .iter()
                .copied()
                .filter(|&p| alive[p as usize] && subs[p as usize].is_none())
                .collect();
            telemetry::emit(
                courier.party(),
                EventKind::DeadlineMiss {
                    iteration,
                    epoch: 0,
                    missing: lost.len() as u32,
                },
            );
            declare_dropped(courier, &mut alive, &mut dropped, &lost, iteration);
        }
        if got < threshold {
            return Err(TrainError::Dropped {
                parties: dropped.clone(),
            });
        }

        // Reconstruct from the `threshold` lowest-indexed submissions —
        // any `t` shares give the same exact field element, so the
        // choice cannot change the result; fixing it keeps the loop
        // deterministic to read.
        let chosen: Vec<usize> = (0..m)
            .filter(|&p| subs[p].is_some())
            .take(threshold)
            .collect();
        let mut sums = vec![0.0; share_len];
        for (i, sum) in sums.iter_mut().enumerate() {
            let column: Vec<shamir::Share> = chosen
                .iter()
                .map(|&p| shamir::Share {
                    x: p as u64 + 1,
                    y: subs[p].as_ref().expect("chosen submissions exist")[i],
                })
                .collect();
            *sum = scheme.decode(shamir::reconstruct(&column)?);
        }
        let divisor = contributors.len() as f64;
        telemetry::emit(
            courier.party(),
            EventKind::RoundClose {
                iteration,
                epoch: 0,
                shares: contributors.len() as u32,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        observe::score_round(courier.party(), iteration);
        telemetry::emit(
            courier.party(),
            EventKind::SecAggRound {
                backend: "shamir",
                iteration,
                bytes: (metrics.bytes_broadcast + metrics.bytes_shuffled - round_bytes_before)
                    as u64,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        let z_new: Vec<f64> = sums[..features].iter().map(|&v| v / divisor).collect();
        let s_new = sums[features] / divisor;
        let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
        z = z_new;
        s = s_new;
        history.z_delta.push(delta);
        if let Some(ds) = eval {
            history
                .accuracy
                .push(LinearSvm::from_parts(z.clone(), s).accuracy(ds));
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    metrics.iterations = history.z_delta.len();

    let done = Message::Consensus {
        iteration: history.z_delta.len() as u64,
        z: z.clone(),
        s: vec![s],
        done: true,
    };
    let mut lost: Vec<PartyId> = Vec::new();
    for p in (0..m).filter(|&p| alive[p]) {
        match courier.send_reliable(p as PartyId, &done) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => lost.push(p as PartyId),
            Err(e) => return Err(e.into()),
        }
    }
    declare_dropped(
        courier,
        &mut alive,
        &mut dropped,
        &lost,
        history.z_delta.len() as u64,
    );
    Ok(DistributedOutcome {
        model: LinearSvm::from_parts(z, s),
        history,
        metrics,
        dropped,
    })
}

/// How long a learner blocks on one receive before heartbeating, same
/// as the pairwise loop.
const LEARNER_POLL: std::time::Duration = std::time::Duration::from_millis(500);

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn shamir_learn<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    threshold: usize,
    defect_after: Option<u64>,
    rejoin: bool,
) -> Result<LinearSvm> {
    cfg.validate()?;
    timing.validate()?;
    let party = courier.party();
    let me = party as usize;
    let m = learners;
    if me >= m {
        return Err(TrainError::BadConfig {
            reason: format!("learner party {party} out of range 0..{m}"),
        });
    }
    if threshold < 1 || threshold > m {
        return Err(TrainError::BadConfig {
            reason: format!("shamir threshold {threshold} out of range 1..={m}"),
        });
    }
    let coordinator = m as PartyId;
    let mut learner = HlLearner::new(data, m, cfg)?;
    let scheme = ThresholdSharing::new(threshold, cfg.seed);
    let mut expected_iter: u64 = 0;
    let mut dual_ready = false;
    let mut deadline = Instant::now() + timing.learner_patience;
    let mut run_id_seen = false;
    let mut relay = TelemetryRelay::new();

    if rejoin {
        expected_iter = join_handshake(courier, party, coordinator, timing)?;
        deadline = Instant::now() + timing.learner_patience;
    }

    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TrainError::Transport(TransportError::Timeout));
        }
        let env = match courier.recv(remaining.min(LEARNER_POLL)) {
            Ok(env) => env,
            Err(TransportError::Timeout) => {
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::Heartbeat {
                        nonce: u64::from(party),
                    },
                );
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        match env.msg {
            Message::Heartbeat { .. } => continue,
            Message::TimeProbe { nonce, run_id } => {
                if telemetry::enabled() && !run_id_seen {
                    run_id_seen = true;
                    telemetry::emit(party, EventKind::RunInfo { run_id });
                }
                relay.set_run_id(run_id);
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::TimeReply {
                        nonce,
                        t_ns: telemetry::now_ns(),
                    },
                );
                continue;
            }
            Message::Consensus {
                iteration,
                z,
                s,
                done,
            } => {
                let s_val = s.first().copied().unwrap_or(0.0);
                if done {
                    return Ok(LinearSvm::from_parts(z, s_val));
                }
                if iteration < expected_iter {
                    continue;
                }
                if iteration > expected_iter {
                    return Err(protocol(format!(
                        "consensus skipped ahead to round {iteration} while expecting \
                         {expected_iter}"
                    )));
                }
                telemetry::emit(
                    party,
                    EventKind::RoundOpen {
                        iteration,
                        epoch: 0,
                    },
                );
                let round_start = Instant::now();
                observe::injected_lag_sleep();
                if dual_ready {
                    learner.dual_update(&z, s_val);
                }
                learner.local_step(&z, s_val, &cfg.qp)?;
                dual_ready = true;
                let raw = learner.share();
                let share_len = raw.len();

                // Split every coordinate t-of-m over the *original*
                // roster (dead parties' shares are simply never
                // delivered), keep our own block, blind each peer block
                // with the ordered-pair pad and ship everything in one
                // frame.
                let mut rng = split_rng(cfg.seed, me, iteration);
                let mut dest = vec![vec![0u64; share_len]; m];
                for (i, &v) in raw.iter().enumerate() {
                    let shares = shamir::split(scheme.encode(v)?, threshold, m, &mut rng)?;
                    for (j, sh) in shares.into_iter().enumerate() {
                        dest[j][i] = sh.y;
                    }
                }
                let held_self = std::mem::take(&mut dest[me]);
                let mut flat = Vec::with_capacity((m - 1) * share_len);
                for (j, block) in dest.into_iter().enumerate() {
                    if j == me {
                        continue;
                    }
                    let mut pad = pad_rng(cfg.seed, me, j, iteration);
                    flat.extend(
                        block
                            .into_iter()
                            .map(|y| shamir::field_add(y, pad.below(MODULUS))),
                    );
                }
                send_share_patiently(
                    courier,
                    coordinator,
                    &Message::ShamirDist {
                        iteration,
                        party,
                        flat,
                    },
                    timing.learner_patience,
                )?;
                expected_iter = iteration + 1;
                deadline = Instant::now() + timing.learner_patience;
                if defect_after.is_some_and(|d| iteration >= d) {
                    // Scripted mid-collect death: the shares are out —
                    // this round's input survives us — but the summed
                    // share never will be. Keep draining so the link
                    // stays warm until the coordinator drops us.
                    continue;
                }
                let held = await_collect(
                    courier,
                    coordinator,
                    party,
                    m,
                    cfg.seed,
                    iteration,
                    share_len,
                    held_self,
                    timing,
                )?;
                send_share_patiently(
                    courier,
                    coordinator,
                    &Message::Shares {
                        iteration,
                        values: held,
                    },
                    timing.learner_patience,
                )?;
                let elapsed_ns = round_start.elapsed().as_nanos() as u64;
                telemetry::emit(
                    party,
                    EventKind::RoundClose {
                        iteration,
                        epoch: 0,
                        shares: 1,
                        elapsed_ns,
                    },
                );
                relay.report(courier, coordinator, iteration, 0, elapsed_ns);
                deadline = Instant::now() + timing.learner_patience;
            }
            // A duplicate of our own rejoin Welcome: the coordinator is
            // demonstrably alive, nothing else to apply.
            Message::Welcome {
                iteration,
                survivors,
                ..
            } => {
                if !survivors.contains(&party) {
                    return Err(protocol(format!(
                        "welcome for round {iteration} excludes this learner"
                    )));
                }
                expected_iter = expected_iter.max(iteration);
                deadline = Instant::now() + timing.learner_patience;
            }
            // Collect frames for rounds we already finished (or, while
            // defecting, deliberately walked away from): drain them so
            // the transport stays acked.
            Message::ShamirCollect { iteration: it, .. } if it < expected_iter => continue,
            other => {
                return Err(protocol(format!(
                    "shamir learner expected consensus or collect, got {other:?} from party {}",
                    env.from
                )))
            }
        }
    }
}

/// Waits for this round's [`Message::ShamirCollect`], unblinds each
/// contributor block with the sender-pair pad and field-sums everything
/// (self block included) into this party's share of the round total.
#[allow(clippy::too_many_arguments)]
fn await_collect<T: Transport>(
    courier: &mut Courier<T>,
    coordinator: PartyId,
    party: PartyId,
    m: usize,
    seed: u64,
    iteration: u64,
    share_len: usize,
    held_self: Vec<u64>,
    timing: DistributedTiming,
) -> Result<Vec<u64>> {
    let me = party as usize;
    let deadline = Instant::now() + timing.learner_patience;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TrainError::Transport(TransportError::Timeout));
        }
        let env = match courier.recv(remaining.min(LEARNER_POLL)) {
            Ok(env) => env,
            Err(TransportError::Timeout) => {
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::Heartbeat {
                        nonce: u64::from(party),
                    },
                );
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        match env.msg {
            Message::Heartbeat { .. } => continue,
            Message::TimeProbe { nonce, .. } => {
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::TimeReply {
                        nonce,
                        t_ns: telemetry::now_ns(),
                    },
                );
                continue;
            }
            Message::ShamirCollect {
                iteration: it,
                contributors,
                flat,
            } => {
                if it < iteration {
                    continue;
                }
                if it > iteration {
                    return Err(protocol(format!(
                        "collect skipped ahead to round {it} while expecting {iteration}"
                    )));
                }
                if !contributors.windows(2).all(|w| w[0] < w[1]) {
                    return Err(protocol("collect contributor set is not ascending"));
                }
                if contributors.iter().any(|&q| (q as usize) >= m) {
                    return Err(protocol("collect names a party outside the roster"));
                }
                if !contributors.contains(&party) {
                    return Err(protocol(format!(
                        "collect for round {it} excludes this learner"
                    )));
                }
                if flat.len() != (contributors.len() - 1) * share_len {
                    return Err(protocol(format!(
                        "collect length mismatch: expected {}, got {}",
                        (contributors.len() - 1) * share_len,
                        flat.len()
                    )));
                }
                let mut held = held_self;
                for (slot, &q) in contributors.iter().filter(|&&q| q != party).enumerate() {
                    let block = &flat[slot * share_len..(slot + 1) * share_len];
                    let mut pad = pad_rng(seed, q as usize, me, iteration);
                    for (h, &v) in held.iter_mut().zip(block) {
                        *h = shamir::field_add(*h, shamir::field_sub(v, pad.below(MODULUS)));
                    }
                }
                return Ok(held);
            }
            other => {
                return Err(protocol(format!(
                    "shamir learner expected a collect, got {other:?} from party {}",
                    env.from
                )))
            }
        }
    }
}

/// Probe-with-[`Message::Join`] handshake for a rejoining learner under
/// a stateless backend: loops until the coordinator's
/// [`Message::Welcome`] names us a survivor, then returns the next
/// round it will broadcast. Mirrors the pairwise handshake minus all
/// epoch bookkeeping — there is none to restore.
fn join_handshake<T: Transport>(
    courier: &mut Courier<T>,
    party: PartyId,
    coordinator: PartyId,
    timing: DistributedTiming,
) -> Result<u64> {
    let deadline = Instant::now() + timing.learner_patience;
    let nonce = telemetry::now_ns() | 1;
    loop {
        if Instant::now() >= deadline {
            return Err(TrainError::Transport(TransportError::Timeout));
        }
        let _ = courier.send_unreliable(coordinator, &Message::Join { party, nonce });
        match courier.recv(LEARNER_POLL) {
            Ok(env) => match env.msg {
                Message::Welcome {
                    iteration,
                    survivors,
                    ..
                } if survivors.contains(&party) => {
                    telemetry::emit(party, EventKind::Rejoin { party, iteration });
                    return Ok(iteration);
                }
                // Frames predating re-admission: rounds we are not part
                // of yet. Drain (and thereby ack) them.
                _ => continue,
            },
            Err(TransportError::Timeout) => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------
// Paillier backend.

/// Appends `v` big-endian, left-padded with zeros to exactly `width`
/// bytes, so ciphertexts pack at fixed offsets on the wire.
fn push_fixed_width(out: &mut Vec<u8>, v: &ppml_crypto::BigUint, width: usize) {
    let be = v.to_bytes_be();
    debug_assert!(be.len() <= width, "ciphertext wider than n²");
    out.resize(out.len() + width.saturating_sub(be.len()), 0);
    out.extend_from_slice(&be);
}

#[allow(clippy::too_many_lines)]
fn paillier_coordinate<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
) -> Result<DistributedOutcome> {
    validate_coordinator(courier, learners, cfg, timing)?;
    let m = learners;
    let share_len = features + 1;
    // Derive the run keypair only to clone its public half: from here
    // on the coordinator *cannot* decrypt, by construction — folding
    // needs nothing but `pk`.
    let pk: PaillierPublicKey = Paillier::keygen(PAILLIER_BITS, &mut keygen_rng(cfg.seed))?
        .public_key()
        .clone();
    let width = pk.ciphertext_width();
    let authority: PartyId = 0;
    let mut z = vec![0.0; features];
    let mut s = 0.0;
    let mut history = ConvergenceHistory::default();
    let mut metrics = JobMetrics::default();
    let mut alive = vec![true; m];
    let mut dropped: Vec<PartyId> = Vec::new();
    let mut pending_joins: BTreeMap<PartyId, u64> = BTreeMap::new();

    if telemetry::enabled() {
        let run_id = telemetry::fresh_run_id();
        telemetry::emit(courier.party(), EventKind::RunInfo { run_id });
        clock_sync(courier, &alive, run_id);
    }

    for iteration in 0..cfg.max_iter as u64 {
        if !pending_joins.is_empty() {
            admit_stateless(
                courier,
                &mut alive,
                &mut dropped,
                std::mem::take(&mut pending_joins),
                iteration,
                &z,
                s,
                &mut metrics,
            )?;
        }
        let round_start = Instant::now();
        let round_bytes_before = metrics.bytes_broadcast + metrics.bytes_shuffled;
        telemetry::emit(
            courier.party(),
            EventKind::RoundOpen {
                iteration,
                epoch: 0,
            },
        );
        let broadcast = Message::Consensus {
            iteration,
            z: z.clone(),
            s: vec![s],
            done: false,
        };
        let mut lost: Vec<PartyId> = Vec::new();
        for p in (0..m).filter(|&p| alive[p]) {
            match courier.send_reliable(p as PartyId, &broadcast) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => lost.push(p as PartyId),
                Err(e) => return Err(e.into()),
            }
        }
        declare_dropped(courier, &mut alive, &mut dropped, &lost, iteration);

        // Phase 1: one CipherShare per survivor, single deadline. A
        // learner that misses it is dropped for future rounds — no
        // re-key, the remaining ciphertexts still fold.
        let mut cts: Vec<Option<Vec<u8>>> = vec![None; m];
        let active = alive.iter().filter(|&&a| a).count();
        let mut have = 0usize;
        let deadline = Instant::now() + timing.round_deadline;
        while have < active {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let env = match courier.recv(remaining) {
                Ok(env) => env,
                Err(TransportError::Timeout) => break,
                Err(e) => return Err(e.into()),
            };
            if matches!(
                env.msg,
                Message::Heartbeat { .. } | Message::TimeReply { .. }
            ) {
                continue;
            }
            if let Message::Join { party, nonce } = env.msg {
                if (party as usize) < m {
                    pending_joins.insert(party, nonce);
                }
                continue;
            }
            // In-band telemetry deltas ride the round like the clock
            // probes do: fold and move on, never charging them to the
            // protocol's byte accounting.
            if matches!(env.msg, Message::Telemetry { .. }) {
                observe::fold_telemetry(courier.party(), &env.msg);
                continue;
            }
            // A straggling decryption of an earlier round's aggregate.
            if matches!(env.msg, Message::CipherSum { iteration: it, .. } if it < iteration) {
                continue;
            }
            let frame_len = Frame::encoded_len_of(&env.msg);
            let Message::CipherShare {
                iteration: it,
                party,
                bytes,
            } = env.msg
            else {
                return Err(protocol(format!(
                    "coordinator expected a ciphertext share, got {:?} from party {}",
                    env.msg, env.from
                )));
            };
            if it < iteration {
                continue;
            }
            if it > iteration {
                return Err(protocol(format!(
                    "ciphertext share from the future: round {it} while collecting \
                     round {iteration}"
                )));
            }
            if !alive.get(party as usize).copied().unwrap_or(false) {
                continue;
            }
            if bytes.len() != share_len * width {
                return Err(protocol(format!(
                    "ciphertext share length mismatch: expected {}, got {}",
                    share_len * width,
                    bytes.len()
                )));
            }
            let slot = &mut cts[party as usize];
            if let Some(existing) = slot {
                if *existing == bytes {
                    continue;
                }
                return Err(protocol(format!(
                    "conflicting duplicate ciphertext share from party {party}"
                )));
            }
            *slot = Some(bytes);
            observe::observe_share_lag(party, iteration, round_start.elapsed().as_nanos() as u64);
            metrics.bytes_shuffled += frame_len;
            have += 1;
        }
        if have < active {
            let lost: Vec<PartyId> = (0..m)
                .filter(|&p| alive[p] && cts[p].is_none())
                .map(|p| p as PartyId)
                .collect();
            telemetry::emit(
                courier.party(),
                EventKind::DeadlineMiss {
                    iteration,
                    epoch: 0,
                    missing: lost.len() as u32,
                },
            );
            declare_dropped(courier, &mut alive, &mut dropped, &lost, iteration);
        }
        let contributors: Vec<PartyId> = (0..m)
            .filter(|&p| cts[p].is_some())
            .map(|p| p as PartyId)
            .collect();
        if contributors.is_empty() {
            return Err(TrainError::Dropped {
                parties: dropped.clone(),
            });
        }

        // Fold the round: coordinate-wise homomorphic addition with the
        // public key only.
        let mut agg = Vec::with_capacity(share_len * width);
        for i in 0..share_len {
            let mut acc = pk.neutral();
            for &p in &contributors {
                let bytes = cts[p as usize].as_ref().expect("contributor ciphertext");
                let c = pk.ciphertext_from_bytes(&bytes[i * width..(i + 1) * width])?;
                acc = pk.add(&acc, &c);
            }
            push_fixed_width(&mut agg, acc.as_biguint(), width);
        }

        // Phase 2: authority round-trip. The aggregate (and only the
        // aggregate) is decryptable, and only by learner 0. Note the
        // authority answers even when it stopped *contributing*; losing
        // it outright ends the run — nobody else holds the private key.
        let request = Message::CipherAgg {
            iteration,
            contributors: contributors.len() as u32,
            bytes: agg,
        };
        match courier.send_reliable(authority, &request) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => {
                declare_dropped(courier, &mut alive, &mut dropped, &[authority], iteration);
                return Err(TrainError::Dropped {
                    parties: dropped.clone(),
                });
            }
            Err(e) => return Err(e.into()),
        }
        let sums: Vec<f64> = loop {
            let deadline = Instant::now() + timing.round_deadline;
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                telemetry::emit(
                    courier.party(),
                    EventKind::DeadlineMiss {
                        iteration,
                        epoch: 0,
                        missing: 1,
                    },
                );
                declare_dropped(courier, &mut alive, &mut dropped, &[authority], iteration);
                return Err(TrainError::Dropped {
                    parties: dropped.clone(),
                });
            }
            let env = match courier.recv(remaining) {
                Ok(env) => env,
                Err(TransportError::Timeout) => continue,
                Err(e) => return Err(e.into()),
            };
            if matches!(
                env.msg,
                Message::Heartbeat { .. } | Message::TimeReply { .. }
            ) {
                continue;
            }
            if let Message::Join { party, nonce } = env.msg {
                if (party as usize) < m {
                    pending_joins.insert(party, nonce);
                }
                continue;
            }
            if matches!(env.msg, Message::Telemetry { .. }) {
                observe::fold_telemetry(courier.party(), &env.msg);
                continue;
            }
            if matches!(env.msg, Message::CipherShare { iteration: it, .. } if it <= iteration) {
                continue;
            }
            let frame_len = Frame::encoded_len_of(&env.msg);
            let Message::CipherSum {
                iteration: it,
                values,
            } = env.msg
            else {
                return Err(protocol(format!(
                    "coordinator expected the decrypted aggregate, got {:?} from party {}",
                    env.msg, env.from
                )));
            };
            if it < iteration {
                continue;
            }
            if it > iteration {
                return Err(protocol(format!(
                    "decrypted aggregate from the future: round {it} while in round {iteration}"
                )));
            }
            if env.from != authority {
                return Err(protocol(format!(
                    "decrypted aggregate from party {} instead of the authority",
                    env.from
                )));
            }
            if values.len() != share_len {
                return Err(protocol(format!(
                    "decrypted aggregate length mismatch: expected {share_len}, got {}",
                    values.len()
                )));
            }
            metrics.bytes_shuffled += frame_len;
            break values;
        };

        let divisor = contributors.len() as f64;
        telemetry::emit(
            courier.party(),
            EventKind::RoundClose {
                iteration,
                epoch: 0,
                shares: contributors.len() as u32,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        observe::score_round(courier.party(), iteration);
        telemetry::emit(
            courier.party(),
            EventKind::SecAggRound {
                backend: "paillier",
                iteration,
                bytes: (metrics.bytes_broadcast + metrics.bytes_shuffled - round_bytes_before)
                    as u64,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        let z_new: Vec<f64> = sums[..features].iter().map(|&v| v / divisor).collect();
        let s_new = sums[features] / divisor;
        let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
        z = z_new;
        s = s_new;
        history.z_delta.push(delta);
        if let Some(ds) = eval {
            history
                .accuracy
                .push(LinearSvm::from_parts(z.clone(), s).accuracy(ds));
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    metrics.iterations = history.z_delta.len();

    let done = Message::Consensus {
        iteration: history.z_delta.len() as u64,
        z: z.clone(),
        s: vec![s],
        done: true,
    };
    let mut lost: Vec<PartyId> = Vec::new();
    for p in (0..m).filter(|&p| alive[p]) {
        match courier.send_reliable(p as PartyId, &done) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => lost.push(p as PartyId),
            Err(e) => return Err(e.into()),
        }
    }
    declare_dropped(
        courier,
        &mut alive,
        &mut dropped,
        &lost,
        history.z_delta.len() as u64,
    );
    Ok(DistributedOutcome {
        model: LinearSvm::from_parts(z, s),
        history,
        metrics,
        dropped,
    })
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn paillier_learn<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    defect_after: Option<u64>,
    rejoin: bool,
) -> Result<LinearSvm> {
    cfg.validate()?;
    timing.validate()?;
    let party = courier.party();
    let me = party as usize;
    let m = learners;
    if me >= m {
        return Err(TrainError::BadConfig {
            reason: format!("learner party {party} out of range 0..{m}"),
        });
    }
    let coordinator = m as PartyId;
    // Every learner derives the full keypair from the run seed; only
    // party 0 ever *uses* the private half (the CipherAgg arm below).
    let keypair = Paillier::keygen(PAILLIER_BITS, &mut keygen_rng(cfg.seed))?;
    let codec = FixedPointCodec::default();
    let width = keypair.public_key().ciphertext_width();
    let mut learner = HlLearner::new(data, m, cfg)?;
    let mut expected_iter: u64 = 0;
    let mut dual_ready = false;
    let mut deadline = Instant::now() + timing.learner_patience;
    let mut run_id_seen = false;
    let mut relay = TelemetryRelay::new();

    if rejoin {
        expected_iter = join_handshake(courier, party, coordinator, timing)?;
        deadline = Instant::now() + timing.learner_patience;
    }

    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TrainError::Transport(TransportError::Timeout));
        }
        let env = match courier.recv(remaining.min(LEARNER_POLL)) {
            Ok(env) => env,
            Err(TransportError::Timeout) => {
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::Heartbeat {
                        nonce: u64::from(party),
                    },
                );
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        match env.msg {
            Message::Heartbeat { .. } => continue,
            Message::TimeProbe { nonce, run_id } => {
                relay.set_run_id(run_id);
                if telemetry::enabled() && !run_id_seen {
                    run_id_seen = true;
                    telemetry::emit(party, EventKind::RunInfo { run_id });
                }
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::TimeReply {
                        nonce,
                        t_ns: telemetry::now_ns(),
                    },
                );
                continue;
            }
            // The authority arm: decrypt the folded aggregate — the
            // round *sum*, never an individual share — and hand the
            // plaintext totals back. Served even while defecting, so a
            // scripted authority dropout cannot wedge the run.
            Message::CipherAgg {
                iteration: it,
                contributors: _,
                bytes,
            } => {
                if me != 0 {
                    return Err(protocol(
                        "ciphertext aggregate sent to a non-authority learner".to_string(),
                    ));
                }
                if bytes.is_empty() || bytes.len() % width != 0 {
                    return Err(protocol(format!(
                        "ciphertext aggregate length {} is not a multiple of the ciphertext \
                         width {width}",
                        bytes.len()
                    )));
                }
                let mut values = Vec::with_capacity(bytes.len() / width);
                for chunk in bytes.chunks(width) {
                    let c = keypair.public_key().ciphertext_from_bytes(chunk)?;
                    let sum = keypair.decrypt(&c);
                    values.push(codec.decode_group(&sum, keypair.public_key().modulus())?);
                }
                send_share_patiently(
                    courier,
                    coordinator,
                    &Message::CipherSum {
                        iteration: it,
                        values,
                    },
                    timing.learner_patience,
                )?;
                deadline = Instant::now() + timing.learner_patience;
            }
            Message::Consensus {
                iteration,
                z,
                s,
                done,
            } => {
                let s_val = s.first().copied().unwrap_or(0.0);
                if done {
                    return Ok(LinearSvm::from_parts(z, s_val));
                }
                if iteration < expected_iter {
                    continue;
                }
                if iteration > expected_iter {
                    return Err(protocol(format!(
                        "consensus skipped ahead to round {iteration} while expecting \
                         {expected_iter}"
                    )));
                }
                if defect_after.is_some_and(|d| iteration >= d) {
                    // Scripted dropout: stop contributing, keep
                    // draining (the authority arm above still serves).
                    expected_iter = iteration + 1;
                    continue;
                }
                telemetry::emit(
                    party,
                    EventKind::RoundOpen {
                        iteration,
                        epoch: 0,
                    },
                );
                let round_start = Instant::now();
                observe::injected_lag_sleep();
                if dual_ready {
                    learner.dual_update(&z, s_val);
                }
                learner.local_step(&z, s_val, &cfg.qp)?;
                dual_ready = true;
                let raw = learner.share();
                let mut rng = encrypt_rng(cfg.seed, me, iteration);
                let mut bytes = Vec::with_capacity(raw.len() * width);
                for &v in &raw {
                    let plain = codec.encode_group(v, keypair.public_key().modulus())?;
                    let c = keypair.encrypt(&plain, &mut rng)?;
                    push_fixed_width(&mut bytes, c.as_biguint(), width);
                }
                send_share_patiently(
                    courier,
                    coordinator,
                    &Message::CipherShare {
                        iteration,
                        party,
                        bytes,
                    },
                    timing.learner_patience,
                )?;
                expected_iter = iteration + 1;
                let elapsed_ns = round_start.elapsed().as_nanos() as u64;
                telemetry::emit(
                    party,
                    EventKind::RoundClose {
                        iteration,
                        epoch: 0,
                        shares: 1,
                        elapsed_ns,
                    },
                );
                relay.report(courier, coordinator, iteration, 0, elapsed_ns);
                deadline = Instant::now() + timing.learner_patience;
            }
            Message::Welcome {
                iteration,
                survivors,
                ..
            } => {
                if !survivors.contains(&party) {
                    return Err(protocol(format!(
                        "welcome for round {iteration} excludes this learner"
                    )));
                }
                expected_iter = expected_iter.max(iteration);
                deadline = Instant::now() + timing.learner_patience;
            }
            other => {
                return Err(protocol(format!(
                    "paillier learner expected consensus or an aggregate, got {other:?} from \
                     party {}",
                    env.from
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::feature_count;
    use ppml_data::{synth, Partition};
    use ppml_transport::{LoopbackHub, NetFaultPlan, RetryPolicy};
    use std::thread;
    use std::time::Duration;

    fn twitchy() -> DistributedTiming {
        DistributedTiming::default()
            .with_round_deadline(Duration::from_millis(800))
            .with_learner_patience(Duration::from_secs(2))
    }

    struct SecAggRun {
        outcome: Result<DistributedOutcome>,
        finals: Vec<Result<LinearSvm>>,
    }

    /// Full in-process run over a loopback hub: `defects` scripts
    /// `(party, round)` dropouts at each backend's characteristic loss
    /// point.
    fn run_secagg(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        secagg: SecAggConfig,
        defects: &[(usize, u64)],
    ) -> SecAggRun {
        let m = parts.len();
        let features = feature_count(parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, NetFaultPlan::none());
        let timing = twitchy();
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            let defect = defects.iter().find(|&&(dp, _)| dp == p).map(|&(_, d)| d);
            handles.push(thread::spawn(move || match defect {
                Some(d) => {
                    learn_linear_secagg_with_defect(&mut courier, m, &part, &cfg, timing, secagg, d)
                }
                None => learn_linear_secagg(&mut courier, m, &part, &cfg, timing, secagg),
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome =
            coordinate_linear_secagg(&mut courier, m, features, cfg, None, timing, secagg);
        let finals = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();
        SecAggRun { outcome, finals }
    }

    fn assert_models_identical(a: &LinearSvm, b: &LinearSvm) {
        assert_eq!(a.weights(), b.weights(), "weights diverged");
        assert_eq!(a.bias(), b.bias(), "bias diverged");
    }

    #[test]
    fn kind_parses_round_trips_and_rejects_unknown() {
        for kind in [
            SecAggKind::Pairwise,
            SecAggKind::Shamir,
            SecAggKind::Paillier,
        ] {
            assert_eq!(kind.as_str().parse::<SecAggKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("masking".parse::<SecAggKind>().is_err());
    }

    #[test]
    fn config_validates_threshold_placement_and_range() {
        assert!(SecAggConfig::shamir().validate(4).is_ok());
        assert!(SecAggConfig::shamir().with_threshold(3).validate(4).is_ok());
        assert!(SecAggConfig::shamir()
            .with_threshold(0)
            .validate(4)
            .is_err());
        assert!(SecAggConfig::shamir()
            .with_threshold(5)
            .validate(4)
            .is_err());
        assert!(SecAggConfig::pairwise()
            .with_threshold(2)
            .validate(4)
            .is_err());
        assert!(SecAggConfig::paillier()
            .with_threshold(2)
            .validate(4)
            .is_err());
    }

    #[test]
    fn default_threshold_is_two_thirds_clamped() {
        assert_eq!(SecAggConfig::shamir().effective_threshold(1), 1);
        assert_eq!(SecAggConfig::shamir().effective_threshold(2), 2);
        assert_eq!(SecAggConfig::shamir().effective_threshold(3), 2);
        assert_eq!(SecAggConfig::shamir().effective_threshold(4), 3);
        assert_eq!(SecAggConfig::shamir().effective_threshold(64), 43);
        assert_eq!(
            SecAggConfig::shamir()
                .with_threshold(4)
                .effective_threshold(8),
            4
        );
    }

    #[test]
    fn block_index_skips_the_sender() {
        // Sender 2 of a 4-party roster lays out blocks for 0, 1, 3.
        assert_eq!(block_index(2, 0), 0);
        assert_eq!(block_index(2, 1), 1);
        assert_eq!(block_index(2, 3), 2);
        // Sender 0 lays out 1, 2, 3.
        assert_eq!(block_index(0, 1), 0);
        assert_eq!(block_index(0, 3), 2);
    }

    #[test]
    fn pad_streams_agree_between_endpoints_and_separate_pairs() {
        let a: Vec<u64> = {
            let mut r = pad_rng(7, 1, 2, 3);
            (0..8).map(|_| r.below(MODULUS)).collect()
        };
        let b: Vec<u64> = {
            let mut r = pad_rng(7, 1, 2, 3);
            (0..8).map(|_| r.below(MODULUS)).collect()
        };
        assert_eq!(a, b, "sender and receiver must derive the same stream");
        let reversed: Vec<u64> = {
            let mut r = pad_rng(7, 2, 1, 3);
            (0..8).map(|_| r.below(MODULUS)).collect()
        };
        assert_ne!(a, reversed, "pair order must matter");
    }

    #[test]
    fn recovery_options_rejected_for_stateless_backends() {
        let hub = LoopbackHub::with_faults(2, NetFaultPlan::none());
        let mut courier = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        let cfg = AdmmConfig::default().with_max_iter(2).with_seed(1);
        let err = coordinate_linear_secagg_with_recovery(
            &mut courier,
            1,
            2,
            &cfg,
            None,
            twitchy(),
            SecAggConfig::shamir(),
            RecoveryOptions::default().with_checkpoint("/tmp/never-written.ckpt"),
        )
        .expect_err("checkpointing under shamir must be rejected");
        assert!(matches!(err, TrainError::BadConfig { .. }), "{err:?}");
    }

    #[test]
    fn shamir_clean_run_is_bit_identical_to_pairwise() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
        let pairwise = run_secagg(&parts, &cfg, SecAggConfig::pairwise(), &[]);
        let shamir = run_secagg(&parts, &cfg, SecAggConfig::shamir(), &[]);
        let pw = pairwise.outcome.expect("pairwise run");
        let sh = shamir.outcome.expect("shamir run");
        assert_models_identical(&pw.model, &sh.model);
        assert_eq!(pw.history.z_delta, sh.history.z_delta);
        assert!(sh.dropped.is_empty());
        for (p_model, s_model) in pairwise.finals.iter().zip(&shamir.finals) {
            assert_models_identical(
                p_model.as_ref().expect("pairwise learner"),
                s_model.as_ref().expect("shamir learner"),
            );
        }
    }

    #[test]
    fn paillier_clean_run_is_bit_identical_to_pairwise() {
        let ds = synth::blobs(64, 1);
        let parts = Partition::horizontal(&ds, 2, 2).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(3).with_seed(7);
        let pairwise = run_secagg(&parts, &cfg, SecAggConfig::pairwise(), &[]);
        let paillier = run_secagg(&parts, &cfg, SecAggConfig::paillier(), &[]);
        let pw = pairwise.outcome.expect("pairwise run");
        let pl = paillier.outcome.expect("paillier run");
        assert_models_identical(&pw.model, &pl.model);
        assert_eq!(pw.history.z_delta, pl.history.z_delta);
        assert!(pl.dropped.is_empty());
    }

    /// The headline Shamir property: a learner dying *mid-collect* —
    /// after distributing its round-`d` shares, before submitting its
    /// summed share — still lands its round-`d` input in the sum and
    /// needs no re-key. Membership-wise that equals a pairwise defector
    /// at round `d + 1`, so the surviving models must match that run
    /// bit for bit.
    #[test]
    fn shamir_mid_collect_death_keeps_the_round_and_skips_rekey() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 4, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
        let victim = 1usize;
        let d = 2u64;
        let shamir = run_secagg(&parts, &cfg, SecAggConfig::shamir(), &[(victim, d)]);
        let reference = run_secagg(&parts, &cfg, SecAggConfig::pairwise(), &[(victim, d + 1)]);
        let sh = shamir.outcome.expect("shamir survivors");
        let pw = reference.outcome.expect("pairwise reference");
        assert_eq!(sh.dropped, vec![victim as PartyId]);
        assert_models_identical(&sh.model, &pw.model);
        for (p, result) in shamir.finals.iter().enumerate() {
            if p == victim {
                assert!(result.is_err(), "the defector cannot finish");
            } else {
                assert_models_identical(result.as_ref().expect("survivor"), &sh.model);
            }
        }
    }

    /// A Paillier defector stops encrypting from round `d` on, so its
    /// membership schedule equals the pairwise defector at `d` — and the
    /// surviving models must match that run bit for bit, again with no
    /// re-keying anywhere.
    #[test]
    fn paillier_defector_is_dropped_and_matches_pairwise() {
        let ds = synth::blobs(64, 1);
        let parts = Partition::horizontal(&ds, 2, 2).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(3).with_seed(7);
        let victim = 1usize; // never 0: the authority holds the key
        let d = 1u64;
        let paillier = run_secagg(&parts, &cfg, SecAggConfig::paillier(), &[(victim, d)]);
        let reference = run_secagg(&parts, &cfg, SecAggConfig::pairwise(), &[(victim, d)]);
        let pl = paillier.outcome.expect("paillier survivors");
        let pw = reference.outcome.expect("pairwise reference");
        assert_eq!(pl.dropped, vec![victim as PartyId]);
        assert_models_identical(&pl.model, &pw.model);
        assert!(
            paillier.finals[victim].is_err(),
            "the defector cannot finish"
        );
        assert_models_identical(
            paillier.finals[0].as_ref().expect("authority survives"),
            &pl.model,
        );
    }

    #[test]
    fn shamir_aborts_when_survivors_fall_below_threshold() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(4).with_seed(11);
        let run = run_secagg(
            &parts,
            &cfg,
            SecAggConfig::shamir().with_threshold(3),
            &[(2, 0)],
        );
        match run.outcome {
            Err(TrainError::Dropped { parties }) => assert_eq!(parties, vec![2]),
            other => panic!("expected a threshold abort, got {other:?}"),
        }
    }
}
