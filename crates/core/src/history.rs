/// Per-iteration training trace — exactly the series Fig. 4 plots.
///
/// `z_delta[t] = ‖z^{t+1} − z^t‖²` (panels a–d) and, when an evaluation set
/// was supplied to the trainer, `accuracy[t]` = correct-classification
/// ratio after iteration `t` (panels e–h).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceHistory {
    /// Squared consensus-variable movement per iteration.
    pub z_delta: Vec<f64>,
    /// Test accuracy per iteration (empty when no eval set was supplied).
    pub accuracy: Vec<f64>,
}

impl ConvergenceHistory {
    /// Iterations recorded.
    pub fn len(&self) -> usize {
        self.z_delta.len()
    }

    /// `true` before the first iteration lands.
    pub fn is_empty(&self) -> bool {
        self.z_delta.is_empty()
    }

    /// Last `‖Δz‖²`, or `None` before the first iteration.
    pub fn final_delta(&self) -> Option<f64> {
        self.z_delta.last().copied()
    }

    /// Last recorded accuracy, if evaluation was enabled.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.accuracy.last().copied()
    }

    /// First iteration index (0-based) at which `‖Δz‖²` dropped below
    /// `threshold` and stayed below it for the rest of the trace.
    pub fn iterations_to_converge(&self, threshold: f64) -> Option<usize> {
        let mut candidate = None;
        for (i, &d) in self.z_delta.iter().enumerate() {
            if d < threshold {
                candidate.get_or_insert(i);
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// Emits `iteration,z_delta[,accuracy]` CSV rows (the `fig4` binary's
    /// output format).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(if self.accuracy.is_empty() {
            "iteration,z_delta\n"
        } else {
            "iteration,z_delta,accuracy\n"
        });
        for i in 0..self.len() {
            if self.accuracy.is_empty() {
                out.push_str(&format!("{},{:e}\n", i + 1, self.z_delta[i]));
            } else {
                out.push_str(&format!(
                    "{},{:e},{}\n",
                    i + 1,
                    self.z_delta[i],
                    self.accuracy[i]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history() {
        let h = ConvergenceHistory::default();
        assert!(h.is_empty());
        assert_eq!(h.final_delta(), None);
        assert_eq!(h.final_accuracy(), None);
        assert_eq!(h.iterations_to_converge(1.0), None);
    }

    #[test]
    fn converge_index_requires_staying_below() {
        let h = ConvergenceHistory {
            z_delta: vec![1.0, 0.01, 2.0, 0.01, 0.001],
            accuracy: vec![],
        };
        // Dips below at 1 but bounces back; the stable crossing is at 3.
        assert_eq!(h.iterations_to_converge(0.1), Some(3));
        assert_eq!(h.iterations_to_converge(1e-9), None);
    }

    #[test]
    fn csv_includes_accuracy_when_present() {
        let h = ConvergenceHistory {
            z_delta: vec![0.5],
            accuracy: vec![0.9],
        };
        let csv = h.to_csv();
        assert!(csv.starts_with("iteration,z_delta,accuracy\n"));
        assert!(csv.contains("1,"));
        assert!(csv.contains(",0.9"));
        let h2 = ConvergenceHistory {
            z_delta: vec![0.5],
            accuracy: vec![],
        };
        assert!(h2.to_csv().starts_with("iteration,z_delta\n"));
    }
}
