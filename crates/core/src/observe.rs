//! In-band cluster observability: the learner-side telemetry relay and
//! the coordinator-side fold/score helpers (ISSUE 9 tentpole).
//!
//! Learners piggy-back one [`Message::Telemetry`] frame per round on the
//! existing round boundary — counter *deltas* from [`LinkStats`] plus
//! the round's local wall clock, stamped with a causal span id
//! (`mix64(run_id ^ iteration)`, the same id every party derives
//! independently). The coordinator folds the deltas into
//! [`ClusterRegistry::global`] (served as `GET /cluster`), records each
//! share's collect lag as it lands, and scores the round against its
//! median lag when it closes, emitting [`EventKind::SlowLearner`] for
//! flagged stragglers.
//!
//! Same discipline as the clock-sync probes: everything here is gated on
//! [`telemetry::enabled`], rides unreliable sends (zero extra
//! round-trips, no ARQ state), is never charged to `JobMetrics` byte
//! accounting, and never alters protocol state — so an instrumented run
//! stays bit-identical to an uninstrumented one.
//!
//! [`LinkStats`]: ppml_transport::LinkStats

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ppml_telemetry as telemetry;
use ppml_transport::{Courier, Message, PartyId, Transport};
use telemetry::{mix64, ClusterDelta, ClusterRegistry, EventKind};

/// Process-wide injected per-round lag (fault injection for straggler
/// drills), in nanoseconds. Zero — the default — is free: one relaxed
/// load per round.
static INJECTED_LAG_NS: AtomicU64 = AtomicU64::new(0);

/// Arms straggler fault injection: every learner round in this process
/// sleeps `lag` before its local step (`ppml-learner --lag-ms`). The
/// protocol is untouched — the learner is just late, which is exactly
/// what the coordinator's straggler scorer exists to catch.
pub fn set_injected_lag(lag: Duration) {
    INJECTED_LAG_NS.store(lag.as_nanos() as u64, Ordering::Relaxed);
}

/// Sleeps out the armed injected lag, if any. Called by each learner
/// backend at round open.
pub(crate) fn injected_lag_sleep() {
    let ns = INJECTED_LAG_NS.load(Ordering::Relaxed);
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// Learner-side relay state: the [`LinkStats`] snapshot at the last
/// report, so each [`Message::Telemetry`] frame carries deltas, not
/// lifetime totals (folding stays correct across coordinator resumes).
///
/// [`LinkStats`]: ppml_transport::LinkStats
pub(crate) struct TelemetryRelay {
    run_id: u64,
    frames_sent: u64,
    frames_recv: u64,
    bytes_sent: u64,
    bytes_recv: u64,
    retries: u64,
}

impl TelemetryRelay {
    pub(crate) fn new() -> Self {
        TelemetryRelay {
            run_id: 0,
            frames_sent: 0,
            frames_recv: 0,
            bytes_sent: 0,
            bytes_recv: 0,
            retries: 0,
        }
    }

    /// Remembers the run id gossiped by the coordinator's clock probes
    /// (first one wins); span ids stay 0-anchored until it arrives.
    pub(crate) fn set_run_id(&mut self, run_id: u64) {
        if self.run_id == 0 {
            self.run_id = run_id;
        }
    }

    /// Ships one delta frame for `iteration` to the coordinator,
    /// piggy-backed right behind the round's share. A no-op with
    /// telemetry disabled — not a byte leaves the process. Send failures
    /// are swallowed: observability must never take a learner down.
    pub(crate) fn report<T: Transport>(
        &mut self,
        courier: &mut Courier<T>,
        coordinator: PartyId,
        iteration: u64,
        epoch: u64,
        elapsed_ns: u64,
    ) {
        if !telemetry::enabled() {
            return;
        }
        let stats = courier.transport().stats();
        let msg = Message::Telemetry {
            iteration,
            span: mix64(self.run_id ^ iteration),
            party: courier.party(),
            epoch,
            frames_sent: stats.frames_sent.saturating_sub(self.frames_sent),
            frames_recv: stats.frames_received.saturating_sub(self.frames_recv),
            bytes_sent: stats.bytes_sent.saturating_sub(self.bytes_sent),
            bytes_recv: stats.bytes_received.saturating_sub(self.bytes_recv),
            retransmits: stats.retries.saturating_sub(self.retries),
            elapsed_ns,
        };
        self.frames_sent = stats.frames_sent;
        self.frames_recv = stats.frames_received;
        self.bytes_sent = stats.bytes_sent;
        self.bytes_recv = stats.bytes_received;
        self.retries = stats.retries;
        let _ = courier.send_unreliable(coordinator, &msg);
    }
}

/// Coordinator side: folds one [`Message::Telemetry`] frame into the
/// global [`ClusterRegistry`] and records the arrival as an
/// [`EventKind::TelemetryDelta`]. Frames of any other kind are ignored.
pub(crate) fn fold_telemetry(coordinator: u32, msg: &Message) {
    let Message::Telemetry {
        iteration,
        span,
        party,
        epoch,
        frames_sent,
        frames_recv,
        bytes_sent,
        bytes_recv,
        retransmits,
        elapsed_ns,
    } = *msg
    else {
        return;
    };
    ClusterRegistry::global().fold(
        party,
        &ClusterDelta {
            iteration,
            span,
            epoch,
            frames_sent,
            frames_recv,
            bytes_sent,
            bytes_recv,
            retransmits,
            elapsed_ns,
        },
    );
    telemetry::emit(
        coordinator,
        EventKind::TelemetryDelta {
            from: party,
            iteration,
            span,
            frames: frames_sent,
            bytes: bytes_sent,
            elapsed_ns,
        },
    );
}

/// Coordinator side: records `party`'s collect lag for `iteration`
/// (round open → share accepted) for the straggler scorer.
pub(crate) fn observe_share_lag(party: u32, iteration: u64, lag_ns: u64) {
    if telemetry::enabled() {
        ClusterRegistry::global().observe_lag(party, iteration, lag_ns);
    }
}

/// Coordinator side, at round close: scores every recorded lag against
/// the round median and emits [`EventKind::SlowLearner`] for each
/// flagged straggler (see [`telemetry::cluster::SLOW_SCORE_THRESHOLD`]).
pub(crate) fn score_round(coordinator: u32, iteration: u64) {
    if !telemetry::enabled() {
        return;
    }
    for verdict in ClusterRegistry::global().score_round(iteration) {
        if verdict.is_slow() {
            telemetry::emit(
                coordinator,
                EventKind::SlowLearner {
                    party: verdict.party,
                    iteration: verdict.iteration,
                    lag_ns: verdict.lag_ns,
                    median_ns: verdict.median_ns,
                    score: verdict.score,
                },
            );
        }
    }
}

/// Records one MapReduce map-attempt wall clock for the task straggler
/// scorer — the task-level twin of the learner-side share-lag observer,
/// surfaced on
/// `GET /cluster` as `ppml_task_attempt_lag_ns`. The built-in engines
/// (`ppml_mapreduce::Cluster` and `TaskScheduler`) feed this themselves;
/// external drivers timing their own attempts call it directly. A no-op
/// with telemetry disabled.
pub fn observe_task_attempt(worker: u32, iteration: u64, lag_ns: u64) {
    if telemetry::enabled() {
        ClusterRegistry::global().observe_task_lag(worker, iteration, lag_ns);
    }
}

/// Scores one MapReduce round's recorded attempt timings against their
/// lower median and emits [`EventKind::SlowWorker`] for each flagged
/// straggler — the task-level twin of the learner round scorer, for
/// drivers that
/// feed [`observe_task_attempt`] themselves. Consumes the round's
/// samples; scoring an unfed round is a no-op.
pub fn score_task_round(coordinator: u32, iteration: u64) {
    if !telemetry::enabled() {
        return;
    }
    for verdict in ClusterRegistry::global().score_task_round(iteration) {
        if verdict.is_slow() {
            telemetry::emit(
                coordinator,
                EventKind::SlowWorker {
                    node: verdict.party,
                    iteration: verdict.iteration,
                    lag_ns: verdict.lag_ns,
                    median_ns: verdict.median_ns,
                    score: verdict.score,
                },
            );
        }
    }
}
