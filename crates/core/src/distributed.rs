//! Distributed HL-SVM training over a real [`Transport`] — the paper's
//! Fig. 2 star topology with actual message passing instead of the
//! simulated cluster of [`crate::jobs`].
//!
//! # Roles
//!
//! * **Learners** (parties `0..m`) each hold one horizontal partition.
//!   Per round they receive the consensus broadcast, run the local ADMM
//!   step, mask their share with the §V pairwise scheme
//!   ([`SeededMasker`]), and send the masked fixed-point vector to the
//!   coordinator.
//! * **Coordinator** (party `m`) plays the reducer: it broadcasts
//!   `(z, s)`, collects one masked share per learner, wrapping-sums them
//!   (the masks cancel), decodes the consensus update, and repeats until
//!   `cfg.max_iter` or `cfg.tol`. A final `done` broadcast carries the
//!   converged model to the learners so they can exit.
//!
//! The coordinator only ever sees masked shares and their cancelled sum,
//! exactly as in the in-process protocol; moving to a real wire changes
//! the failure model (frames can drop — the [`Courier`] ARQ recovers),
//! not the privacy argument.
//!
//! # Determinism
//!
//! Fixed-point wrapping sums are associative and mask-independent, so a
//! distributed run reproduces [`crate::jobs::train_linear_on_cluster`]
//! **bit for bit** given the same partitions and config. The tests below
//! assert exact equality; `examples/distributed_hl.rs` does the same
//! across OS processes over TCP.

use std::time::Duration;

use ppml_data::Dataset;
use ppml_mapreduce::JobMetrics;
use ppml_svm::LinearSvm;
use ppml_transport::{Courier, Frame, Message, PartyId, Transport};

use crate::config::AdmmConfig;
use crate::error::TrainError;
use crate::history::ConvergenceHistory;
use crate::horizontal::linear::{validate_parts, HlLearner};
use crate::masks::SeededMasker;
use crate::Result;

/// Result of a coordinated distributed training run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The consensus model after the final round.
    pub model: LinearSvm,
    /// Per-iteration `‖z_{t+1} − z_t‖²` (and accuracy when evaluating).
    pub history: ConvergenceHistory,
    /// Network cost: `bytes_broadcast` counts every consensus frame the
    /// coordinator put on the wire (retransmits included),
    /// `bytes_shuffled` the encoded size of each accepted learner share.
    pub metrics: JobMetrics,
}

fn protocol(reason: impl Into<String>) -> TrainError {
    TrainError::Protocol {
        reason: reason.into(),
    }
}

/// Drives the coordinator side of distributed HL-SVM training.
///
/// `courier` must be the endpoint for party `learners` (the coordinator
/// sits one past the last learner); `features` is the shared feature
/// count `k` (shares are `k + 1` long: weights plus intercept).
///
/// # Errors
///
/// [`TrainError::Transport`] when a learner stays unreachable past the
/// retry budget, [`TrainError::Protocol`] on malformed or out-of-round
/// frames, plus the usual configuration errors.
pub fn coordinate_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timeout: Duration,
) -> Result<DistributedOutcome> {
    cfg.validate()?;
    if learners == 0 {
        return Err(TrainError::BadConfig {
            reason: "need at least one learner".to_string(),
        });
    }
    if (courier.party() as usize) != learners {
        return Err(TrainError::BadConfig {
            reason: format!(
                "coordinator must be party {learners}, got {}",
                courier.party()
            ),
        });
    }
    let m = learners;
    let share_len = features + 1;
    let codec = ppml_crypto::FixedPointCodec::default();
    let mut z = vec![0.0; features];
    let mut s = 0.0;
    let mut history = ConvergenceHistory::default();
    let mut metrics = JobMetrics::default();

    for iteration in 0..cfg.max_iter as u64 {
        let broadcast = Message::Consensus {
            iteration,
            z: z.clone(),
            s: vec![s],
            done: false,
        };
        for p in 0..m {
            metrics.bytes_broadcast += courier.send_reliable(p as PartyId, &broadcast)?;
        }

        // One share per learner; the ARQ layer has already deduplicated
        // retransmits, so a repeat here would be a protocol bug.
        let mut shares: Vec<Option<Vec<u64>>> = vec![None; m];
        let mut have = 0usize;
        while have < m {
            let env = courier.recv(timeout)?;
            // Learners announce themselves with a heartbeat to open the
            // connection (TCP dials lazily on first send); liveness
            // frames are not part of the round.
            if matches!(env.msg, Message::Heartbeat { .. }) {
                continue;
            }
            let frame_len = Frame::encoded_len_of(&env.msg);
            let Message::MaskedShare {
                iteration: it,
                party,
                payload,
            } = env.msg
            else {
                return Err(protocol(format!(
                    "coordinator expected a masked share, got {:?} from party {}",
                    env.msg, env.from
                )));
            };
            if it != iteration {
                return Err(protocol(format!(
                    "share for round {it} while collecting round {iteration}"
                )));
            }
            if payload.len() != share_len {
                return Err(protocol(format!(
                    "share length mismatch: expected {share_len}, got {}",
                    payload.len()
                )));
            }
            let slot = shares
                .get_mut(party as usize)
                .ok_or_else(|| protocol(format!("share from unknown party {party}")))?;
            if slot.is_some() {
                return Err(protocol(format!("duplicate share from party {party}")));
            }
            *slot = Some(payload);
            metrics.bytes_shuffled += frame_len;
            have += 1;
        }

        let mut summed = vec![0u64; share_len];
        for share in shares.iter().flatten() {
            for (acc, &v) in summed.iter_mut().zip(share) {
                *acc = acc.wrapping_add(v);
            }
        }
        let z_new: Vec<f64> = summed[..features]
            .iter()
            .map(|&v| codec.decode_u64(v) / m as f64)
            .collect();
        let s_new = codec.decode_u64(summed[features]) / m as f64;
        let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
        z = z_new;
        s = s_new;
        history.z_delta.push(delta);
        if let Some(ds) = eval {
            history
                .accuracy
                .push(LinearSvm::from_parts(z.clone(), s).accuracy(ds));
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    metrics.iterations = history.z_delta.len();

    // Final broadcast: carries the converged consensus and releases the
    // learners from their receive loop.
    let done = Message::Consensus {
        iteration: history.z_delta.len() as u64,
        z: z.clone(),
        s: vec![s],
        done: true,
    };
    for p in 0..m {
        metrics.bytes_broadcast += courier.send_reliable(p as PartyId, &done)?;
    }
    Ok(DistributedOutcome {
        model: LinearSvm::from_parts(z, s),
        history,
        metrics,
    })
}

/// Drives one learner of distributed HL-SVM training.
///
/// `courier` must be the endpoint for a party in `0..learners`; `data`
/// is this learner's horizontal partition. Blocks until the coordinator
/// (party `learners`) sends the `done` broadcast, then returns the
/// consensus model it carried.
///
/// # Errors
///
/// [`TrainError::Transport`] when the coordinator goes quiet past
/// `timeout`, [`TrainError::Protocol`] on unexpected frames, plus the
/// partition/config errors of the in-process trainer.
pub fn learn_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timeout: Duration,
) -> Result<LinearSvm> {
    cfg.validate()?;
    let party = courier.party();
    if (party as usize) >= learners {
        return Err(TrainError::BadConfig {
            reason: format!("learner party {party} out of range 0..{learners}"),
        });
    }
    let coordinator = learners as PartyId;
    let mut learner = HlLearner::new(data, learners, cfg)?;
    let masker = SeededMasker::new(cfg.seed, party as usize, learners);

    loop {
        let env = courier.recv(timeout)?;
        if matches!(env.msg, Message::Heartbeat { .. }) {
            continue;
        }
        let Message::Consensus {
            iteration,
            z,
            s,
            done,
        } = env.msg
        else {
            return Err(protocol(format!(
                "learner expected a consensus broadcast, got {:?} from party {}",
                env.msg, env.from
            )));
        };
        let s_val = s.first().copied().unwrap_or(0.0);
        if done {
            return Ok(LinearSvm::from_parts(z, s_val));
        }
        // Same step order as `ConsensusJob::map`: duals lag one round.
        if iteration > 0 {
            learner.dual_update(&z, s_val);
        }
        learner.local_step(&z, s_val, &cfg.qp)?;
        let payload = masker.mask_share(&learner.share(), iteration)?;
        courier.send_reliable(
            coordinator,
            &Message::MaskedShare {
                iteration,
                party,
                payload,
            },
        )?;
    }
}

/// Validates a set of horizontal partitions and returns the feature
/// count, for callers that need `features` before spawning a
/// coordinator. Re-exported from the trainer internals.
pub fn feature_count(parts: &[Dataset]) -> Result<usize> {
    validate_parts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{train_linear_on_cluster, ClusterTuning};
    use ppml_data::{synth, Partition};
    use ppml_transport::{LinkFilter, LoopbackHub, NetFaultPlan, RetryPolicy};
    use std::thread;

    const TIMEOUT: Duration = Duration::from_secs(10);

    fn run_distributed(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        faults: NetFaultPlan,
    ) -> (DistributedOutcome, Vec<LinearSvm>) {
        let m = parts.len();
        let features = feature_count(parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, faults);
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            handles.push(thread::spawn(move || {
                learn_linear(&mut courier, m, &part, &cfg, TIMEOUT).expect("learner")
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome =
            coordinate_linear(&mut courier, m, features, cfg, None, TIMEOUT).expect("coordinator");
        let finals = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();
        (outcome, finals)
    }

    #[test]
    fn distributed_matches_cluster_exactly() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);

        let (outcome, finals) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        let (reference, _) =
            train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster");

        // Fixed-point wrapping sums make the runs bit-identical.
        assert_eq!(outcome.model, reference.model);
        assert_eq!(outcome.history.z_delta, reference.history.z_delta);
        // Every learner saw the same final consensus.
        for f in &finals {
            assert_eq!(*f, outcome.model);
        }
    }

    #[test]
    fn metrics_count_exact_frame_bytes() {
        let ds = synth::blobs(64, 1);
        let parts = Partition::horizontal(&ds, 2, 2).expect("partition");
        let features = feature_count(&parts).expect("partitions");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(3);

        let (outcome, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        let m = parts.len();
        let rounds = outcome.metrics.iterations;

        // On a clean network every frame is sent exactly once, so the
        // counters must equal the encoded frame sizes computed offline.
        let consensus_len = |iteration: u64, done: bool| {
            Frame::encoded_len_of(&Message::Consensus {
                iteration,
                z: vec![0.0; features],
                s: vec![0.0],
                done,
            })
        };
        let share_len = Frame::encoded_len_of(&Message::MaskedShare {
            iteration: 0,
            party: 0,
            payload: vec![0; features + 1],
        });
        let expect_broadcast: usize = (0..rounds as u64)
            .map(|it| m * consensus_len(it, false))
            .sum::<usize>()
            + m * consensus_len(rounds as u64, true);
        assert_eq!(outcome.metrics.bytes_broadcast, expect_broadcast);
        assert_eq!(outcome.metrics.bytes_shuffled, rounds * m * share_len);
        assert_eq!(
            outcome.metrics.total_network_bytes(),
            expect_broadcast + rounds * m * share_len
        );
    }

    #[test]
    fn survives_dropped_shares_and_broadcasts() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);

        let (clean, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        // Drop the first two shares from learner 1 and two coordinator
        // frames toward learner 0; the ARQ retransmits both directions.
        let share_kind = Message::MaskedShare {
            iteration: 0,
            party: 0,
            payload: Vec::new(),
        }
        .kind();
        let faults = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().from(1).kind(share_kind), 2)
            .drop_frames(LinkFilter::any().from(3).to(0), 2);
        let (lossy, finals) = run_distributed(&parts, &cfg, faults);

        assert_eq!(lossy.model, clean.model);
        for f in &finals {
            assert_eq!(*f, clean.model);
        }
        // Retransmissions cost bytes: the lossy run can only be dearer.
        assert!(lossy.metrics.total_network_bytes() > clean.metrics.total_network_bytes());
    }
}
