//! Distributed HL-SVM training over a real [`Transport`] — the paper's
//! Fig. 2 star topology with actual message passing instead of the
//! simulated cluster of [`crate::jobs`].
//!
//! # Roles
//!
//! * **Learners** (parties `0..m`) each hold one horizontal partition.
//!   Per round they receive the consensus broadcast, run the local ADMM
//!   step, mask their share with the §V pairwise scheme
//!   ([`SeededMasker`]), and send the masked fixed-point vector to the
//!   coordinator.
//! * **Coordinator** (party `m`) plays the reducer: it broadcasts
//!   `(z, s)`, collects one masked share per learner, wrapping-sums them
//!   (the masks cancel), decodes the consensus update, and repeats until
//!   `cfg.max_iter` or `cfg.tol`. A final `done` broadcast carries the
//!   converged model to the learners so they can exit.
//!
//! The coordinator only ever sees masked shares and their cancelled sum,
//! exactly as in the in-process protocol; moving to a real wire changes
//! the failure model (frames can drop — the [`Courier`] ARQ recovers),
//! not the privacy argument.
//!
//! # Dropout and re-keying
//!
//! A learner process can die mid-run. The coordinator detects this in
//! two places: a reliable broadcast to the learner exhausts its retry
//! budget, or the round's collection deadline
//! ([`DistributedTiming::round_deadline`] — one [`Instant`] per round,
//! deliberately *not* refreshed by heartbeats) expires with the
//! learner's share still missing. Either way the learner is declared
//! dropped, the coordinator broadcasts [`Message::Rekey`] naming the
//! survivor set, and the survivors re-mask their cached raw share over
//! that set and re-send it for the same round. Because pair seeds derive
//! from `(seed, lo, hi)` alone, re-keying is pure local recomputation —
//! no new key agreement round. Shares carry a re-key `epoch` so in-flight
//! pre-re-key shares (masked over the old set — their masks would not
//! cancel) are recognized and discarded rather than summed. Training then
//! continues over `m' < m` learners with the consensus average divided by
//! `m'`; see `DESIGN.md` §8 for what the coordinator learns at the seam.
//!
//! Learners are symmetric: they wait at most
//! [`DistributedTiming::learner_patience`] between coordinator protocol
//! frames and exit with [`TrainError::Transport`] instead of blocking
//! forever on a dead coordinator.
//!
//! # Determinism
//!
//! Fixed-point wrapping sums are associative and mask-independent, so a
//! distributed run reproduces [`crate::jobs::train_linear_on_cluster`]
//! **bit for bit** given the same partitions and config. The tests below
//! assert exact equality — including under injected mid-round learner
//! kills, against an in-process reference that drops the same party at
//! the same round; `examples/distributed_hl.rs` does the same across OS
//! processes over TCP.

use std::time::{Duration, Instant};

use ppml_data::Dataset;
use ppml_mapreduce::JobMetrics;
use ppml_svm::LinearSvm;
use ppml_telemetry as telemetry;
use ppml_transport::{Courier, Frame, Message, PartyId, Transport, TransportError};
use telemetry::EventKind;

use crate::config::{AdmmConfig, DistributedTiming};
use crate::error::TrainError;
use crate::history::ConvergenceHistory;
use crate::horizontal::linear::{validate_parts, HlLearner};
use crate::masks::SeededMasker;
use crate::Result;

/// Result of a coordinated distributed training run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The consensus model after the final round.
    pub model: LinearSvm,
    /// Per-iteration `‖z_{t+1} − z_t‖²` (and accuracy when evaluating).
    pub history: ConvergenceHistory,
    /// Network cost: `bytes_broadcast` counts every coordinator frame put
    /// on the wire (consensus and re-key broadcasts, retransmits
    /// included), `bytes_shuffled` the encoded size of each accepted
    /// learner share.
    pub metrics: JobMetrics,
    /// Learners declared dead during the run, in drop order. Empty on a
    /// clean run.
    pub dropped: Vec<PartyId>,
}

fn protocol(reason: impl Into<String>) -> TrainError {
    TrainError::Protocol {
        reason: reason.into(),
    }
}

/// Whether a reliable-send failure indicts the *peer* rather than the
/// local fabric. A dead peer surfaces differently per transport: the
/// loopback fabric silently destroys frames until the retry budget
/// expires (`Timeout`), while TCP fails fast with `Unreachable` (dial
/// refused) or `Io` (write to a reset socket). All three mean "this
/// party is gone" and trigger dropout handling; `Closed`/`Frame` are
/// local faults and stay fatal.
fn peer_is_lost(e: &TransportError) -> bool {
    matches!(
        e,
        TransportError::Timeout | TransportError::Unreachable(_) | TransportError::Io(_)
    )
}

/// Probes sent per learner during the clock-offset handshake.
const CLOCK_PROBES: u32 = 3;
/// How long the coordinator waits for each [`Message::TimeReply`].
const CLOCK_PROBE_WAIT: Duration = Duration::from_millis(300);

/// RTT-based clock-offset handshake (ISSUE 4 tentpole, piece 3): before
/// round 0 the coordinator sends each learner [`Message::TimeProbe`]
/// frames carrying the freshly minted `run_id`, reads back the learner's
/// telemetry clock from [`Message::TimeReply`], and — taking the
/// minimum-RTT sample, NTP style — emits [`EventKind::ClockSync`] with
/// `offset ≈ peer_clock − local_clock` at the probe midpoint.
/// `ppml-trace` uses these offsets to rebase every stream onto the
/// coordinator's clock.
///
/// Only called when telemetry is enabled, so an uninstrumented run sends
/// not a single extra frame (the exact-byte-accounting tests rely on
/// this; probe traffic is likewise never charged to [`JobMetrics`]). A
/// learner that never answers (dead, or a pre-probe build) just costs
/// `CLOCK_PROBES × CLOCK_PROBE_WAIT` and gets no `ClockSync` event —
/// dropout verdicts stay the round loop's business. Runs strictly before
/// the first broadcast, when no protocol frame can be in flight, so
/// anything unexpected the probe loop swallows is liveness noise.
fn clock_sync<T: Transport>(courier: &mut Courier<T>, alive: &[bool], run_id: u64) {
    for p in (0..alive.len()).filter(|&p| alive[p]) {
        let mut best: Option<(u64, i64)> = None; // (rtt_ns, offset_ns)
        for attempt in 0..CLOCK_PROBES {
            let nonce = ((p as u64) << 8) | u64::from(attempt);
            let t0 = telemetry::now_ns();
            if courier
                .send_unreliable(p as PartyId, &Message::TimeProbe { nonce, run_id })
                .is_err()
            {
                break;
            }
            let deadline = Instant::now() + CLOCK_PROBE_WAIT;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match courier.recv(remaining) {
                    Ok(env) => match env.msg {
                        Message::TimeReply { nonce: n, t_ns } if n == nonce => {
                            let t1 = telemetry::now_ns();
                            let rtt = t1.saturating_sub(t0);
                            let midpoint = t0 + rtt / 2;
                            let offset = (t_ns as i64).wrapping_sub(midpoint as i64);
                            if best.is_none_or(|(best_rtt, _)| rtt < best_rtt) {
                                best = Some((rtt, offset));
                            }
                            break;
                        }
                        // Heartbeat announcements, stale replies: ignore.
                        _ => continue,
                    },
                    Err(_) => break,
                }
            }
        }
        if let Some((rtt_ns, offset_ns)) = best {
            telemetry::emit(
                courier.party(),
                EventKind::ClockSync {
                    peer: p as u32,
                    offset_ns,
                    rtt_ns,
                },
            );
        }
    }
}

/// Declares `lost` dropped and re-keys the round over the survivors:
/// bumps the epoch and reliably sends [`Message::Rekey`] to every
/// survivor. A survivor that cannot be reached is itself dropped and the
/// re-key restarts over the smaller set. Returns the new epoch.
fn rekey<T: Transport>(
    courier: &mut Courier<T>,
    alive: &mut [bool],
    dropped: &mut Vec<PartyId>,
    mut lost: Vec<PartyId>,
    iteration: u64,
    mut epoch: u64,
    metrics: &mut JobMetrics,
) -> Result<u64> {
    loop {
        for &p in &lost {
            alive[p as usize] = false;
            dropped.push(p);
            telemetry::emit(
                courier.party(),
                EventKind::Dropout {
                    party: p,
                    iteration,
                },
            );
        }
        let survivors: Vec<PartyId> = (0..alive.len())
            .filter(|&p| alive[p])
            .map(|p| p as PartyId)
            .collect();
        if survivors.is_empty() {
            return Err(TrainError::Dropped {
                parties: dropped.clone(),
            });
        }
        epoch += 1;
        telemetry::emit(
            courier.party(),
            EventKind::RekeyEpoch {
                iteration,
                epoch,
                survivors: survivors.len() as u32,
            },
        );
        let msg = Message::Rekey {
            iteration,
            epoch,
            survivors: survivors.clone(),
        };
        lost = Vec::new();
        for &p in &survivors {
            match courier.send_reliable(p, &msg) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => lost.push(p),
                Err(e) => return Err(e.into()),
            }
        }
        if lost.is_empty() {
            return Ok(epoch);
        }
    }
}

/// Drives the coordinator side of distributed HL-SVM training.
///
/// `courier` must be the endpoint for party `learners` (the coordinator
/// sits one past the last learner); `features` is the shared feature
/// count `k` (shares are `k + 1` long: weights plus intercept).
///
/// # Errors
///
/// [`TrainError::Dropped`] when every learner dies before the run
/// finishes, [`TrainError::Transport`] on non-timeout fabric failures,
/// [`TrainError::Protocol`] on malformed or out-of-round frames, plus
/// the usual configuration errors. A learner that merely times out is
/// not an error: it is dropped, the round is re-keyed, and training
/// continues on the survivors (reported in
/// [`DistributedOutcome::dropped`]).
pub fn coordinate_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
) -> Result<DistributedOutcome> {
    cfg.validate()?;
    timing.validate()?;
    if learners == 0 {
        return Err(TrainError::BadConfig {
            reason: "need at least one learner".to_string(),
        });
    }
    if (courier.party() as usize) != learners {
        return Err(TrainError::BadConfig {
            reason: format!(
                "coordinator must be party {learners}, got {}",
                courier.party()
            ),
        });
    }
    let m = learners;
    let share_len = features + 1;
    let codec = ppml_crypto::FixedPointCodec::default();
    let mut z = vec![0.0; features];
    let mut s = 0.0;
    let mut history = ConvergenceHistory::default();
    let mut metrics = JobMetrics::default();
    let mut alive = vec![true; m];
    let mut dropped: Vec<PartyId> = Vec::new();
    let mut epoch: u64 = 0;

    // Stamp the stream and estimate per-learner clock offsets — only
    // when someone is listening: with telemetry off this adds zero
    // frames, zero waits, zero bytes (probe traffic is never charged to
    // `metrics` either way; it is observability, not protocol cost).
    if telemetry::enabled() {
        let run_id = telemetry::fresh_run_id();
        telemetry::emit(courier.party(), EventKind::RunInfo { run_id });
        clock_sync(courier, &alive, run_id);
    }

    for iteration in 0..cfg.max_iter as u64 {
        let round_start = Instant::now();
        telemetry::emit(courier.party(), EventKind::RoundOpen { iteration, epoch });
        let broadcast = Message::Consensus {
            iteration,
            z: z.clone(),
            s: vec![s],
            done: false,
        };
        let mut lost: Vec<PartyId> = Vec::new();
        for p in (0..m).filter(|&p| alive[p]) {
            match courier.send_reliable(p as PartyId, &broadcast) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => lost.push(p as PartyId),
                Err(e) => return Err(e.into()),
            }
        }
        if !lost.is_empty() {
            epoch = rekey(
                courier,
                &mut alive,
                &mut dropped,
                lost,
                iteration,
                epoch,
                &mut metrics,
            )?;
        }

        // Collect one share per survivor. The whole attempt shares a
        // single deadline: heartbeats and discarded frames never extend
        // it, so a learner that stays silent (or only ever heartbeats)
        // is declared dropped after exactly one round_deadline.
        let shares = 'collect: loop {
            let active = alive.iter().filter(|&&a| a).count();
            let mut shares: Vec<Option<Vec<u64>>> = vec![None; m];
            let mut have = 0usize;
            let deadline = Instant::now() + timing.round_deadline;
            while have < active {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let env = match courier.recv(remaining) {
                    Ok(env) => env,
                    Err(TransportError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                // Learners announce themselves with a heartbeat to open
                // the connection (TCP dials lazily on first send);
                // liveness frames — and clock-probe replies straggling
                // in after the handshake window — are not part of the
                // round.
                if matches!(
                    env.msg,
                    Message::Heartbeat { .. } | Message::TimeReply { .. }
                ) {
                    continue;
                }
                let frame_len = Frame::encoded_len_of(&env.msg);
                let Message::MaskedShare {
                    iteration: it,
                    epoch: ep,
                    party,
                    payload,
                } = env.msg
                else {
                    return Err(protocol(format!(
                        "coordinator expected a masked share, got {:?} from party {}",
                        env.msg, env.from
                    )));
                };
                if !alive.get(party as usize).copied().unwrap_or(false) {
                    // A share from a party already declared dropped —
                    // either in flight when the verdict fell or from an
                    // unknown id; it is not part of any survivor sum.
                    continue;
                }
                if ep < epoch || it < iteration {
                    // In-flight share from before a re-key (masked over
                    // the old survivor set — its masks would not cancel)
                    // or a stale re-send; the re-keyed copy follows.
                    continue;
                }
                if ep > epoch || it > iteration {
                    return Err(protocol(format!(
                        "share from the future: round {it} epoch {ep} while collecting \
                         round {iteration} epoch {epoch}"
                    )));
                }
                if payload.len() != share_len {
                    return Err(protocol(format!(
                        "share length mismatch: expected {share_len}, got {}",
                        payload.len()
                    )));
                }
                let slot = &mut shares[party as usize];
                if slot.is_some() {
                    return Err(protocol(format!("duplicate share from party {party}")));
                }
                *slot = Some(payload);
                metrics.bytes_shuffled += frame_len;
                have += 1;
            }
            if have == active {
                break 'collect shares;
            }
            // Deadline expired: every survivor still missing is dropped,
            // the rest re-key and re-send for this same round.
            let lost: Vec<PartyId> = (0..m)
                .filter(|&p| alive[p] && shares[p].is_none())
                .map(|p| p as PartyId)
                .collect();
            telemetry::emit(
                courier.party(),
                EventKind::DeadlineMiss {
                    iteration,
                    epoch,
                    missing: lost.len() as u32,
                },
            );
            epoch = rekey(
                courier,
                &mut alive,
                &mut dropped,
                lost,
                iteration,
                epoch,
                &mut metrics,
            )?;
        };

        let active = alive.iter().filter(|&&a| a).count();
        telemetry::emit(
            courier.party(),
            EventKind::RoundClose {
                iteration,
                epoch,
                shares: active as u32,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        let mut summed = vec![0u64; share_len];
        for share in shares.iter().flatten() {
            for (acc, &v) in summed.iter_mut().zip(share) {
                *acc = acc.wrapping_add(v);
            }
        }
        let z_new: Vec<f64> = summed[..features]
            .iter()
            .map(|&v| codec.decode_u64(v) / active as f64)
            .collect();
        let s_new = codec.decode_u64(summed[features]) / active as f64;
        let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
        z = z_new;
        s = s_new;
        history.z_delta.push(delta);
        if let Some(ds) = eval {
            history
                .accuracy
                .push(LinearSvm::from_parts(z.clone(), s).accuracy(ds));
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    metrics.iterations = history.z_delta.len();

    // Final broadcast: carries the converged consensus and releases the
    // learners from their receive loop. A survivor that dies this late
    // cannot hurt the model; it is only recorded as dropped.
    let done = Message::Consensus {
        iteration: history.z_delta.len() as u64,
        z: z.clone(),
        s: vec![s],
        done: true,
    };
    for p in (0..m).filter(|&p| alive[p]) {
        match courier.send_reliable(p as PartyId, &done) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => dropped.push(p as PartyId),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(DistributedOutcome {
        model: LinearSvm::from_parts(z, s),
        history,
        metrics,
        dropped,
    })
}

/// Drives one learner of distributed HL-SVM training.
///
/// `courier` must be the endpoint for a party in `0..learners`; `data`
/// is this learner's horizontal partition. Blocks until the coordinator
/// (party `learners`) sends the `done` broadcast, then returns the
/// consensus model it carried.
///
/// # Errors
///
/// [`TrainError::Transport`] when the coordinator goes quiet past
/// [`DistributedTiming::learner_patience`] (heartbeats do not count as
/// liveness) or a send exhausts its retries, [`TrainError::Protocol`]
/// on unexpected frames, plus the partition/config errors of the
/// in-process trainer.
pub fn learn_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
) -> Result<LinearSvm> {
    learn_linear_inner(courier, learners, data, cfg, timing, None)
}

/// Fault-injection variant of [`learn_linear`]: behaves correctly for
/// rounds `0..defect_after`, then goes *silent* — it keeps receiving
/// (and therefore ACKing) every frame, so the coordinator's broadcasts
/// still succeed and the dropout can only be detected by the round
/// deadline in the collect phase, producing the canonical
/// DeadlineMiss → Dropout → RekeyEpoch sequence on the coordinator's
/// stream. The tests and the `--defect-after` flag of `ppml-learner`
/// use this to script that scenario deterministically.
///
/// # Errors
///
/// The expected exit is [`TrainError::Transport`] with a timeout once
/// the coordinator has dropped this learner and stopped talking to it;
/// other errors as [`learn_linear`].
pub fn learn_linear_with_defect<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    defect_after: u64,
) -> Result<LinearSvm> {
    learn_linear_inner(courier, learners, data, cfg, timing, Some(defect_after))
}

fn learn_linear_inner<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    defect_after: Option<u64>,
) -> Result<LinearSvm> {
    cfg.validate()?;
    timing.validate()?;
    let party = courier.party();
    if (party as usize) >= learners {
        return Err(TrainError::BadConfig {
            reason: format!("learner party {party} out of range 0..{learners}"),
        });
    }
    let coordinator = learners as PartyId;
    let mut learner = HlLearner::new(data, learners, cfg)?;
    let masker = SeededMasker::new(cfg.seed, party as usize, learners);
    let mut present: Vec<usize> = (0..learners).collect();
    let mut epoch: u64 = 0;
    let mut expected_iter: u64 = 0;
    // Raw (unmasked) share of the last computed round, kept so a re-key
    // can re-mask it over the survivor set without recomputing the QP.
    let mut last_raw: Option<(u64, Vec<f64>)> = None;
    let mut deadline = Instant::now() + timing.learner_patience;
    let mut run_id_seen = false;

    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TrainError::Transport(TransportError::Timeout));
        }
        let env = match courier.recv(remaining) {
            Ok(env) => env,
            Err(TransportError::Timeout) => {
                return Err(TrainError::Transport(TransportError::Timeout))
            }
            Err(e) => return Err(e.into()),
        };
        match env.msg {
            // Liveness noise keeps the connection warm but is no proof
            // the protocol is advancing; it does not refresh patience.
            Message::Heartbeat { .. } => continue,
            // Clock-offset probe: stamp this stream with the gossiped
            // run id (once) and echo the local telemetry clock back.
            // Observability traffic, not protocol progress — patience is
            // not refreshed, and a failed reply is the coordinator's
            // problem to time out on.
            Message::TimeProbe { nonce, run_id } => {
                if telemetry::enabled() && !run_id_seen {
                    run_id_seen = true;
                    telemetry::emit(party, EventKind::RunInfo { run_id });
                }
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::TimeReply {
                        nonce,
                        t_ns: telemetry::now_ns(),
                    },
                );
                continue;
            }
            Message::Consensus {
                iteration,
                z,
                s,
                done,
            } => {
                let s_val = s.first().copied().unwrap_or(0.0);
                if done {
                    return Ok(LinearSvm::from_parts(z, s_val));
                }
                if iteration < expected_iter {
                    // Stale or duplicated broadcast of an already
                    // processed round: recomputing would desynchronize
                    // the duals and double-send a share.
                    continue;
                }
                if iteration > expected_iter {
                    return Err(protocol(format!(
                        "consensus skipped ahead to round {iteration} while expecting \
                         {expected_iter}"
                    )));
                }
                if defect_after.is_some_and(|d| iteration >= d) {
                    // Scripted defection: the round is received (and was
                    // ACKed by the transport) but no share goes back.
                    // Keep draining so the link stays warm until the
                    // coordinator drops us and the patience clock runs
                    // out.
                    expected_iter = iteration + 1;
                    deadline = Instant::now() + timing.learner_patience;
                    continue;
                }
                telemetry::emit(party, EventKind::RoundOpen { iteration, epoch });
                let round_start = Instant::now();
                // Same step order as `ConsensusJob::map`: duals lag one
                // round.
                if iteration > 0 {
                    learner.dual_update(&z, s_val);
                }
                learner.local_step(&z, s_val, &cfg.qp)?;
                let raw = learner.share();
                let payload = masker.mask_share_among(&raw, iteration, &present)?;
                courier.send_reliable(
                    coordinator,
                    &Message::MaskedShare {
                        iteration,
                        epoch,
                        party,
                        payload,
                    },
                )?;
                telemetry::emit(
                    party,
                    EventKind::RoundClose {
                        iteration,
                        epoch,
                        shares: 1,
                        elapsed_ns: round_start.elapsed().as_nanos() as u64,
                    },
                );
                last_raw = Some((iteration, raw));
                expected_iter = iteration + 1;
                deadline = Instant::now() + timing.learner_patience;
            }
            Message::Rekey {
                iteration,
                epoch: new_epoch,
                survivors,
            } => {
                if new_epoch <= epoch {
                    // Out-of-order or duplicated re-key; a newer one has
                    // already been applied.
                    continue;
                }
                if !survivors.contains(&party) {
                    return Err(protocol(format!(
                        "re-key for round {iteration} excludes this learner"
                    )));
                }
                epoch = new_epoch;
                present = survivors.iter().map(|&p| p as usize).collect();
                telemetry::emit(
                    party,
                    EventKind::RekeyEpoch {
                        iteration,
                        epoch,
                        survivors: survivors.len() as u32,
                    },
                );
                let Some((it, raw)) = last_raw.as_ref() else {
                    return Err(protocol("re-key before any share was sent".to_string()));
                };
                if *it != iteration {
                    return Err(protocol(format!(
                        "re-key for round {iteration} but last computed round is {it}"
                    )));
                }
                let payload = masker.mask_share_among(raw, iteration, &present)?;
                courier.send_reliable(
                    coordinator,
                    &Message::MaskedShare {
                        iteration,
                        epoch,
                        party,
                        payload,
                    },
                )?;
                deadline = Instant::now() + timing.learner_patience;
            }
            other => {
                return Err(protocol(format!(
                    "learner expected consensus or re-key, got {other:?} from party {}",
                    env.from
                )))
            }
        }
    }
}

/// Validates a set of horizontal partitions and returns the feature
/// count, for callers that need `features` before spawning a
/// coordinator. Re-exported from the trainer internals.
pub fn feature_count(parts: &[Dataset]) -> Result<usize> {
    validate_parts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{train_linear_on_cluster, ClusterTuning};
    use ppml_data::{synth, Partition};
    use ppml_transport::{LinkFilter, LoopbackHub, NetFaultPlan, RetryPolicy};
    use std::thread;
    use std::time::Duration;

    fn calm() -> DistributedTiming {
        DistributedTiming::default()
    }

    /// Tight clocks for fault tests: one deadline's worth of waiting per
    /// dropout, and learners that give up on a dead coordinator fast.
    fn twitchy() -> DistributedTiming {
        DistributedTiming::default()
            .with_round_deadline(Duration::from_millis(800))
            .with_learner_patience(Duration::from_secs(2))
    }

    struct DistRun {
        outcome: Result<DistributedOutcome>,
        finals: Vec<Result<LinearSvm>>,
    }

    fn run_with_faults(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        faults: NetFaultPlan,
        timing: DistributedTiming,
    ) -> DistRun {
        let m = parts.len();
        let features = feature_count(parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, faults);
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            handles.push(thread::spawn(move || {
                learn_linear(&mut courier, m, &part, &cfg, timing)
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome = coordinate_linear(&mut courier, m, features, cfg, None, timing);
        let finals = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();
        DistRun { outcome, finals }
    }

    fn run_distributed(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        faults: NetFaultPlan,
    ) -> (DistributedOutcome, Vec<LinearSvm>) {
        let run = run_with_faults(parts, cfg, faults, calm());
        (
            run.outcome.expect("coordinator"),
            run.finals
                .into_iter()
                .map(|f| f.expect("learner"))
                .collect(),
        )
    }

    /// In-process replica of a run where each `(party, round)` in `drops`
    /// stops contributing from `round` on. Mirrors the wire protocol's
    /// arithmetic exactly: per-round fixed-point encode, wrapping sum
    /// over the active set, decode, divide by the active count.
    fn reference_with_dropouts(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        drops: &[(usize, u64)],
    ) -> LinearSvm {
        let m = parts.len();
        let features = feature_count(parts).expect("partitions");
        let codec = ppml_crypto::FixedPointCodec::default();
        let mut learners: Vec<HlLearner> = parts
            .iter()
            .map(|p| HlLearner::new(p, m, cfg).expect("learner"))
            .collect();
        let mut z = vec![0.0; features];
        let mut s = 0.0;
        for it in 0..cfg.max_iter as u64 {
            let active: Vec<usize> = (0..m)
                .filter(|&p| !drops.iter().any(|&(dp, dr)| dp == p && it >= dr))
                .collect();
            let mut summed = vec![0u64; features + 1];
            for &p in &active {
                if it > 0 {
                    learners[p].dual_update(&z, s);
                }
                learners[p].local_step(&z, s, &cfg.qp).expect("qp");
                for (acc, v) in summed.iter_mut().zip(learners[p].share()) {
                    *acc = acc.wrapping_add(codec.encode_u64(v).expect("encode"));
                }
            }
            let z_new: Vec<f64> = summed[..features]
                .iter()
                .map(|&v| codec.decode_u64(v) / active.len() as f64)
                .collect();
            let s_new = codec.decode_u64(summed[features]) / active.len() as f64;
            let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
            z = z_new;
            s = s_new;
            if let Some(tol) = cfg.tol {
                if delta < tol {
                    break;
                }
            }
        }
        LinearSvm::from_parts(z, s)
    }

    #[test]
    fn distributed_matches_cluster_exactly() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);

        let (outcome, finals) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        let (reference, _) =
            train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster");

        // Fixed-point wrapping sums make the runs bit-identical.
        assert_eq!(outcome.model, reference.model);
        assert_eq!(outcome.history.z_delta, reference.history.z_delta);
        assert!(outcome.dropped.is_empty());
        // Every learner saw the same final consensus.
        for f in &finals {
            assert_eq!(*f, outcome.model);
        }
    }

    #[test]
    fn metrics_count_exact_frame_bytes() {
        let ds = synth::blobs(64, 1);
        let parts = Partition::horizontal(&ds, 2, 2).expect("partition");
        let features = feature_count(&parts).expect("partitions");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(3);

        let (outcome, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        let m = parts.len();
        let rounds = outcome.metrics.iterations;

        // On a clean network every frame is sent exactly once, so the
        // counters must equal the encoded frame sizes computed offline.
        let consensus_len = |iteration: u64, done: bool| {
            Frame::encoded_len_of(&Message::Consensus {
                iteration,
                z: vec![0.0; features],
                s: vec![0.0],
                done,
            })
        };
        let share_len = Frame::encoded_len_of(&Message::MaskedShare {
            iteration: 0,
            epoch: 0,
            party: 0,
            payload: vec![0; features + 1],
        });
        let expect_broadcast: usize = (0..rounds as u64)
            .map(|it| m * consensus_len(it, false))
            .sum::<usize>()
            + m * consensus_len(rounds as u64, true);
        assert_eq!(outcome.metrics.bytes_broadcast, expect_broadcast);
        assert_eq!(outcome.metrics.bytes_shuffled, rounds * m * share_len);
        assert_eq!(
            outcome.metrics.total_network_bytes(),
            expect_broadcast + rounds * m * share_len
        );
    }

    #[test]
    fn survives_dropped_shares_and_broadcasts() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);

        let (clean, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        // Drop the first two shares from learner 1 and two coordinator
        // frames toward learner 0; the ARQ retransmits both directions.
        let share_kind = Message::MaskedShare {
            iteration: 0,
            epoch: 0,
            party: 0,
            payload: Vec::new(),
        }
        .kind();
        let faults = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().from(1).kind(share_kind), 2)
            .drop_frames(LinkFilter::any().from(3).to(0), 2);
        let (lossy, finals) = run_distributed(&parts, &cfg, faults);

        assert_eq!(lossy.model, clean.model);
        assert!(lossy.dropped.is_empty(), "transient loss is not dropout");
        for f in &finals {
            assert_eq!(*f, clean.model);
        }
        // Retransmissions cost bytes: the lossy run can only be dearer.
        assert!(lossy.metrics.total_network_bytes() > clean.metrics.total_network_bytes());
    }

    #[test]
    fn killed_learner_is_dropped_and_survivors_finish() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);

        // Learner 1 dies after its round-0 and round-1 shares: the
        // coordinator's round-2 broadcast to it exhausts its retries, so
        // the drop is detected in the *broadcast* phase.
        let faults = NetFaultPlan::none().kill_party_after(1, 2);
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        let outcome = run.outcome.expect("survivors must finish");
        assert_eq!(outcome.dropped, vec![1]);
        // Bit-identical to an in-process run that loses party 1 at round 2.
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2)]);
        assert_eq!(outcome.model, reference);
        // Survivors converge to the same model; the dead learner errors.
        assert_eq!(*run.finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert_eq!(*run.finals[2].as_ref().expect("survivor 2"), outcome.model);
        assert!(matches!(run.finals[1], Err(TrainError::Transport(_))));
    }

    #[test]
    fn silent_learner_is_dropped_at_the_round_deadline() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);

        // Learner 1 stays reachable (its acks flow) but its share frames
        // from round 2 on never arrive: data seqs on the learner→
        // coordinator link count 1, 2, 3…, so pinning seq ≥ 3 kills
        // exactly the round-2 share and everything after. The drop is
        // detected by the round deadline in the *collect* phase.
        let share_kind = Message::MaskedShare {
            iteration: 0,
            epoch: 0,
            party: 0,
            payload: Vec::new(),
        }
        .kind();
        let faults = NetFaultPlan::none().drop_frames(
            LinkFilter::any()
                .from(1)
                .to(3)
                .kind(share_kind)
                .seq_at_least(3),
            u32::MAX,
        );
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        let outcome = run.outcome.expect("survivors must finish");
        assert_eq!(outcome.dropped, vec![1]);
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2)]);
        assert_eq!(outcome.model, reference);
        assert_eq!(*run.finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert_eq!(*run.finals[2].as_ref().expect("survivor 2"), outcome.model);
        // The silenced learner's own send eventually times out.
        assert!(matches!(run.finals[1], Err(TrainError::Transport(_))));
    }

    #[test]
    fn double_dropout_shrinks_to_a_single_survivor() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);

        // Learner 1 dies at round 2 (after 2 countable frames). Learner 2
        // then sends share(2) twice (pre- and post-re-key) and share(3) —
        // five countable frames — before dying at round 4, leaving
        // learner 0 to finish alone with bare (unmasked-by-pairs) shares.
        let faults = NetFaultPlan::none()
            .kill_party_after(1, 2)
            .kill_party_after(2, 5);
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        let outcome = run.outcome.expect("last survivor must finish");
        assert_eq!(outcome.dropped, vec![1, 2]);
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2), (2, 4)]);
        assert_eq!(outcome.model, reference);
        assert_eq!(*run.finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert!(matches!(run.finals[1], Err(TrainError::Transport(_))));
        assert!(matches!(run.finals[2], Err(TrainError::Transport(_))));
    }

    #[test]
    fn scripted_defection_is_dropped_like_a_real_fault() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
        let timing = twitchy();

        // Learner 1 runs `learn_linear_with_defect(.., 2)`: correct for
        // rounds 0 and 1, then silent-but-ACKing. No network faults at
        // all — the dropout is entirely scripted, so the coordinator
        // must detect it via the round deadline and the result must be
        // bit-identical to losing party 1 at round 2 for real.
        let m = parts.len();
        let features = feature_count(&parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, NetFaultPlan::none());
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            handles.push(thread::spawn(move || {
                if p == 1 {
                    learn_linear_with_defect(&mut courier, m, &part, &cfg, timing, 2)
                } else {
                    learn_linear(&mut courier, m, &part, &cfg, timing)
                }
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome =
            coordinate_linear(&mut courier, m, features, &cfg, None, timing).expect("survivors");
        let finals: Vec<Result<LinearSvm>> = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();

        assert_eq!(outcome.dropped, vec![1]);
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2)]);
        assert_eq!(outcome.model, reference);
        assert_eq!(*finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert_eq!(*finals[2].as_ref().expect("survivor 2"), outcome.model);
        // The defector drains until the coordinator goes quiet on it,
        // then exits on its patience clock.
        assert!(matches!(finals[1], Err(TrainError::Transport(_))));
    }

    #[test]
    fn learners_error_out_when_the_coordinator_dies() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(8).with_seed(11);

        // The coordinator dies mid-broadcast of round 1 (3 consensus
        // frames for round 0 plus two for round 1). Nobody may hang: the
        // coordinator fails to re-key anyone and reports total dropout;
        // the learners hit either a send retry budget or their patience.
        let faults = NetFaultPlan::none().kill_party_after(3, 5);
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        assert!(
            matches!(run.outcome, Err(TrainError::Dropped { ref parties }) if parties.len() == 3),
            "coordinator must report losing everyone, got {:?}",
            run.outcome.as_ref().map(|_| ())
        );
        for f in &run.finals {
            assert!(
                matches!(f, Err(TrainError::Transport(_))),
                "learner must exit with a transport error, not hang"
            );
        }
    }

    #[test]
    fn learner_ignores_stale_consensus_rebroadcasts() {
        let ds = synth::blobs(48, 7);
        let parts = Partition::horizontal(&ds, 1, 2).expect("partition");
        let part = parts[0].clone();
        let features = feature_count(&parts).expect("partitions");
        let cfg = AdmmConfig::default().with_max_iter(4).with_seed(5);

        let consensus_kind = Message::Consensus {
            iteration: 0,
            z: Vec::new(),
            s: Vec::new(),
            done: false,
        }
        .kind();
        // Hold back the coordinator's second consensus frame (the stale
        // duplicate of round 0, sent unreliably at seq 2) until one later
        // frame has been delivered — the learner then sees round 1 first
        // and the round-0 duplicate afterwards.
        let faults = NetFaultPlan::none().delay_frames(
            LinkFilter::any()
                .from(1)
                .to(0)
                .kind(consensus_kind)
                .seq_at_least(2),
            1,
            1,
        );
        let hub = LoopbackHub::with_faults(2, faults);
        let mut learner_courier = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let timing = calm();
        let cfg_l = cfg;
        let handle =
            thread::spawn(move || learn_linear(&mut learner_courier, 1, &part, &cfg_l, timing));

        let mut c = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        let consensus = |iteration: u64, z: Vec<f64>, s: f64, done: bool| Message::Consensus {
            iteration,
            z,
            s: vec![s],
            done,
        };
        let recv_share = |c: &mut Courier<_>| loop {
            let env = c.recv(Duration::from_secs(5)).expect("share");
            match env.msg {
                Message::Heartbeat { .. } => continue,
                Message::MaskedShare {
                    iteration, epoch, ..
                } => break (iteration, epoch),
                other => panic!("unexpected frame: {other:?}"),
            }
        };

        c.send_reliable(0, &consensus(0, vec![0.0; features], 0.0, false))
            .expect("round 0");
        assert_eq!(recv_share(&mut c), (0, 0));
        // A stale re-broadcast of round 0 with a fresh sequence number —
        // the ARQ dedup cannot flag it, only the learner's own iteration
        // tracking can. The delay fault reorders it past round 1.
        c.send_unreliable(0, &consensus(0, vec![0.0; features], 0.0, false))
            .expect("stale duplicate");
        c.send_reliable(0, &consensus(1, vec![0.1; features], 0.05, false))
            .expect("round 1");
        assert_eq!(recv_share(&mut c), (1, 0));
        // The ignored duplicate must not produce a third share.
        assert!(
            matches!(
                c.recv(Duration::from_millis(300)),
                Err(TransportError::Timeout)
            ),
            "stale consensus must not re-trigger a share"
        );
        c.send_reliable(0, &consensus(2, vec![0.2; features], 0.1, true))
            .expect("done");
        let model = handle.join().expect("learner thread").expect("learner");
        assert_eq!(model, LinearSvm::from_parts(vec![0.2; features], 0.1));
    }
}
