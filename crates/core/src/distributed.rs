//! Distributed HL-SVM training over a real [`Transport`] — the paper's
//! Fig. 2 star topology with actual message passing instead of the
//! simulated cluster of [`crate::jobs`].
//!
//! # Roles
//!
//! * **Learners** (parties `0..m`) each hold one horizontal partition.
//!   Per round they receive the consensus broadcast, run the local ADMM
//!   step, mask their share with the §V pairwise scheme
//!   ([`SeededMasker`]), and send the masked fixed-point vector to the
//!   coordinator.
//! * **Coordinator** (party `m`) plays the reducer: it broadcasts
//!   `(z, s)`, collects one masked share per learner, wrapping-sums them
//!   (the masks cancel), decodes the consensus update, and repeats until
//!   `cfg.max_iter` or `cfg.tol`. A final `done` broadcast carries the
//!   converged model to the learners so they can exit.
//!
//! The coordinator only ever sees masked shares and their cancelled sum,
//! exactly as in the in-process protocol; moving to a real wire changes
//! the failure model (frames can drop — the [`Courier`] ARQ recovers),
//! not the privacy argument.
//!
//! # Dropout and re-keying
//!
//! A learner process can die mid-run. The coordinator detects this in
//! two places: a reliable broadcast to the learner exhausts its retry
//! budget, or the round's collection deadline
//! ([`DistributedTiming::round_deadline`] — one [`Instant`] per round,
//! deliberately *not* refreshed by heartbeats) expires with the
//! learner's share still missing. Either way the learner is declared
//! dropped, the coordinator broadcasts [`Message::Rekey`] naming the
//! survivor set, and the survivors re-mask their cached raw share over
//! that set and re-send it for the same round. Because pair seeds derive
//! from `(seed, lo, hi)` alone, re-keying is pure local recomputation —
//! no new key agreement round. Shares carry a re-key `epoch` so in-flight
//! pre-re-key shares (masked over the old set — their masks would not
//! cancel) are recognized and discarded rather than summed. Training then
//! continues over `m' < m` learners with the consensus average divided by
//! `m'`; see `DESIGN.md` §8 for what the coordinator learns at the seam.
//!
//! Learners are symmetric: they wait at most
//! [`DistributedTiming::learner_patience`] between coordinator protocol
//! frames and exit with [`TrainError::Transport`] instead of blocking
//! forever on a dead coordinator. While waiting they poll in short
//! slices and keep the coordinator link warm with heartbeats, so a
//! coordinator that *restarts* (below) is re-dialed automatically.
//!
//! # Crash recovery: checkpoint, resume, rejoin
//!
//! [`RecoveryOptions`] turns the one-shot protocol into a recoverable
//! one:
//!
//! * with `checkpoint_to` set, the coordinator writes a crash-consistent
//!   [`Checkpoint`] after every accepted round (write-temp → fsync →
//!   rename, so a crash never leaves a torn file);
//! * with `resume_from` set, a restarted coordinator re-enters the run
//!   mid-flight: it restores the iterate and roster, bumps the re-key
//!   epoch past anything a surviving learner can hold, and reliably
//!   re-introduces itself with [`Message::Welcome`] before
//!   re-broadcasting the checkpointed round. A learner that already
//!   computed that round re-sends its cached share re-masked under the
//!   new epoch instead of recomputing, so the resumed run reproduces the
//!   uninterrupted one bit for bit;
//! * a killed-and-restarted *learner* calls [`rejoin_linear`]: it probes
//!   with [`Message::Join`] until the coordinator re-admits it at a
//!   round boundary — re-keying the §V masks over the enlarged survivor
//!   set and streaming the current iterate in a Welcome. The rejoiner
//!   warm-starts with zeroed duals; because pair seeds derive from
//!   `(seed, lo, hi)` alone, enlarging the set is pure local
//!   recomputation and the rejoiner learns nothing about the rounds it
//!   missed (see `DESIGN.md` §8).
//!
//! # Determinism
//!
//! Fixed-point wrapping sums are associative and mask-independent, so a
//! distributed run reproduces [`crate::jobs::train_linear_on_cluster`]
//! **bit for bit** given the same partitions and config. The tests below
//! assert exact equality — including under injected mid-round learner
//! kills, against an in-process reference that drops the same party at
//! the same round; `examples/distributed_hl.rs` does the same across OS
//! processes over TCP.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ppml_data::Dataset;
use ppml_mapreduce::JobMetrics;
use ppml_svm::LinearSvm;
use ppml_telemetry as telemetry;
use ppml_transport::{Courier, Frame, Message, PartyId, Transport, TransportError};
use telemetry::EventKind;

use crate::checkpoint::Checkpoint;
use crate::config::{AdmmConfig, DistributedTiming};
use crate::error::TrainError;
use crate::history::ConvergenceHistory;
use crate::horizontal::linear::{validate_parts, HlLearner};
use crate::masks::SeededMasker;
use crate::observe::{self, TelemetryRelay};
use crate::Result;

/// Result of a coordinated distributed training run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The consensus model after the final round.
    pub model: LinearSvm,
    /// Per-iteration `‖z_{t+1} − z_t‖²` (and accuracy when evaluating).
    pub history: ConvergenceHistory,
    /// Network cost: `bytes_broadcast` counts every coordinator frame put
    /// on the wire (consensus and re-key broadcasts, retransmits
    /// included), `bytes_shuffled` the encoded size of each accepted
    /// learner share.
    pub metrics: JobMetrics,
    /// Learners declared dead during the run, in drop order. Empty on a
    /// clean run.
    pub dropped: Vec<PartyId>,
}

/// Crash-recovery knobs for [`coordinate_linear_with_recovery`]: where
/// to write per-round checkpoints, and optionally a checkpoint to resume
/// from instead of starting at round 0. The default (no checkpointing,
/// no resume) reproduces [`coordinate_linear`] exactly.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Write a crash-consistent [`Checkpoint`] here after every accepted
    /// round (atomic write-temp → fsync → rename; see
    /// [`Checkpoint::save`]).
    pub checkpoint_to: Option<PathBuf>,
    /// Resume a crashed run from this (already loaded and validated)
    /// checkpoint: restore the iterate and roster, bump the epoch past
    /// anything a learner can hold, re-welcome the survivors, and
    /// continue at the checkpointed round.
    pub resume_from: Option<Checkpoint>,
}

impl RecoveryOptions {
    /// Enables per-round checkpoint writes to `path`.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_to = Some(path.into());
        self
    }

    /// Resumes the run recorded in `ckpt` instead of starting fresh.
    #[must_use]
    pub fn with_resume(mut self, ckpt: Checkpoint) -> Self {
        self.resume_from = Some(ckpt);
        self
    }
}

pub(crate) fn protocol(reason: impl Into<String>) -> TrainError {
    TrainError::Protocol {
        reason: reason.into(),
    }
}

/// Whether a reliable-send failure indicts the *peer* rather than the
/// local fabric. A dead peer surfaces differently per transport: the
/// loopback fabric silently destroys frames until the retry budget
/// expires (`Timeout`), while TCP fails fast with `Unreachable` (dial
/// refused) or `Io` (write to a reset socket). All three mean "this
/// party is gone" and trigger dropout handling; `Closed`/`Frame` are
/// local faults and stay fatal.
pub(crate) fn peer_is_lost(e: &TransportError) -> bool {
    matches!(
        e,
        TransportError::Timeout | TransportError::Unreachable(_) | TransportError::Io(_)
    )
}

/// Probes sent per learner during the clock-offset handshake.
const CLOCK_PROBES: u32 = 3;
/// How long the coordinator waits for each [`Message::TimeReply`].
const CLOCK_PROBE_WAIT: Duration = Duration::from_millis(300);

/// RTT-based clock-offset handshake (ISSUE 4 tentpole, piece 3): before
/// round 0 the coordinator sends each learner [`Message::TimeProbe`]
/// frames carrying the freshly minted `run_id`, reads back the learner's
/// telemetry clock from [`Message::TimeReply`], and — taking the
/// minimum-RTT sample, NTP style — emits [`EventKind::ClockSync`] with
/// `offset ≈ peer_clock − local_clock` at the probe midpoint.
/// `ppml-trace` uses these offsets to rebase every stream onto the
/// coordinator's clock.
///
/// Only called when telemetry is enabled, so an uninstrumented run sends
/// not a single extra frame (the exact-byte-accounting tests rely on
/// this; probe traffic is likewise never charged to [`JobMetrics`]). A
/// learner that never answers (dead, or a pre-probe build) just costs
/// `CLOCK_PROBES × CLOCK_PROBE_WAIT` and gets no `ClockSync` event —
/// dropout verdicts stay the round loop's business. Runs strictly before
/// the first broadcast, when no protocol frame can be in flight, so
/// anything unexpected the probe loop swallows is liveness noise.
pub(crate) fn clock_sync<T: Transport>(courier: &mut Courier<T>, alive: &[bool], run_id: u64) {
    for p in (0..alive.len()).filter(|&p| alive[p]) {
        let mut best: Option<(u64, i64)> = None; // (rtt_ns, offset_ns)
        for attempt in 0..CLOCK_PROBES {
            let nonce = ((p as u64) << 8) | u64::from(attempt);
            let t0 = telemetry::now_ns();
            if courier
                .send_unreliable(p as PartyId, &Message::TimeProbe { nonce, run_id })
                .is_err()
            {
                break;
            }
            let deadline = Instant::now() + CLOCK_PROBE_WAIT;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match courier.recv(remaining) {
                    Ok(env) => match env.msg {
                        Message::TimeReply { nonce: n, t_ns } if n == nonce => {
                            let t1 = telemetry::now_ns();
                            let rtt = t1.saturating_sub(t0);
                            let midpoint = t0 + rtt / 2;
                            let offset = (t_ns as i64).wrapping_sub(midpoint as i64);
                            if best.is_none_or(|(best_rtt, _)| rtt < best_rtt) {
                                best = Some((rtt, offset));
                            }
                            break;
                        }
                        // Heartbeat announcements, stale replies: ignore.
                        _ => continue,
                    },
                    Err(_) => break,
                }
            }
        }
        if let Some((rtt_ns, offset_ns)) = best {
            telemetry::emit(
                courier.party(),
                EventKind::ClockSync {
                    peer: p as u32,
                    offset_ns,
                    rtt_ns,
                },
            );
        }
    }
}

/// Declares `lost` dropped and re-keys the round over the survivors:
/// bumps the epoch and reliably sends [`Message::Rekey`] to every
/// survivor. A survivor that cannot be reached is itself dropped and the
/// re-key restarts over the smaller set. Returns the new epoch.
fn rekey<T: Transport>(
    courier: &mut Courier<T>,
    alive: &mut [bool],
    dropped: &mut Vec<PartyId>,
    mut lost: Vec<PartyId>,
    iteration: u64,
    mut epoch: u64,
    metrics: &mut JobMetrics,
) -> Result<u64> {
    loop {
        for &p in &lost {
            alive[p as usize] = false;
            dropped.push(p);
            telemetry::emit(
                courier.party(),
                EventKind::Dropout {
                    party: p,
                    iteration,
                },
            );
        }
        let survivors: Vec<PartyId> = (0..alive.len())
            .filter(|&p| alive[p])
            .map(|p| p as PartyId)
            .collect();
        if survivors.is_empty() {
            return Err(TrainError::Dropped {
                parties: dropped.clone(),
            });
        }
        epoch += 1;
        telemetry::emit(
            courier.party(),
            EventKind::RekeyEpoch {
                iteration,
                epoch,
                survivors: survivors.len() as u32,
            },
        );
        let msg = Message::Rekey {
            iteration,
            epoch,
            survivors: survivors.clone(),
        };
        lost = Vec::new();
        for &p in &survivors {
            match courier.send_reliable(p, &msg) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => lost.push(p),
                Err(e) => return Err(e.into()),
            }
        }
        if lost.is_empty() {
            return Ok(epoch);
        }
    }
}

/// Re-enters a run from a checkpoint: emits the resume event, clears
/// per-peer transport state (the restarted process's sequence numbers
/// start over — without the reset every learner would treat them as
/// replays), and reliably streams a [`Message::Welcome`] — new epoch,
/// survivor set, current iterate — to every learner the checkpoint
/// believed alive. A learner that cannot be reached any more is dropped
/// and the survivor set re-keyed, exactly as in a live round. Returns
/// the (possibly further bumped) epoch.
#[allow(clippy::too_many_arguments)]
fn resume_handshake<T: Transport>(
    courier: &mut Courier<T>,
    alive: &mut [bool],
    dropped: &mut Vec<PartyId>,
    start_round: u64,
    epoch: u64,
    z: &[f64],
    s: f64,
    metrics: &mut JobMetrics,
) -> Result<u64> {
    let survivors: Vec<PartyId> = (0..alive.len())
        .filter(|&p| alive[p])
        .map(|p| p as PartyId)
        .collect();
    telemetry::emit(
        courier.party(),
        EventKind::ResumeFromCheckpoint {
            iteration: start_round,
            epoch,
            survivors: survivors.len() as u32,
        },
    );
    let welcome = Message::Welcome {
        nonce: 0,
        iteration: start_round,
        epoch,
        survivors: survivors.clone(),
        z: z.to_vec(),
        s: vec![s],
    };
    let mut lost: Vec<PartyId> = Vec::new();
    for &p in &survivors {
        match courier.send_reliable(p, &welcome) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => lost.push(p),
            Err(e) => return Err(e.into()),
        }
    }
    if lost.is_empty() {
        Ok(epoch)
    } else {
        rekey(courier, alive, dropped, lost, start_round, epoch, metrics)
    }
}

/// Re-admits rejoining learners at a round boundary: marks each pending
/// joiner alive again, bumps the §V re-key epoch once over the enlarged
/// survivor set, answers every joiner's [`Message::Join`] with a
/// [`Message::Welcome`] carrying its nonce and the current iterate, and
/// tells the veterans via [`Message::Rekey`] naming the *upcoming*
/// round (nothing to re-send — the consensus broadcast that follows
/// carries the work). Joins from parties still alive (duplicates, or
/// frames from a live learner's earlier incarnation) are ignored.
/// Anyone unreachable during the fan-out is dropped through the normal
/// [`rekey`] path. Returns the new epoch.
#[allow(clippy::too_many_arguments)]
fn admit_rejoiners<T: Transport>(
    courier: &mut Courier<T>,
    alive: &mut [bool],
    dropped: &mut Vec<PartyId>,
    joins: BTreeMap<PartyId, u64>,
    iteration: u64,
    mut epoch: u64,
    z: &[f64],
    s: f64,
    metrics: &mut JobMetrics,
) -> Result<u64> {
    let joiners: Vec<(PartyId, u64)> = joins
        .into_iter()
        .filter(|&(p, _)| !alive[p as usize])
        .collect();
    if joiners.is_empty() {
        return Ok(epoch);
    }
    let veterans: Vec<PartyId> = (0..alive.len())
        .filter(|&p| alive[p])
        .map(|p| p as PartyId)
        .collect();
    for &(p, _) in &joiners {
        alive[p as usize] = true;
        dropped.retain(|&d| d != p);
        telemetry::emit(
            courier.party(),
            EventKind::Rejoin {
                party: p,
                iteration,
            },
        );
    }
    epoch += 1;
    let survivors: Vec<PartyId> = (0..alive.len())
        .filter(|&p| alive[p])
        .map(|p| p as PartyId)
        .collect();
    telemetry::emit(
        courier.party(),
        EventKind::RekeyEpoch {
            iteration,
            epoch,
            survivors: survivors.len() as u32,
        },
    );
    let mut lost: Vec<PartyId> = Vec::new();
    for &(p, nonce) in &joiners {
        // The joiner is a fresh process: its sequence numbers restart,
        // so the dead incarnation's dedup watermark would swallow
        // everything it sends. Clear it before talking to the new one.
        courier.reset_peer(p);
        let welcome = Message::Welcome {
            nonce,
            iteration,
            epoch,
            survivors: survivors.clone(),
            z: z.to_vec(),
            s: vec![s],
        };
        match courier.send_reliable(p, &welcome) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => lost.push(p),
            Err(e) => return Err(e.into()),
        }
    }
    let rekey_msg = Message::Rekey {
        iteration,
        epoch,
        survivors,
    };
    for &p in &veterans {
        match courier.send_reliable(p, &rekey_msg) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => lost.push(p),
            Err(e) => return Err(e.into()),
        }
    }
    if lost.is_empty() {
        Ok(epoch)
    } else {
        rekey(courier, alive, dropped, lost, iteration, epoch, metrics)
    }
}

/// Drives the coordinator side of distributed HL-SVM training.
///
/// `courier` must be the endpoint for party `learners` (the coordinator
/// sits one past the last learner); `features` is the shared feature
/// count `k` (shares are `k + 1` long: weights plus intercept).
///
/// # Errors
///
/// [`TrainError::Dropped`] when every learner dies before the run
/// finishes, [`TrainError::Transport`] on non-timeout fabric failures,
/// [`TrainError::Protocol`] on malformed or out-of-round frames, plus
/// the usual configuration errors. A learner that merely times out is
/// not an error: it is dropped, the round is re-keyed, and training
/// continues on the survivors (reported in
/// [`DistributedOutcome::dropped`]).
pub fn coordinate_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
) -> Result<DistributedOutcome> {
    coordinate_linear_with_recovery(
        courier,
        learners,
        features,
        cfg,
        eval,
        timing,
        RecoveryOptions::default(),
    )
}

/// [`coordinate_linear`] with crash recovery: optional per-round
/// checkpoint writes and optional resume from a checkpoint (see
/// [`RecoveryOptions`] and the module docs). Mid-run [`Message::Join`]
/// probes from restarted learners are honored either way — re-admission
/// happens at the next round boundary.
///
/// # Errors
///
/// As [`coordinate_linear`], plus [`TrainError::Checkpoint`] when a
/// checkpoint cannot be written or the resume checkpoint does not match
/// this run's `learners`/`features`/`seed`.
pub fn coordinate_linear_with_recovery<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    features: usize,
    cfg: &AdmmConfig,
    eval: Option<&Dataset>,
    timing: DistributedTiming,
    recovery: RecoveryOptions,
) -> Result<DistributedOutcome> {
    cfg.validate()?;
    timing.validate()?;
    if learners == 0 {
        return Err(TrainError::BadConfig {
            reason: "need at least one learner".to_string(),
        });
    }
    if (courier.party() as usize) != learners {
        return Err(TrainError::BadConfig {
            reason: format!(
                "coordinator must be party {learners}, got {}",
                courier.party()
            ),
        });
    }
    let m = learners;
    let share_len = features + 1;
    let codec = ppml_crypto::FixedPointCodec::default();
    let mut z = vec![0.0; features];
    let mut s = 0.0;
    let mut history = ConvergenceHistory::default();
    let mut metrics = JobMetrics::default();
    let mut alive = vec![true; m];
    let mut dropped: Vec<PartyId> = Vec::new();
    let mut epoch: u64 = 0;
    let mut start_round: u64 = 0;
    let mut run_id: u64 = 0;

    if let Some(ckpt) = &recovery.resume_from {
        ckpt.check_compatible(m, features, cfg.seed)?;
        z = ckpt.z.clone();
        s = ckpt.s;
        history.z_delta = ckpt.z_delta.clone();
        history.accuracy = ckpt.accuracy.clone();
        metrics.bytes_broadcast = ckpt.bytes_broadcast as usize;
        metrics.bytes_shuffled = ckpt.bytes_shuffled as usize;
        alive = vec![false; m];
        for &p in &ckpt.alive {
            alive[p as usize] = true;
        }
        dropped = ckpt.dropped.clone();
        // Strictly exceed any epoch a surviving learner can hold: after
        // the snapshot the dead incarnation bumped at most once per
        // party it could still drop (≤ m) plus one rejoin batch, so
        // `+ m + 2` wins every learner-side "newer epoch" comparison.
        epoch = ckpt.epoch + m as u64 + 2;
        start_round = ckpt.next_round;
        run_id = ckpt.run_id;
    }

    // Stamp the stream and estimate per-learner clock offsets — only
    // when someone is listening: with telemetry off this adds zero
    // frames, zero waits, zero bytes (probe traffic is never charged to
    // `metrics` either way; it is observability, not protocol cost). A
    // resume re-gossips the checkpointed run id so the pre- and
    // post-crash streams correlate into one timeline.
    if telemetry::enabled() {
        if run_id == 0 {
            run_id = telemetry::fresh_run_id();
        }
        telemetry::emit(courier.party(), EventKind::RunInfo { run_id });
        clock_sync(courier, &alive, run_id);
    }

    if recovery.resume_from.is_some() {
        epoch = resume_handshake(
            courier,
            &mut alive,
            &mut dropped,
            start_round,
            epoch,
            &z,
            s,
            &mut metrics,
        )?;
    }

    // Restarted learners asking to be re-admitted: recorded whenever
    // their Join frames surface mid-collect, acted on at the next round
    // boundary when the iterate is consistent.
    let mut pending_joins: BTreeMap<PartyId, u64> = BTreeMap::new();

    for iteration in start_round..cfg.max_iter as u64 {
        if !pending_joins.is_empty() {
            epoch = admit_rejoiners(
                courier,
                &mut alive,
                &mut dropped,
                std::mem::take(&mut pending_joins),
                iteration,
                epoch,
                &z,
                s,
                &mut metrics,
            )?;
        }
        let round_start = Instant::now();
        let round_bytes_before = metrics.bytes_broadcast + metrics.bytes_shuffled;
        telemetry::emit(courier.party(), EventKind::RoundOpen { iteration, epoch });
        let broadcast = Message::Consensus {
            iteration,
            z: z.clone(),
            s: vec![s],
            done: false,
        };
        let mut lost: Vec<PartyId> = Vec::new();
        for p in (0..m).filter(|&p| alive[p]) {
            match courier.send_reliable(p as PartyId, &broadcast) {
                Ok(n) => metrics.bytes_broadcast += n,
                Err(e) if peer_is_lost(&e) => lost.push(p as PartyId),
                Err(e) => return Err(e.into()),
            }
        }
        if !lost.is_empty() {
            epoch = rekey(
                courier,
                &mut alive,
                &mut dropped,
                lost,
                iteration,
                epoch,
                &mut metrics,
            )?;
        }

        // Collect one share per survivor. The whole attempt shares a
        // single deadline: heartbeats and discarded frames never extend
        // it, so a learner that stays silent (or only ever heartbeats)
        // is declared dropped after exactly one round_deadline.
        let shares = 'collect: loop {
            let active = alive.iter().filter(|&&a| a).count();
            let mut shares: Vec<Option<Vec<u64>>> = vec![None; m];
            let mut have = 0usize;
            let deadline = Instant::now() + timing.round_deadline;
            while have < active {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let env = match courier.recv(remaining) {
                    Ok(env) => env,
                    Err(TransportError::Timeout) => break,
                    Err(e) => return Err(e.into()),
                };
                // Learners announce themselves with a heartbeat to open
                // the connection (TCP dials lazily on first send);
                // liveness frames — and clock-probe replies straggling
                // in after the handshake window — are not part of the
                // round.
                if matches!(
                    env.msg,
                    Message::Heartbeat { .. } | Message::TimeReply { .. }
                ) {
                    continue;
                }
                // In-band telemetry deltas ride the round like the clock
                // probes do: fold and move on, never charging them to
                // the protocol's byte accounting.
                if matches!(env.msg, Message::Telemetry { .. }) {
                    observe::fold_telemetry(courier.party(), &env.msg);
                    continue;
                }
                if let Message::Join { party, nonce } = env.msg {
                    // A restarted learner asking back in: remember the
                    // request, act at the next round boundary. Joins
                    // from parties still alive are filtered there.
                    if (party as usize) < m {
                        pending_joins.insert(party, nonce);
                    }
                    continue;
                }
                let frame_len = Frame::encoded_len_of(&env.msg);
                let Message::MaskedShare {
                    iteration: it,
                    epoch: ep,
                    party,
                    payload,
                } = env.msg
                else {
                    return Err(protocol(format!(
                        "coordinator expected a masked share, got {:?} from party {}",
                        env.msg, env.from
                    )));
                };
                if !alive.get(party as usize).copied().unwrap_or(false) {
                    // A share from a party already declared dropped —
                    // either in flight when the verdict fell or from an
                    // unknown id; it is not part of any survivor sum.
                    continue;
                }
                if ep < epoch || it < iteration {
                    // In-flight share from before a re-key (masked over
                    // the old survivor set — its masks would not cancel)
                    // or a stale re-send; the re-keyed copy follows.
                    continue;
                }
                if ep > epoch || it > iteration {
                    return Err(protocol(format!(
                        "share from the future: round {it} epoch {ep} while collecting \
                         round {iteration} epoch {epoch}"
                    )));
                }
                if payload.len() != share_len {
                    return Err(protocol(format!(
                        "share length mismatch: expected {share_len}, got {}",
                        payload.len()
                    )));
                }
                let slot = &mut shares[party as usize];
                if let Some(existing) = slot {
                    // Masking is deterministic in (raw, iteration,
                    // survivor set), so a legitimate re-send — e.g. a
                    // learner answering both a resumed coordinator's
                    // rebroadcast and a re-key — is byte-identical to
                    // the accepted copy and safely ignored. Anything
                    // else is two *different* claims for one slot.
                    if *existing == payload {
                        continue;
                    }
                    return Err(protocol(format!(
                        "conflicting duplicate share from party {party}"
                    )));
                }
                *slot = Some(payload);
                metrics.bytes_shuffled += frame_len;
                have += 1;
                observe::observe_share_lag(
                    party,
                    iteration,
                    round_start.elapsed().as_nanos() as u64,
                );
            }
            if have == active {
                break 'collect shares;
            }
            // Deadline expired: every survivor still missing is dropped,
            // the rest re-key and re-send for this same round.
            let lost: Vec<PartyId> = (0..m)
                .filter(|&p| alive[p] && shares[p].is_none())
                .map(|p| p as PartyId)
                .collect();
            telemetry::emit(
                courier.party(),
                EventKind::DeadlineMiss {
                    iteration,
                    epoch,
                    missing: lost.len() as u32,
                },
            );
            epoch = rekey(
                courier,
                &mut alive,
                &mut dropped,
                lost,
                iteration,
                epoch,
                &mut metrics,
            )?;
        };

        let active = alive.iter().filter(|&&a| a).count();
        telemetry::emit(
            courier.party(),
            EventKind::RoundClose {
                iteration,
                epoch,
                shares: active as u32,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        observe::score_round(courier.party(), iteration);
        telemetry::emit(
            courier.party(),
            EventKind::SecAggRound {
                backend: "pairwise",
                iteration,
                bytes: (metrics.bytes_broadcast + metrics.bytes_shuffled - round_bytes_before)
                    as u64,
                elapsed_ns: round_start.elapsed().as_nanos() as u64,
            },
        );
        let mut summed = vec![0u64; share_len];
        for share in shares.iter().flatten() {
            for (acc, &v) in summed.iter_mut().zip(share) {
                *acc = acc.wrapping_add(v);
            }
        }
        let z_new: Vec<f64> = summed[..features]
            .iter()
            .map(|&v| codec.decode_u64(v) / active as f64)
            .collect();
        let s_new = codec.decode_u64(summed[features]) / active as f64;
        let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
        z = z_new;
        s = s_new;
        history.z_delta.push(delta);
        if let Some(ds) = eval {
            history
                .accuracy
                .push(LinearSvm::from_parts(z.clone(), s).accuracy(ds));
        }
        if let Some(path) = &recovery.checkpoint_to {
            let ckpt = Checkpoint {
                run_id,
                learners: m as u32,
                features: features as u32,
                seed: cfg.seed,
                next_round: iteration + 1,
                epoch,
                z: z.clone(),
                s,
                alive: (0..m).filter(|&p| alive[p]).map(|p| p as u32).collect(),
                dropped: dropped.clone(),
                z_delta: history.z_delta.clone(),
                accuracy: history.accuracy.clone(),
                bytes_broadcast: metrics.bytes_broadcast as u64,
                bytes_shuffled: metrics.bytes_shuffled as u64,
            };
            let bytes = ckpt.save(path)?;
            telemetry::emit(
                courier.party(),
                EventKind::CheckpointWrite {
                    iteration,
                    epoch,
                    bytes: bytes as u64,
                },
            );
        }
        if let Some(tol) = cfg.tol {
            if delta < tol {
                break;
            }
        }
    }
    metrics.iterations = history.z_delta.len();

    // Final broadcast: carries the converged consensus and releases the
    // learners from their receive loop. A survivor that dies this late
    // cannot hurt the model; it is only recorded as dropped.
    let done = Message::Consensus {
        iteration: history.z_delta.len() as u64,
        z: z.clone(),
        s: vec![s],
        done: true,
    };
    for p in (0..m).filter(|&p| alive[p]) {
        match courier.send_reliable(p as PartyId, &done) {
            Ok(n) => metrics.bytes_broadcast += n,
            Err(e) if peer_is_lost(&e) => dropped.push(p as PartyId),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(DistributedOutcome {
        model: LinearSvm::from_parts(z, s),
        history,
        metrics,
        dropped,
    })
}

/// Drives one learner of distributed HL-SVM training.
///
/// `courier` must be the endpoint for a party in `0..learners`; `data`
/// is this learner's horizontal partition. Blocks until the coordinator
/// (party `learners`) sends the `done` broadcast, then returns the
/// consensus model it carried.
///
/// # Errors
///
/// [`TrainError::Transport`] when the coordinator goes quiet past
/// [`DistributedTiming::learner_patience`] (heartbeats do not count as
/// liveness) or a send exhausts its retries, [`TrainError::Protocol`]
/// on unexpected frames, plus the partition/config errors of the
/// in-process trainer.
pub fn learn_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
) -> Result<LinearSvm> {
    learn_linear_inner(courier, learners, data, cfg, timing, None, false)
}

/// Re-admission variant of [`learn_linear`] for a restarted learner
/// process: probes the coordinator with [`Message::Join`] until it
/// answers with a [`Message::Welcome`], then participates from the
/// granted round onward. The rejoiner warm-starts with zeroed duals
/// (see `DESIGN.md` §8 for the convergence impact); the §V re-key on
/// admission makes its masks valid for the enlarged survivor set and
/// teaches it nothing about the rounds it missed.
///
/// # Errors
///
/// [`TrainError::Transport`] with a timeout when no Welcome arrives
/// within [`DistributedTiming::learner_patience`]; otherwise as
/// [`learn_linear`].
pub fn rejoin_linear<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
) -> Result<LinearSvm> {
    learn_linear_inner(courier, learners, data, cfg, timing, None, true)
}

/// Fault-injection variant of [`learn_linear`]: behaves correctly for
/// rounds `0..defect_after`, then goes *silent* — it keeps receiving
/// (and therefore ACKing) every frame, so the coordinator's broadcasts
/// still succeed and the dropout can only be detected by the round
/// deadline in the collect phase, producing the canonical
/// DeadlineMiss → Dropout → RekeyEpoch sequence on the coordinator's
/// stream. The tests and the `--defect-after` flag of `ppml-learner`
/// use this to script that scenario deterministically.
///
/// # Errors
///
/// The expected exit is [`TrainError::Transport`] with a timeout once
/// the coordinator has dropped this learner and stopped talking to it;
/// other errors as [`learn_linear`].
pub fn learn_linear_with_defect<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    defect_after: u64,
) -> Result<LinearSvm> {
    learn_linear_inner(
        courier,
        learners,
        data,
        cfg,
        timing,
        Some(defect_after),
        false,
    )
}

/// How long a learner blocks on one receive before checking its patience
/// clock and nudging the coordinator with a heartbeat. Short enough that
/// a restarted coordinator is re-dialed (TCP heartbeats trigger the
/// dial) well within any realistic patience budget.
const LEARNER_POLL: Duration = Duration::from_millis(500);

/// Sends a share to the coordinator, riding out a coordinator that is
/// mid-restart: failures that merely mean "peer unreachable right now"
/// are retried until `patience` is spent — the same budget after which
/// the learner would give up waiting for protocol frames anyway.
pub(crate) fn send_share_patiently<T: Transport>(
    courier: &mut Courier<T>,
    coordinator: PartyId,
    msg: &Message,
    patience: Duration,
) -> Result<()> {
    let give_up = Instant::now() + patience;
    loop {
        match courier.send_reliable(coordinator, msg) {
            Ok(_) => return Ok(()),
            Err(e) if peer_is_lost(&e) && Instant::now() < give_up => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

pub(crate) fn learn_linear_inner<T: Transport>(
    courier: &mut Courier<T>,
    learners: usize,
    data: &Dataset,
    cfg: &AdmmConfig,
    timing: DistributedTiming,
    defect_after: Option<u64>,
    rejoin: bool,
) -> Result<LinearSvm> {
    cfg.validate()?;
    timing.validate()?;
    let party = courier.party();
    if (party as usize) >= learners {
        return Err(TrainError::BadConfig {
            reason: format!("learner party {party} out of range 0..{learners}"),
        });
    }
    let coordinator = learners as PartyId;
    let mut learner = HlLearner::new(data, learners, cfg)?;
    let masker = SeededMasker::new(cfg.seed, party as usize, learners);
    let mut present: Vec<usize> = (0..learners).collect();
    let mut epoch: u64 = 0;
    let mut expected_iter: u64 = 0;
    // Raw (unmasked) share of the last computed round, kept so a re-key
    // (or a resumed coordinator re-collecting that round) can re-mask it
    // over the survivor set without recomputing the QP.
    let mut last_raw: Option<(u64, Vec<f64>)> = None;
    // Duals lag one *computed* round, so the first round this learner
    // takes part in — round 0, or the re-admission round of a rejoiner
    // warm-starting with zeroed duals — skips the dual update.
    let mut dual_ready = false;
    let mut deadline = Instant::now() + timing.learner_patience;
    let mut run_id_seen = false;
    let mut relay = TelemetryRelay::new();

    if rejoin {
        // Re-admission handshake: probe with Join until the coordinator
        // welcomes us back (it acts on joins at round boundaries only).
        let nonce = telemetry::now_ns() | 1;
        loop {
            if Instant::now() >= deadline {
                return Err(TrainError::Transport(TransportError::Timeout));
            }
            let _ = courier.send_unreliable(coordinator, &Message::Join { party, nonce });
            match courier.recv(LEARNER_POLL) {
                Ok(env) => match env.msg {
                    Message::Welcome {
                        iteration,
                        epoch: new_epoch,
                        survivors,
                        ..
                    } if survivors.contains(&party) => {
                        // Absorbing the Welcome already re-synced the
                        // dedup watermark to the (possibly restarted)
                        // coordinator's fresh sequence space; a full
                        // reset_peer here would throw away frames that
                        // arrived right behind it.
                        epoch = new_epoch;
                        present = survivors.iter().map(|&p| p as usize).collect();
                        expected_iter = iteration;
                        telemetry::emit(party, EventKind::Rejoin { party, iteration });
                        deadline = Instant::now() + timing.learner_patience;
                        break;
                    }
                    // Everything else predates re-admission — broadcasts
                    // of rounds we are not part of, stale re-keys. Drain
                    // (and thereby ack) them so the run keeps moving.
                    _ => continue,
                },
                Err(TransportError::Timeout) => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TrainError::Transport(TransportError::Timeout));
        }
        let env = match courier.recv(remaining.min(LEARNER_POLL)) {
            Ok(env) => env,
            Err(TransportError::Timeout) => {
                // Only this poll slice expired, not the patience budget.
                // Nudge the coordinator: over TCP this (re-)dials a
                // restarted coordinator so its Welcome can reach us;
                // elsewhere it is liveness noise the coordinator drops.
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::Heartbeat {
                        nonce: u64::from(party),
                    },
                );
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        match env.msg {
            // Liveness noise keeps the connection warm but is no proof
            // the protocol is advancing; it does not refresh patience.
            Message::Heartbeat { .. } => continue,
            // Clock-offset probe: stamp this stream with the gossiped
            // run id (once) and echo the local telemetry clock back.
            // Observability traffic, not protocol progress — patience is
            // not refreshed, and a failed reply is the coordinator's
            // problem to time out on.
            Message::TimeProbe { nonce, run_id } => {
                if telemetry::enabled() && !run_id_seen {
                    run_id_seen = true;
                    telemetry::emit(party, EventKind::RunInfo { run_id });
                }
                relay.set_run_id(run_id);
                let _ = courier.send_unreliable(
                    coordinator,
                    &Message::TimeReply {
                        nonce,
                        t_ns: telemetry::now_ns(),
                    },
                );
                continue;
            }
            Message::Consensus {
                iteration,
                z,
                s,
                done,
            } => {
                let s_val = s.first().copied().unwrap_or(0.0);
                if done {
                    return Ok(LinearSvm::from_parts(z, s_val));
                }
                if iteration < expected_iter {
                    // Stale or duplicated broadcast of an already
                    // processed round: recomputing would desynchronize
                    // the duals and double-send a share. One exception —
                    // a resumed coordinator re-collecting exactly the
                    // round we last computed lost our share with its
                    // state, so re-mask the cached raw share over the
                    // current survivor set and send it again (masking is
                    // deterministic, so a copy the coordinator did keep
                    // is byte-identical and merely ignored).
                    if let Some((it, raw)) = last_raw.as_ref() {
                        if *it == iteration {
                            let payload = masker.mask_share_among(raw, iteration, &present)?;
                            send_share_patiently(
                                courier,
                                coordinator,
                                &Message::MaskedShare {
                                    iteration,
                                    epoch,
                                    party,
                                    payload,
                                },
                                timing.learner_patience,
                            )?;
                            deadline = Instant::now() + timing.learner_patience;
                        }
                    }
                    continue;
                }
                if iteration > expected_iter {
                    return Err(protocol(format!(
                        "consensus skipped ahead to round {iteration} while expecting \
                         {expected_iter}"
                    )));
                }
                if defect_after.is_some_and(|d| iteration >= d) {
                    // Scripted defection: the round is received (and was
                    // ACKed by the transport) but no share goes back.
                    // Keep draining so the link stays warm until the
                    // coordinator drops us and the patience clock runs
                    // out.
                    expected_iter = iteration + 1;
                    deadline = Instant::now() + timing.learner_patience;
                    continue;
                }
                telemetry::emit(party, EventKind::RoundOpen { iteration, epoch });
                let round_start = Instant::now();
                observe::injected_lag_sleep();
                // Same step order as `ConsensusJob::map`: duals lag one
                // computed round.
                if dual_ready {
                    learner.dual_update(&z, s_val);
                }
                learner.local_step(&z, s_val, &cfg.qp)?;
                dual_ready = true;
                let raw = learner.share();
                let payload = masker.mask_share_among(&raw, iteration, &present)?;
                send_share_patiently(
                    courier,
                    coordinator,
                    &Message::MaskedShare {
                        iteration,
                        epoch,
                        party,
                        payload,
                    },
                    timing.learner_patience,
                )?;
                let elapsed_ns = round_start.elapsed().as_nanos() as u64;
                telemetry::emit(
                    party,
                    EventKind::RoundClose {
                        iteration,
                        epoch,
                        shares: 1,
                        elapsed_ns,
                    },
                );
                // Piggy-back this round's telemetry delta behind the
                // share (a no-op, zero frames, with telemetry off).
                relay.report(courier, coordinator, iteration, epoch, elapsed_ns);
                last_raw = Some((iteration, raw));
                expected_iter = iteration + 1;
                deadline = Instant::now() + timing.learner_patience;
            }
            Message::Rekey {
                iteration,
                epoch: new_epoch,
                survivors,
            } => {
                if new_epoch <= epoch {
                    // Out-of-order or duplicated re-key; a newer one has
                    // already been applied.
                    continue;
                }
                if !survivors.contains(&party) {
                    return Err(protocol(format!(
                        "re-key for round {iteration} excludes this learner"
                    )));
                }
                epoch = new_epoch;
                present = survivors.iter().map(|&p| p as usize).collect();
                telemetry::emit(
                    party,
                    EventKind::RekeyEpoch {
                        iteration,
                        epoch,
                        survivors: survivors.len() as u32,
                    },
                );
                // A mid-collect re-key names the round we just sent for:
                // re-mask the cached share over the survivors and send
                // again. A boundary re-key (rejoin admission) names the
                // *upcoming* round instead — nothing to re-send, the
                // consensus broadcast that follows carries the work.
                if let Some((it, raw)) = last_raw.as_ref() {
                    if *it == iteration {
                        let payload = masker.mask_share_among(raw, iteration, &present)?;
                        send_share_patiently(
                            courier,
                            coordinator,
                            &Message::MaskedShare {
                                iteration,
                                epoch,
                                party,
                                payload,
                            },
                            timing.learner_patience,
                        )?;
                    }
                }
                deadline = Instant::now() + timing.learner_patience;
            }
            Message::Welcome {
                iteration,
                epoch: new_epoch,
                survivors,
                ..
            } => {
                // A coordinator resumed from a checkpoint re-introduces
                // itself mid-run. Only strictly newer epochs apply —
                // anything else is a stale or duplicated rendezvous
                // frame (equal-epoch duplicates still refresh patience:
                // the coordinator is demonstrably alive).
                if new_epoch < epoch {
                    continue;
                }
                if new_epoch == epoch {
                    deadline = Instant::now() + timing.learner_patience;
                    continue;
                }
                if !survivors.contains(&party) {
                    return Err(protocol(format!(
                        "welcome for epoch {new_epoch} excludes this learner"
                    )));
                }
                // The restarted coordinator's sequence numbers start
                // over, but absorbing the Welcome already re-synced the
                // dedup watermark — and frames sent right behind the
                // Welcome may already sit in the inbox, so a reset_peer
                // here would destroy them.
                epoch = new_epoch;
                present = survivors.iter().map(|&p| p as usize).collect();
                // Never move backwards: a Welcome for a round we already
                // computed means the coordinator lost our share, and the
                // rebroadcast of that round is handled by the stale-
                // consensus re-send path above.
                expected_iter = expected_iter.max(iteration);
                telemetry::emit(
                    party,
                    EventKind::RekeyEpoch {
                        iteration,
                        epoch,
                        survivors: survivors.len() as u32,
                    },
                );
                deadline = Instant::now() + timing.learner_patience;
            }
            other => {
                return Err(protocol(format!(
                    "learner expected consensus, re-key or welcome, got {other:?} from party {}",
                    env.from
                )))
            }
        }
    }
}

/// Validates a set of horizontal partitions and returns the feature
/// count, for callers that need `features` before spawning a
/// coordinator. Re-exported from the trainer internals.
pub fn feature_count(parts: &[Dataset]) -> Result<usize> {
    validate_parts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{train_linear_on_cluster, ClusterTuning};
    use ppml_data::{synth, Partition};
    use ppml_transport::{LinkFilter, LoopbackHub, NetFaultPlan, RetryPolicy};
    use std::thread;
    use std::time::Duration;

    fn calm() -> DistributedTiming {
        DistributedTiming::default()
    }

    /// Tight clocks for fault tests: one deadline's worth of waiting per
    /// dropout, and learners that give up on a dead coordinator fast.
    fn twitchy() -> DistributedTiming {
        DistributedTiming::default()
            .with_round_deadline(Duration::from_millis(800))
            .with_learner_patience(Duration::from_secs(2))
    }

    struct DistRun {
        outcome: Result<DistributedOutcome>,
        finals: Vec<Result<LinearSvm>>,
    }

    fn run_with_faults(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        faults: NetFaultPlan,
        timing: DistributedTiming,
    ) -> DistRun {
        let m = parts.len();
        let features = feature_count(parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, faults);
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg = *cfg;
            handles.push(thread::spawn(move || {
                learn_linear(&mut courier, m, &part, &cfg, timing)
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome = coordinate_linear(&mut courier, m, features, cfg, None, timing);
        let finals = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();
        DistRun { outcome, finals }
    }

    fn run_distributed(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        faults: NetFaultPlan,
    ) -> (DistributedOutcome, Vec<LinearSvm>) {
        let run = run_with_faults(parts, cfg, faults, calm());
        (
            run.outcome.expect("coordinator"),
            run.finals
                .into_iter()
                .map(|f| f.expect("learner"))
                .collect(),
        )
    }

    /// In-process replica of a run where each `(party, round)` in `drops`
    /// stops contributing from `round` on. Mirrors the wire protocol's
    /// arithmetic exactly: per-round fixed-point encode, wrapping sum
    /// over the active set, decode, divide by the active count.
    fn reference_with_dropouts(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        drops: &[(usize, u64)],
    ) -> LinearSvm {
        reference_with_membership(parts, cfg, drops, &[])
    }

    /// [`reference_with_dropouts`] plus re-admissions: each `(party,
    /// round)` in `rejoins` re-enters at `round` as a *fresh* process —
    /// new learner state, zeroed duals. `computed` gates the dual update
    /// per learner exactly as `dual_ready` does on the wire.
    fn reference_with_membership(
        parts: &[Dataset],
        cfg: &AdmmConfig,
        drops: &[(usize, u64)],
        rejoins: &[(usize, u64)],
    ) -> LinearSvm {
        let m = parts.len();
        let features = feature_count(parts).expect("partitions");
        let codec = ppml_crypto::FixedPointCodec::default();
        let mut learners: Vec<HlLearner> = parts
            .iter()
            .map(|p| HlLearner::new(p, m, cfg).expect("learner"))
            .collect();
        let mut computed = vec![false; m];
        let mut z = vec![0.0; features];
        let mut s = 0.0;
        for it in 0..cfg.max_iter as u64 {
            for &(p, r) in rejoins {
                if r == it {
                    learners[p] = HlLearner::new(&parts[p], m, cfg).expect("learner");
                    computed[p] = false;
                }
            }
            let active: Vec<usize> = (0..m)
                .filter(|&p| {
                    let gone = drops.iter().any(|&(dp, dr)| dp == p && it >= dr);
                    let back = rejoins.iter().any(|&(rp, rr)| rp == p && it >= rr);
                    !gone || back
                })
                .collect();
            let mut summed = vec![0u64; features + 1];
            for &p in &active {
                if computed[p] {
                    learners[p].dual_update(&z, s);
                }
                learners[p].local_step(&z, s, &cfg.qp).expect("qp");
                computed[p] = true;
                for (acc, v) in summed.iter_mut().zip(learners[p].share()) {
                    *acc = acc.wrapping_add(codec.encode_u64(v).expect("encode"));
                }
            }
            let z_new: Vec<f64> = summed[..features]
                .iter()
                .map(|&v| codec.decode_u64(v) / active.len() as f64)
                .collect();
            let s_new = codec.decode_u64(summed[features]) / active.len() as f64;
            let delta = ppml_linalg::vecops::dist_sq(&z_new, &z);
            z = z_new;
            s = s_new;
            if let Some(tol) = cfg.tol {
                if delta < tol {
                    break;
                }
            }
        }
        LinearSvm::from_parts(z, s)
    }

    #[test]
    fn distributed_matches_cluster_exactly() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);

        let (outcome, finals) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        let (reference, _) =
            train_linear_on_cluster(&parts, &cfg, None, ClusterTuning::default()).expect("cluster");

        // Fixed-point wrapping sums make the runs bit-identical.
        assert_eq!(outcome.model, reference.model);
        assert_eq!(outcome.history.z_delta, reference.history.z_delta);
        assert!(outcome.dropped.is_empty());
        // Every learner saw the same final consensus.
        for f in &finals {
            assert_eq!(*f, outcome.model);
        }
    }

    #[test]
    fn metrics_count_exact_frame_bytes() {
        let ds = synth::blobs(64, 1);
        let parts = Partition::horizontal(&ds, 2, 2).expect("partition");
        let features = feature_count(&parts).expect("partitions");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(3);

        let (outcome, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        let m = parts.len();
        let rounds = outcome.metrics.iterations;

        // On a clean network every frame is sent exactly once, so the
        // counters must equal the encoded frame sizes computed offline.
        let consensus_len = |iteration: u64, done: bool| {
            Frame::encoded_len_of(&Message::Consensus {
                iteration,
                z: vec![0.0; features],
                s: vec![0.0],
                done,
            })
        };
        let share_len = Frame::encoded_len_of(&Message::MaskedShare {
            iteration: 0,
            epoch: 0,
            party: 0,
            payload: vec![0; features + 1],
        });
        let expect_broadcast: usize = (0..rounds as u64)
            .map(|it| m * consensus_len(it, false))
            .sum::<usize>()
            + m * consensus_len(rounds as u64, true);
        assert_eq!(outcome.metrics.bytes_broadcast, expect_broadcast);
        assert_eq!(outcome.metrics.bytes_shuffled, rounds * m * share_len);
        assert_eq!(
            outcome.metrics.total_network_bytes(),
            expect_broadcast + rounds * m * share_len
        );
    }

    #[test]
    fn survives_dropped_shares_and_broadcasts() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(12).with_seed(11);

        let (clean, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());
        // Drop the first two shares from learner 1 and two coordinator
        // frames toward learner 0; the ARQ retransmits both directions.
        let share_kind = Message::MaskedShare {
            iteration: 0,
            epoch: 0,
            party: 0,
            payload: Vec::new(),
        }
        .kind();
        let faults = NetFaultPlan::none()
            .drop_frames(LinkFilter::any().from(1).kind(share_kind), 2)
            .drop_frames(LinkFilter::any().from(3).to(0), 2);
        let (lossy, finals) = run_distributed(&parts, &cfg, faults);

        assert_eq!(lossy.model, clean.model);
        assert!(lossy.dropped.is_empty(), "transient loss is not dropout");
        for f in &finals {
            assert_eq!(*f, clean.model);
        }
        // Retransmissions cost bytes: the lossy run can only be dearer.
        assert!(lossy.metrics.total_network_bytes() > clean.metrics.total_network_bytes());
    }

    #[test]
    fn killed_learner_is_dropped_and_survivors_finish() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);

        // Learner 1 dies after its round-0 and round-1 shares: the
        // coordinator's round-2 broadcast to it exhausts its retries, so
        // the drop is detected in the *broadcast* phase.
        let faults = NetFaultPlan::none().kill_party_after(1, 2);
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        let outcome = run.outcome.expect("survivors must finish");
        assert_eq!(outcome.dropped, vec![1]);
        // Bit-identical to an in-process run that loses party 1 at round 2.
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2)]);
        assert_eq!(outcome.model, reference);
        // Survivors converge to the same model; the dead learner errors.
        assert_eq!(*run.finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert_eq!(*run.finals[2].as_ref().expect("survivor 2"), outcome.model);
        assert!(matches!(run.finals[1], Err(TrainError::Transport(_))));
    }

    #[test]
    fn silent_learner_is_dropped_at_the_round_deadline() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);

        // Learner 1 stays reachable (its acks flow) but its share frames
        // from round 2 on never arrive: data seqs on the learner→
        // coordinator link count 1, 2, 3…, so pinning seq ≥ 3 kills
        // exactly the round-2 share and everything after. The drop is
        // detected by the round deadline in the *collect* phase.
        let share_kind = Message::MaskedShare {
            iteration: 0,
            epoch: 0,
            party: 0,
            payload: Vec::new(),
        }
        .kind();
        let faults = NetFaultPlan::none().drop_frames(
            LinkFilter::any()
                .from(1)
                .to(3)
                .kind(share_kind)
                .seq_at_least(3),
            u32::MAX,
        );
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        let outcome = run.outcome.expect("survivors must finish");
        assert_eq!(outcome.dropped, vec![1]);
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2)]);
        assert_eq!(outcome.model, reference);
        assert_eq!(*run.finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert_eq!(*run.finals[2].as_ref().expect("survivor 2"), outcome.model);
        // The silenced learner's own send eventually times out.
        assert!(matches!(run.finals[1], Err(TrainError::Transport(_))));
    }

    #[test]
    fn double_dropout_shrinks_to_a_single_survivor() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);

        // Learner 1 dies at round 2 (after 2 countable frames). Learner 2
        // then sends share(2) twice (pre- and post-re-key) and share(3) —
        // five countable frames — before dying at round 4, leaving
        // learner 0 to finish alone with bare (unmasked-by-pairs) shares.
        let faults = NetFaultPlan::none()
            .kill_party_after(1, 2)
            .kill_party_after(2, 5);
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        let outcome = run.outcome.expect("last survivor must finish");
        assert_eq!(outcome.dropped, vec![1, 2]);
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2), (2, 4)]);
        assert_eq!(outcome.model, reference);
        assert_eq!(*run.finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert!(matches!(run.finals[1], Err(TrainError::Transport(_))));
        assert!(matches!(run.finals[2], Err(TrainError::Transport(_))));
    }

    #[test]
    fn scripted_defection_is_dropped_like_a_real_fault() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
        let timing = twitchy();

        // Learner 1 runs `learn_linear_with_defect(.., 2)`: correct for
        // rounds 0 and 1, then silent-but-ACKing. No network faults at
        // all — the dropout is entirely scripted, so the coordinator
        // must detect it via the round deadline and the result must be
        // bit-identical to losing party 1 at round 2 for real.
        let m = parts.len();
        let features = feature_count(&parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, NetFaultPlan::none());
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            handles.push(thread::spawn(move || {
                if p == 1 {
                    learn_linear_with_defect(&mut courier, m, &part, &cfg, timing, 2)
                } else {
                    learn_linear(&mut courier, m, &part, &cfg, timing)
                }
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome =
            coordinate_linear(&mut courier, m, features, &cfg, None, timing).expect("survivors");
        let finals: Vec<Result<LinearSvm>> = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();

        assert_eq!(outcome.dropped, vec![1]);
        let reference = reference_with_dropouts(&parts, &cfg, &[(1, 2)]);
        assert_eq!(outcome.model, reference);
        assert_eq!(*finals[0].as_ref().expect("survivor 0"), outcome.model);
        assert_eq!(*finals[2].as_ref().expect("survivor 2"), outcome.model);
        // The defector drains until the coordinator goes quiet on it,
        // then exits on its patience clock.
        assert!(matches!(finals[1], Err(TrainError::Transport(_))));
    }

    #[test]
    fn learners_error_out_when_the_coordinator_dies() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(8).with_seed(11);

        // The coordinator dies mid-broadcast of round 1 (3 consensus
        // frames for round 0 plus two for round 1). Nobody may hang: the
        // coordinator fails to re-key anyone and reports total dropout;
        // the learners hit either a send retry budget or their patience.
        let faults = NetFaultPlan::none().kill_party_after(3, 5);
        let run = run_with_faults(&parts, &cfg, faults, twitchy());

        assert!(
            matches!(run.outcome, Err(TrainError::Dropped { ref parties }) if parties.len() == 3),
            "coordinator must report losing everyone, got {:?}",
            run.outcome.as_ref().map(|_| ())
        );
        for f in &run.finals {
            assert!(
                matches!(f, Err(TrainError::Transport(_))),
                "learner must exit with a transport error, not hang"
            );
        }
    }

    #[test]
    fn learner_ignores_stale_consensus_rebroadcasts() {
        let ds = synth::blobs(48, 7);
        let parts = Partition::horizontal(&ds, 1, 2).expect("partition");
        let part = parts[0].clone();
        let features = feature_count(&parts).expect("partitions");
        let cfg = AdmmConfig::default().with_max_iter(4).with_seed(5);

        let consensus_kind = Message::Consensus {
            iteration: 0,
            z: Vec::new(),
            s: Vec::new(),
            done: false,
        }
        .kind();
        // Hold back the coordinator's second consensus frame (the stale
        // duplicate of round 0, sent unreliably at seq 2) until one later
        // frame has been delivered — the learner then sees round 1 first
        // and the round-0 duplicate afterwards.
        let faults = NetFaultPlan::none().delay_frames(
            LinkFilter::any()
                .from(1)
                .to(0)
                .kind(consensus_kind)
                .seq_at_least(2),
            1,
            1,
        );
        let hub = LoopbackHub::with_faults(2, faults);
        let mut learner_courier = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let timing = calm();
        let cfg_l = cfg;
        let handle =
            thread::spawn(move || learn_linear(&mut learner_courier, 1, &part, &cfg_l, timing));

        let mut c = Courier::new(hub.endpoint(1), RetryPolicy::fast_local());
        let consensus = |iteration: u64, z: Vec<f64>, s: f64, done: bool| Message::Consensus {
            iteration,
            z,
            s: vec![s],
            done,
        };
        let recv_share = |c: &mut Courier<_>| loop {
            let env = c.recv(Duration::from_secs(5)).expect("share");
            match env.msg {
                Message::Heartbeat { .. } => continue,
                Message::MaskedShare {
                    iteration, epoch, ..
                } => break (iteration, epoch),
                other => panic!("unexpected frame: {other:?}"),
            }
        };

        c.send_reliable(0, &consensus(0, vec![0.0; features], 0.0, false))
            .expect("round 0");
        assert_eq!(recv_share(&mut c), (0, 0));
        // A stale re-broadcast of round 0 with a fresh sequence number —
        // the ARQ dedup cannot flag it, only the learner's own iteration
        // tracking can. The delay fault reorders it past round 1.
        c.send_unreliable(0, &consensus(0, vec![0.0; features], 0.0, false))
            .expect("stale duplicate");
        c.send_reliable(0, &consensus(1, vec![0.1; features], 0.05, false))
            .expect("round 1");
        assert_eq!(recv_share(&mut c), (1, 0));
        // The ignored duplicate must not produce a third share.
        assert!(
            matches!(
                c.recv(Duration::from_millis(300)),
                Err(TransportError::Timeout)
            ),
            "stale consensus must not re-trigger a share"
        );
        c.send_reliable(0, &consensus(2, vec![0.2; features], 0.1, true))
            .expect("done");
        let model = handle.join().expect("learner thread").expect("learner");
        assert_eq!(model, LinearSvm::from_parts(vec![0.2; features], 0.1));
    }

    #[test]
    fn coordinator_crash_resume_reproduces_the_uninterrupted_run() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
        let m = parts.len();
        let features = feature_count(&parts).expect("partitions");
        let timing = DistributedTiming::default()
            .with_round_deadline(Duration::from_secs(1))
            .with_learner_patience(Duration::from_secs(20));

        let (clean, _) = run_distributed(&parts, &cfg, NetFaultPlan::none());

        let ckpt_path =
            std::env::temp_dir().join(format!("ppml-resume-test-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&ckpt_path);

        // The coordinator goes dead after its ninth countable frame —
        // the rounds 0–2 broadcasts — so the round-2 shares never reach
        // it: rounds 0 and 1 are accepted and checkpointed, round 2 dies
        // at the collection deadline, and every re-key attempt fails.
        let faults = NetFaultPlan::none().kill_party_after(m as PartyId, 9);
        let hub = LoopbackHub::with_faults(m + 1, faults);
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            let cfg_l = cfg;
            handles.push(thread::spawn(move || {
                learn_linear(&mut courier, m, &part, &cfg_l, timing)
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let crashed = coordinate_linear_with_recovery(
            &mut courier,
            m,
            features,
            &cfg,
            None,
            timing,
            RecoveryOptions::default().with_checkpoint(&ckpt_path),
        );
        assert!(
            matches!(crashed, Err(TrainError::Dropped { .. })),
            "the dying incarnation must fail, got {:?}",
            crashed.map(|_| ())
        );

        // "Restart": heal the network, load the checkpoint, resume on a
        // fresh endpoint — fresh sequence numbers and empty dedup state,
        // exactly what a new OS process would have.
        hub.set_faults(NetFaultPlan::none());
        let ckpt = Checkpoint::load(&ckpt_path).expect("crash left a complete checkpoint");
        assert_eq!(
            ckpt.next_round, 2,
            "rounds 0 and 1 were accepted before the crash"
        );
        assert_eq!(ckpt.alive, vec![0, 1, 2]);
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome = coordinate_linear_with_recovery(
            &mut courier,
            m,
            features,
            &cfg,
            None,
            timing,
            RecoveryOptions::default()
                .with_checkpoint(&ckpt_path)
                .with_resume(ckpt),
        )
        .expect("resumed run");
        let _ = std::fs::remove_file(&ckpt_path);

        // Bit-identical to the run that never crashed: learners that had
        // already computed the re-collected round re-send their cached
        // raw share re-masked under the bumped epoch, so every round sum
        // — and hence every iterate — is reproduced exactly.
        assert_eq!(outcome.history.z_delta, clean.history.z_delta);
        assert_eq!(outcome.model, clean.model);
        assert!(outcome.dropped.is_empty(), "got {:?}", outcome.dropped);
        for h in handles {
            let f = h
                .join()
                .expect("learner thread")
                .expect("learner survives the coordinator restart");
            assert_eq!(f, outcome.model);
        }
    }

    #[test]
    fn rejoining_learner_is_readmitted_with_a_rekey() {
        let ds = synth::blobs(96, 3);
        let parts = Partition::horizontal(&ds, 3, 5).expect("partition");
        let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
        let timing = DistributedTiming::default()
            .with_round_deadline(Duration::from_millis(800))
            .with_learner_patience(Duration::from_secs(4));
        let m = parts.len();
        let features = feature_count(&parts).expect("partitions");
        let hub = LoopbackHub::with_faults(m + 1, NetFaultPlan::none());
        let mut handles = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            let mut courier = Courier::new(hub.endpoint(p as PartyId), RetryPolicy::fast_local());
            let part = part.clone();
            handles.push(thread::spawn(move || {
                if p == 1 {
                    // A "restarted process": knows nothing of the run and
                    // asks back in via Join. The coordinator misses its
                    // round-0 share at the deadline, drops it, then
                    // re-admits it at the round-1 boundary.
                    rejoin_linear(&mut courier, m, &part, &cfg, timing)
                } else {
                    learn_linear(&mut courier, m, &part, &cfg, timing)
                }
            }));
        }
        let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
        let outcome =
            coordinate_linear(&mut courier, m, features, &cfg, None, timing).expect("coordinator");
        let finals: Vec<Result<LinearSvm>> = handles
            .into_iter()
            .map(|h| h.join().expect("learner thread"))
            .collect();

        // Round 0 runs over {0, 2}; from round 1 on, all three — with
        // the rejoiner entering as a fresh learner with zeroed duals,
        // exactly like the in-process membership reference.
        let reference = reference_with_membership(&parts, &cfg, &[(1, 0)], &[(1, 1)]);
        assert_eq!(outcome.model, reference);
        assert!(
            outcome.dropped.is_empty(),
            "re-admission must clear the dropout record, got {:?}",
            outcome.dropped
        );
        for f in &finals {
            assert_eq!(*f.as_ref().expect("every learner finishes"), outcome.model);
        }
    }
}
