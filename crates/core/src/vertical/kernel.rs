//! Nonlinear (kernel) SVM over vertically partitioned data (§IV-C, last
//! paragraph).
//!
//! The vertical scheme generalizes to kernels "for free" because the global
//! consensus variable `z = Σ_m φ_m(X_m)w_m` has a fixed size `N` regardless
//! of the kernel: only the per-learner weight update changes. By the
//! push-through identity,
//!
//! ```text
//! w_m = ρ·φ_mᵀ(I + ρK_m)⁻¹e_m      K_m = K(X_m, X_m) on m's feature slice
//! c_m = φ_m w_m = ρ·K_m·α_m         α_m = (I + ρK_m)⁻¹ e_m
//! ```
//!
//! so learner `m` only ever touches its own `N × N` Gram matrix (factored
//! once) and ships the `N`-vector `c_m` into the secure sum. The reducer's
//! `z`-subproblem is exactly the linear one. Prediction:
//! `f(x) = Σ_m ρ·K(x_m, X_m)·α_m + b`, where `x_m` is the slice of `x`
//! visible to learner `m`.

use ppml_crypto::SecureSum;
use ppml_data::{Dataset, VerticalView};
use ppml_kernel::Kernel;
use ppml_linalg::{vecops, Cholesky, Matrix};
use ppml_telemetry as telemetry;
use telemetry::{EventKind, NO_PARTY};

use crate::vertical::linear::VerticalReducer;
use crate::{AdmmConfig, ConvergenceHistory, Result, TrainError};

/// The trained vertically partitioned kernel model.
///
/// Holds one kernel expansion per learner — over the learner's full
/// training slice (`ρ·α_m`, exact mode) or over its Nyström landmarks
/// (`w_L`); scoring a new sample sums the per-learner expansions.
#[derive(Debug, Clone)]
pub struct VerticalKernelModel {
    kernel: Kernel,
    /// Learner `m`'s expansion points (rows in its feature subspace).
    slices: Vec<Matrix>,
    /// Learner `m`'s expansion coefficients.
    coeffs: Vec<Vec<f64>>,
    feature_sets: Vec<Vec<usize>>,
    bias: f64,
}

impl VerticalKernelModel {
    /// Decision value over a full feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the highest partitioned feature index.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut acc = self.bias;
        for ((slice, coeff), cols) in self.slices.iter().zip(&self.coeffs).zip(&self.feature_sets) {
            let xm: Vec<f64> = cols.iter().map(|&c| x[c]).collect();
            let krow = self.kernel.eval_row(&xm, slice);
            acc += vecops::dot(&krow, coeff);
        }
        acc
    }

    /// Predicted label in `{−1, +1}`.
    ///
    /// # Panics
    ///
    /// As [`VerticalKernelModel::decision`].
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Correct-classification ratio on a (full-feature) dataset.
    ///
    /// # Panics
    ///
    /// As [`VerticalKernelModel::decision`].
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        ppml_svm::accuracy((0..data.len()).map(|i| (self.classify(data.sample(i)), data.label(i))))
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of learners.
    pub fn learners(&self) -> usize {
        self.slices.len()
    }
}

/// Result of vertical kernel training.
#[derive(Debug, Clone)]
pub struct VerticalKernelOutcome {
    /// The trained model.
    pub model: VerticalKernelModel,
    /// Per-iteration trace (Fig. 4 panels d/h).
    pub history: ConvergenceHistory,
}

/// Trainer for kernel SVMs over vertically partitioned data.
#[derive(Debug, Clone, Copy)]
pub struct VerticalKernelSvm;

impl VerticalKernelSvm {
    /// Trains with the paper's §V masking protocol.
    ///
    /// # Errors
    ///
    /// As [`crate::VerticalLinearSvm::train`]; additionally
    /// [`TrainError::Linalg`] if `(I + ρK_m)` fails to factor (only
    /// possible for non-positive-definite kernels).
    pub fn train(
        view: &VerticalView,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
    ) -> Result<VerticalKernelOutcome> {
        let masking = ppml_crypto::PairwiseMasking::new(cfg.seed);
        Self::train_with(view, cfg, eval, &masking)
    }

    /// Trains with an explicit secure-aggregation backend.
    ///
    /// # Errors
    ///
    /// As [`VerticalKernelSvm::train`].
    pub fn train_with(
        view: &VerticalView,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        aggregator: &dyn SecureSum,
    ) -> Result<VerticalKernelOutcome> {
        cfg.validate()?;
        let n = view.rows();
        let m = view.learners();
        if n == 0 || m == 0 {
            return Err(TrainError::BadPartition {
                reason: "vertical view has no rows or learners".to_string(),
            });
        }
        let mut nodes = (0..m)
            .map(|p| VkNode::new(view.part(p), cfg.kernel, cfg))
            .collect::<Result<Vec<_>>>()?;
        let mut reducer = VerticalReducer::new(view.y().to_vec(), cfg)?;
        let mut gap = vec![0.0; n];
        let mut history = ConvergenceHistory::default();
        for iteration in 0..cfg.max_iter {
            for node in &mut nodes {
                node.step(&gap)?;
            }
            let contribs: Vec<Vec<f64>> = nodes.iter().map(|nd| nd.c.clone()).collect();
            let cbar = aggregator.aggregate(&contribs)?;
            let delta = reducer.step(&cbar)?;
            gap = reducer.gap(&cbar);
            if telemetry::enabled() {
                telemetry::emit(
                    NO_PARTY,
                    EventKind::AdmmIteration {
                        iteration: iteration as u64,
                        // The consensus gap ‖z − c̄ + r‖² plays the primal
                        // residual's role in the vertical decomposition.
                        primal_sq: vecops::norm_sq(&gap),
                        dual_sq: cfg.rho * cfg.rho * delta,
                        z_delta: delta,
                        objective: None,
                    },
                );
            }
            history.z_delta.push(delta);
            if let Some(ds) = eval {
                let expansions: Vec<(Matrix, Vec<f64>)> =
                    nodes.iter().map(VkNode::expansion).collect();
                let model = assemble(view, cfg.kernel, expansions, reducer.bias);
                history.accuracy.push(model.accuracy(ds));
            }
            if let Some(tol) = cfg.tol {
                if delta < tol {
                    break;
                }
            }
        }
        let expansions: Vec<(Matrix, Vec<f64>)> = nodes.iter().map(VkNode::expansion).collect();
        Ok(VerticalKernelOutcome {
            model: assemble(view, cfg.kernel, expansions, reducer.bias),
            history,
        })
    }
}

/// The per-node kernel operator: exact dense factorization or the Nyström
/// low-rank approximation (see [`crate::AdmmConfig::nystrom_rank`]).
#[derive(Debug, Clone)]
enum VkOp {
    Exact {
        gram: Matrix,
        chol: Cholesky,
        /// The node's training slice (the model's expansion points).
        points: Matrix,
    },
    Nystrom(ppml_kernel::NystromFactor),
}

/// One learner's node-local state in the vertical kernel scheme; shared by
/// the in-process trainer and the MapReduce job ([`crate::jobs`]).
#[derive(Debug, Clone)]
pub(crate) struct VkNode {
    op: VkOp,
    rho: f64,
    /// Current contribution `c_m = ρ·K̃_m·α_m`.
    pub(crate) c: Vec<f64>,
    /// Current expansion coefficients for the discriminant: over the full
    /// slice (`ρ·α`) in exact mode, over the landmarks (`w_L`) with
    /// Nyström.
    expansion_coeffs: Vec<f64>,
}

impl VkNode {
    /// Builds the node. Exact mode: Gram matrix + one factorization of
    /// `(I + ρK_m)` (tiny jitter tolerates PSD-but-singular Grams from
    /// duplicate rows). With `nystrom_rank = Some(l)`: an `l`-landmark
    /// low-rank factor instead.
    pub(crate) fn new(x: &Matrix, kernel: Kernel, cfg: &crate::AdmmConfig) -> Result<Self> {
        let rho = cfg.rho;
        let op = match cfg.nystrom_rank {
            Some(rank) => {
                let rank = rank.min(x.rows());
                VkOp::Nystrom(ppml_kernel::NystromFactor::fit(
                    x, kernel, rank, rho, cfg.seed,
                )?)
            }
            None => {
                let gram = kernel.gram(x);
                let mut opm = gram.scale(rho);
                opm.add_diag(1.0 + 1e-10);
                VkOp::Exact {
                    chol: opm.cholesky()?,
                    gram,
                    points: x.clone(),
                }
            }
        };
        let coeff_len = match &op {
            VkOp::Exact { points, .. } => points.rows(),
            VkOp::Nystrom(ny) => ny.rank(),
        };
        Ok(VkNode {
            op,
            rho,
            c: vec![0.0; x.rows()],
            expansion_coeffs: vec![0.0; coeff_len],
        })
    }

    /// One α-update given the broadcast consensus gap.
    pub(crate) fn step(&mut self, gap: &[f64]) -> Result<()> {
        let e = vecops::add(gap, &self.c);
        match &self.op {
            VkOp::Exact { gram, chol, .. } => {
                let alpha = chol.solve(&e)?;
                self.c = vecops::scale(&gram.matvec(&alpha)?, self.rho);
                self.expansion_coeffs = vecops::scale(&alpha, self.rho);
            }
            VkOp::Nystrom(ny) => {
                let alpha = ny.solve(&e)?;
                let w_l = ny.landmark_coeffs(&alpha)?;
                self.c = ny.contribution(&w_l)?;
                self.expansion_coeffs = w_l;
            }
        }
        Ok(())
    }

    /// The discriminant expansion this node contributes:
    /// `f_m(x_m) = K(x_m, points)·coeffs`.
    pub(crate) fn expansion(&self) -> (Matrix, Vec<f64>) {
        let points = match &self.op {
            VkOp::Exact { points, .. } => points.clone(),
            VkOp::Nystrom(ny) => ny.landmarks().clone(),
        };
        (points, self.expansion_coeffs.clone())
    }
}

pub(crate) fn assemble(
    view: &VerticalView,
    kernel: Kernel,
    expansions: Vec<(Matrix, Vec<f64>)>,
    bias: f64,
) -> VerticalKernelModel {
    let (slices, coeffs) = expansions.into_iter().unzip();
    VerticalKernelModel {
        kernel,
        slices,
        coeffs,
        feature_sets: (0..view.learners())
            .map(|p| view.features_of(p).to_vec())
            .collect(),
        bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};

    #[test]
    fn converges_on_separable_data() {
        let ds = synth::blobs(100, 1);
        let (train, test) = ds.split(0.5, 2).unwrap();
        let view = Partition::vertical(&train, 2, 3).unwrap();
        let cfg = AdmmConfig::default()
            .with_max_iter(60)
            .with_kernel(Kernel::Rbf { gamma: 0.5 });
        let out = VerticalKernelSvm::train(&view, &cfg, Some(&test)).unwrap();
        let acc = out.model.accuracy(&test);
        assert!(acc > 0.85, "vertical kernel accuracy {acc}");
        let first = out.history.z_delta[0];
        let last = out.history.final_delta().unwrap();
        assert!(last < first * 1e-2, "no convergence: {first} -> {last}");
    }

    #[test]
    fn linear_kernel_matches_linear_trainer() {
        let ds = synth::cancer_like(120, 4);
        let (train, test) = ds.split(0.5, 5).unwrap();
        let view = Partition::vertical(&train, 3, 6).unwrap();
        let cfg = AdmmConfig::default()
            .with_max_iter(50)
            .with_kernel(Kernel::Linear);
        let kernel_out = VerticalKernelSvm::train(&view, &cfg, None).unwrap();
        let linear_out = crate::VerticalLinearSvm::train(&view, &cfg, None).unwrap();
        let ak = kernel_out.model.accuracy(&test);
        let al = linear_out.model.accuracy(&test);
        assert!(
            (ak - al).abs() < 0.05,
            "vertical kernel {ak} vs vertical linear {al}"
        );
    }

    #[test]
    fn decisions_agree_with_linear_trainer_pointwise() {
        // With the linear kernel the two parameterizations represent the
        // same function; decision values must agree closely.
        let ds = synth::blobs(60, 7);
        let view = Partition::vertical(&ds, 2, 8).unwrap();
        let cfg = AdmmConfig::default()
            .with_max_iter(40)
            .with_kernel(Kernel::Linear);
        let k = VerticalKernelSvm::train(&view, &cfg, None).unwrap();
        let l = crate::VerticalLinearSvm::train(&view, &cfg, None).unwrap();
        for i in 0..10 {
            let a = k.model.decision(ds.sample(i));
            let b = l.model.decision(ds.sample(i));
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::blobs(50, 9);
        let view = Partition::vertical(&ds, 2, 1).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(5);
        let a = VerticalKernelSvm::train(&view, &cfg, None).unwrap();
        let b = VerticalKernelSvm::train(&view, &cfg, None).unwrap();
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn nystrom_tracks_exact_training() {
        let ds = synth::blobs(160, 21);
        let (train, test) = ds.split(0.5, 22).unwrap();
        let view = Partition::vertical(&train, 2, 23).unwrap();
        let base = AdmmConfig::default()
            .with_max_iter(40)
            .with_kernel(Kernel::Rbf { gamma: 0.5 });
        let exact = VerticalKernelSvm::train(&view, &base, None).unwrap();
        let nystrom = VerticalKernelSvm::train(&view, &base.with_nystrom(20), None).unwrap();
        let (ae, an) = (exact.model.accuracy(&test), nystrom.model.accuracy(&test));
        assert!(an > ae - 0.07, "nystrom {an} too far below exact {ae}");
        assert!(an > 0.85);
    }

    #[test]
    fn full_rank_nystrom_matches_exact_closely() {
        let ds = synth::blobs(60, 25);
        let view = Partition::vertical(&ds, 2, 26).unwrap();
        let base = AdmmConfig::default()
            .with_max_iter(20)
            .with_kernel(Kernel::Rbf { gamma: 0.5 });
        let exact = VerticalKernelSvm::train(&view, &base, None).unwrap();
        // Rank = N: the approximation is (numerically) the exact kernel.
        let full = VerticalKernelSvm::train(&view, &base.with_nystrom(60), None).unwrap();
        for i in 0..10 {
            let a = exact.model.decision(ds.sample(i));
            let b = full.model.decision(ds.sample(i));
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_empty_view() {
        // A view cannot be empty via the public partitioner, so validate
        // the config path instead: zero iterations is rejected.
        let ds = synth::blobs(20, 2);
        let view = Partition::vertical(&ds, 2, 1).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(0);
        assert!(VerticalKernelSvm::train(&view, &cfg, None).is_err());
    }
}
