//! Linear SVM over vertically partitioned data (§IV-C).
//!
//! Each learner holds a *column slice* `X_m` of every record and a share
//! `w_m` of the weight vector; the decoupling variable
//! `z = Σ_m X_m w_m ∈ Rᴺ` (the vector of decision values on the training
//! rows) makes the margin constraints independent of any individual
//! learner's features. One iteration (paper eq. (28)/(29), re-derived in
//! DESIGN.md §2):
//!
//! 1. **Map** — learner `m` updates
//!    `w_m = ρ·(I + ρX_mᵀX_m)⁻¹·X_mᵀ·e_m` with
//!    `e_m = z − c̄ + c_m + r`, then its contribution `c_m = X_m w_m`
//!    (`(I + ρXᵀX)` is Cholesky-factored once);
//! 2. **Reduce** — `c̄ = Σ_m c_m` through a [`SecureSum`] protocol (this is
//!    the only place learner outputs meet, and only as a sum);
//! 3. the reducer solves the hinge-loss `z`-subproblem — a *separable*
//!    box+equality QP (`Q = (1/ρ)·I`, handled by
//!    [`ppml_qp::solve_separable_eq`] without forming any matrix) — and
//!    broadcasts `z`; the residual update is `r += z − c̄`.
//!
//! The paper prints the dual Hessian of step 3 as `(1/ρ)Y11ᵀY`; the correct
//! derivation gives `(1/ρ)I` (DESIGN.md §2), which is what this module
//! implements.

use ppml_crypto::SecureSum;
use ppml_data::{Dataset, VerticalView};
use ppml_linalg::{vecops, Cholesky};
use ppml_qp::solve_separable_eq;
use ppml_telemetry as telemetry;
use telemetry::{EventKind, NO_PARTY};

use crate::{AdmmConfig, ConvergenceHistory, Result, TrainError};

/// The assembled model after vertical training.
///
/// Each learner contributed the weight slice for its own features; the
/// model stores the slices with their original column indices so a full
/// test vector can be scored (in deployment, each learner would score its
/// slice locally and the partial sums would be securely aggregated).
#[derive(Debug, Clone, PartialEq)]
pub struct VerticalLinearModel {
    weight_slices: Vec<Vec<f64>>,
    feature_sets: Vec<Vec<usize>>,
    bias: f64,
    features: usize,
}

impl VerticalLinearModel {
    /// Decision value `Σ_m w_mᵀ x_m + b` over a full feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the highest partitioned feature index.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut acc = self.bias;
        for (w, cols) in self.weight_slices.iter().zip(&self.feature_sets) {
            for (wi, &c) in w.iter().zip(cols) {
                acc += wi * x[c];
            }
        }
        acc
    }

    /// Predicted label in `{−1, +1}`.
    ///
    /// # Panics
    ///
    /// As [`VerticalLinearModel::decision`].
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Correct-classification ratio on a (full-feature) dataset.
    ///
    /// # Panics
    ///
    /// As [`VerticalLinearModel::decision`].
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        ppml_svm::accuracy((0..data.len()).map(|i| (self.classify(data.sample(i)), data.label(i))))
    }

    /// Reassembles the full weight vector (evaluation convenience; doing
    /// this in production would centralize what the scheme decentralizes).
    pub fn to_linear_svm(&self) -> ppml_svm::LinearSvm {
        let mut w = vec![0.0; self.features];
        for (ws, cols) in self.weight_slices.iter().zip(&self.feature_sets) {
            for (wi, &c) in ws.iter().zip(cols) {
                w[c] = *wi;
            }
        }
        ppml_svm::LinearSvm::from_parts(w, self.bias)
    }

    /// Learner `m`'s weight slice.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn weight_slice(&self, m: usize) -> &[f64] {
        &self.weight_slices[m]
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

/// One learner's node-local state in the vertical linear scheme; shared by
/// the in-process trainer and the MapReduce job ([`crate::jobs`]).
#[derive(Debug, Clone)]
pub(crate) struct VlNode {
    x: ppml_linalg::Matrix,
    chol: Cholesky,
    rho: f64,
    /// Current weight slice `w_m`.
    pub(crate) w: Vec<f64>,
    /// Current contribution `c_m = X_m w_m`.
    pub(crate) c: Vec<f64>,
}

impl VlNode {
    /// Builds the node: factors `(I + ρ·X_mᵀX_m)` once.
    pub(crate) fn new(x: &ppml_linalg::Matrix, rho: f64) -> Result<Self> {
        let mut gram = x.t_matmul(x)?;
        gram = gram.scale(rho);
        gram.add_diag(1.0);
        Ok(VlNode {
            chol: gram.cholesky()?,
            rho,
            w: vec![0.0; x.cols()],
            c: vec![0.0; x.rows()],
            x: x.clone(),
        })
    }

    /// One w-update given the broadcast consensus gap `z − c̄ + r`:
    /// `e_m = gap + c_m`, `w_m = ρ(I + ρXᵀX)⁻¹Xᵀe_m`, `c_m = X w_m`.
    pub(crate) fn step(&mut self, gap: &[f64]) -> Result<()> {
        let e = vecops::add(gap, &self.c);
        let rhs = vecops::scale(&self.x.t_matvec(&e)?, self.rho);
        self.w = self.chol.solve(&rhs)?;
        self.c = self.x.matvec(&self.w)?;
        Ok(())
    }
}

/// Result of vertical linear training.
#[derive(Debug, Clone)]
pub struct VerticalOutcome {
    /// The trained model.
    pub model: VerticalLinearModel,
    /// Per-iteration trace (Fig. 4 panels c/g).
    pub history: ConvergenceHistory,
}

/// Trainer for linear SVMs over vertically partitioned data.
#[derive(Debug, Clone, Copy)]
pub struct VerticalLinearSvm;

impl VerticalLinearSvm {
    /// Trains with the paper's §V masking protocol as the aggregation
    /// backend. `eval` enables per-iteration accuracy (Fig. 4g).
    ///
    /// # Errors
    ///
    /// [`TrainError::BadPartition`] for an empty view;
    /// [`TrainError::BadConfig`] from config validation; solver and
    /// protocol failures are forwarded.
    pub fn train(
        view: &VerticalView,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
    ) -> Result<VerticalOutcome> {
        let masking = ppml_crypto::PairwiseMasking::new(cfg.seed);
        Self::train_with(view, cfg, eval, &masking)
    }

    /// Trains with an explicit secure-aggregation backend.
    ///
    /// # Errors
    ///
    /// As [`VerticalLinearSvm::train`].
    pub fn train_with(
        view: &VerticalView,
        cfg: &AdmmConfig,
        eval: Option<&Dataset>,
        aggregator: &dyn SecureSum,
    ) -> Result<VerticalOutcome> {
        cfg.validate()?;
        let n = view.rows();
        let m = view.learners();
        if n == 0 || m == 0 {
            return Err(TrainError::BadPartition {
                reason: "vertical view has no rows or learners".to_string(),
            });
        }
        let mut nodes = (0..m)
            .map(|p| VlNode::new(view.part(p), cfg.rho))
            .collect::<Result<Vec<_>>>()?;
        let mut reducer = VerticalReducer::new(view.y().to_vec(), cfg)?;
        let mut gap = vec![0.0; n];
        let mut history = ConvergenceHistory::default();
        for iteration in 0..cfg.max_iter {
            for node in &mut nodes {
                node.step(&gap)?;
            }
            let contribs: Vec<Vec<f64>> = nodes.iter().map(|nd| nd.c.clone()).collect();
            let cbar = aggregator.aggregate(&contribs)?;
            let delta = reducer.step(&cbar)?;
            gap = reducer.gap(&cbar);
            if telemetry::enabled() {
                telemetry::emit(
                    NO_PARTY,
                    EventKind::AdmmIteration {
                        iteration: iteration as u64,
                        // The consensus gap ‖z − c̄ + r‖² plays the primal
                        // residual's role in the vertical decomposition.
                        primal_sq: vecops::norm_sq(&gap),
                        dual_sq: cfg.rho * cfg.rho * delta,
                        z_delta: delta,
                        objective: None,
                    },
                );
            }
            history.z_delta.push(delta);
            if let Some(ds) = eval {
                let w: Vec<Vec<f64>> = nodes.iter().map(|nd| nd.w.clone()).collect();
                let model = assemble(view, &w, reducer.bias);
                history.accuracy.push(model.accuracy(ds));
            }
            if let Some(tol) = cfg.tol {
                if delta < tol {
                    break;
                }
            }
        }
        let w: Vec<Vec<f64>> = nodes.iter().map(|nd| nd.w.clone()).collect();
        Ok(VerticalOutcome {
            model: assemble(view, &w, reducer.bias),
            history,
        })
    }
}

/// The reducer-side state of the vertical schemes: solves the hinge-loss
/// `z`-subproblem on the securely aggregated `c̄` and maintains the scaled
/// dual `r`. Shared by the in-process trainers and the MapReduce drivers.
#[derive(Debug, Clone)]
pub(crate) struct VerticalReducer {
    y: Vec<f64>,
    c: f64,
    rho: f64,
    diag: Vec<f64>,
    /// Current consensus decision values on the training rows.
    pub(crate) z: Vec<f64>,
    /// Scaled dual residual.
    pub(crate) r: Vec<f64>,
    /// Current bias estimate.
    pub(crate) bias: f64,
}

impl VerticalReducer {
    pub(crate) fn new(y: Vec<f64>, cfg: &AdmmConfig) -> Result<Self> {
        let n = y.len();
        Ok(VerticalReducer {
            c: cfg.c,
            rho: cfg.rho,
            diag: vec![1.0 / cfg.rho; n],
            z: vec![0.0; n],
            r: vec![0.0; n],
            bias: 0.0,
            y,
        })
    }

    /// Solves the `z`-subproblem for the aggregated `c̄`, updates `z`, `r`
    /// and the bias, and returns `‖z_new − z_old‖²`.
    pub(crate) fn step(&mut self, cbar: &[f64]) -> Result<f64> {
        let n = self.y.len();
        let dd = vecops::sub(cbar, &self.r);
        let lin: Vec<f64> = (0..n).map(|i| self.y[i] * dd[i] - 1.0).collect();
        let sol = solve_separable_eq(&self.diag, &lin, 0.0, self.c, &self.y, 0.0)?;
        let z_new: Vec<f64> = (0..n)
            .map(|i| dd[i] + self.y[i] * sol.x[i] / self.rho)
            .collect();
        self.bias = recover_bias(&sol.x, &z_new, &self.y, self.c);
        for i in 0..n {
            self.r[i] += z_new[i] - cbar[i];
        }
        let delta = vecops::dist_sq(&z_new, &self.z);
        self.z = z_new;
        Ok(delta)
    }

    /// The broadcastable consensus gap `z − c̄ + r` every node needs for its
    /// next w-update.
    pub(crate) fn gap(&self, cbar: &[f64]) -> Vec<f64> {
        (0..self.z.len())
            .map(|i| self.z[i] - cbar[i] + self.r[i])
            .collect()
    }
}

pub(crate) fn assemble(view: &VerticalView, w: &[Vec<f64>], bias: f64) -> VerticalLinearModel {
    let feature_sets: Vec<Vec<usize>> = (0..view.learners())
        .map(|p| view.features_of(p).to_vec())
        .collect();
    let features = feature_sets
        .iter()
        .flat_map(|s| s.iter().copied())
        .max()
        .map_or(0, |v| v + 1);
    VerticalLinearModel {
        weight_slices: w.to_vec(),
        feature_sets,
        bias,
        features,
    }
}

/// Recovers `b` from KKT: free SVs satisfy `y_i(z_i + b) = 1`, i.e.
/// `b = y_i − z_i`; averaged. Falls back to the feasible-interval midpoint
/// when every multiplier is at a bound.
pub(crate) fn recover_bias(lambda: &[f64], z: &[f64], y: &[f64], c: f64) -> f64 {
    let mut acc = 0.0;
    let mut count = 0usize;
    for i in 0..lambda.len() {
        if lambda[i] > c * 1e-6 && lambda[i] < c * (1.0 - 1e-6) {
            acc += y[i] - z[i];
            count += 1;
        }
    }
    if count > 0 {
        return acc / count as f64;
    }
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for i in 0..z.len() {
        if y[i] > 0.0 {
            lo = lo.max(1.0 - z[i]);
        } else {
            hi = hi.min(-1.0 - z[i]);
        }
    }
    if lo.is_finite() && hi.is_finite() {
        0.5 * (lo + hi)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::{synth, Partition};

    #[test]
    fn converges_on_separable_data() {
        let ds = synth::blobs(120, 1);
        let (train, test) = ds.split(0.5, 2).unwrap();
        let view = Partition::vertical(&train, 2, 3).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(60);
        let out = VerticalLinearSvm::train(&view, &cfg, Some(&test)).unwrap();
        let acc = out.model.accuracy(&test);
        assert!(acc > 0.9, "vertical linear accuracy {acc}");
        let first = out.history.z_delta[0];
        let last = out.history.final_delta().unwrap();
        assert!(last < first * 1e-2, "no convergence: {first} -> {last}");
    }

    #[test]
    fn handles_many_learners_on_wider_data() {
        let ds = synth::cancer_like(200, 4);
        let (train, test) = ds.split(0.5, 5).unwrap();
        let view = Partition::vertical(&train, 4, 6).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(80);
        let out = VerticalLinearSvm::train(&view, &cfg, Some(&test)).unwrap();
        let acc = out.model.accuracy(&test);
        assert!(acc > 0.85, "vertical cancer accuracy {acc}");
    }

    #[test]
    fn model_assembly_is_consistent() {
        let ds = synth::blobs(80, 6);
        let view = Partition::vertical(&ds, 2, 7).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(30);
        let out = VerticalLinearSvm::train(&view, &cfg, None).unwrap();
        let assembled = out.model.to_linear_svm();
        for i in 0..10 {
            let a = out.model.decision(ds.sample(i));
            let b = assembled.decision(ds.sample(i)).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregator_backends_agree() {
        let ds = synth::blobs(60, 8);
        let view = Partition::vertical(&ds, 2, 9).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(8);
        let a = VerticalLinearSvm::train_with(&view, &cfg, None, &ppml_crypto::PlainSum).unwrap();
        let b =
            VerticalLinearSvm::train_with(&view, &cfg, None, &ppml_crypto::PairwiseMasking::new(4))
                .unwrap();
        for (u, v) in a
            .model
            .to_linear_svm()
            .weights()
            .iter()
            .zip(b.model.to_linear_svm().weights())
        {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    fn early_stop_honors_tol() {
        // The multi-block (Jacobi) vertical ADMM has a slow geometric tail
        // — the paper's own Fig. 4(c) plateaus well above machine epsilon —
        // so early-stop is exercised at a realistic tolerance.
        let ds = synth::blobs(60, 3);
        let view = Partition::vertical(&ds, 2, 2).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(200).with_tol(1e-4);
        let out = VerticalLinearSvm::train(&view, &cfg, None).unwrap();
        assert!(out.history.len() < 200);
        assert!(out.history.final_delta().unwrap() < 1e-4);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::cancer_like(60, 3);
        let view = Partition::vertical(&ds, 3, 2).unwrap();
        let cfg = AdmmConfig::default().with_max_iter(5);
        let a = VerticalLinearSvm::train(&view, &cfg, None).unwrap();
        let b = VerticalLinearSvm::train(&view, &cfg, None).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn recover_bias_prefers_free_svs() {
        // λ = (C/2) free at index 0: b = y0 − z0 exactly.
        let b = recover_bias(
            &[25.0, 0.0, 50.0],
            &[0.4, 2.0, -1.0],
            &[1.0, 1.0, -1.0],
            50.0,
        );
        assert!((b - 0.6).abs() < 1e-12);
    }
}
