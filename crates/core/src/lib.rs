//! Privacy-preserving consensus-ADMM SVM training over MapReduce —
//! the core contribution of *Xu et al., "Privacy-preserving Machine
//! Learning Algorithms for Big Data Systems", ICDCS 2015*.
//!
//! # The four trainers
//!
//! | Type | Partitioning | Model | Paper section |
//! |---|---|---|---|
//! | [`HorizontalLinearSvm`] | by rows (Fig. 2) | linear | §IV-A |
//! | [`HorizontalKernelSvm`] | by rows | kernel (landmark consensus) | §IV-B |
//! | [`VerticalLinearSvm`] | by columns (Fig. 3) | linear | §IV-C |
//! | [`VerticalKernelSvm`] | by columns | kernel | §IV-C end |
//!
//! Each trainer decomposes the joint SVM into per-learner subproblems
//! (Map), reaches consensus through a [`SecureSum`] protocol at the reducer
//! (the paper's §V pairwise-masking protocol by default), and iterates to
//! the centralized optimum (Lemmas 4.1/4.2). Raw training data never leaves
//! its learner; only the per-iteration local models move, and those only as
//! masked shares.
//!
//! All trainers run in two modes:
//! * **in-process** (`train`) — learners simulated in one address space,
//!   aggregation through any [`SecureSum`] backend; this is what the
//!   benchmarks sweep;
//! * **MapReduce** (`train_on_cluster`, horizontal trainers) — learners are
//!   data nodes of a [`ppml_mapreduce::Cluster`]; the mask exchange rides
//!   on pre-agreed pairwise seeds so each mapper masks independently and
//!   the Reduce step only ever sees the cancelled sum.
//!
//! # Example
//!
//! ```
//! use ppml_core::{AdmmConfig, HorizontalLinearSvm};
//! use ppml_data::{synth, Partition};
//!
//! # fn main() -> Result<(), ppml_core::TrainError> {
//! let ds = synth::blobs(120, 1);
//! let (train, test) = ds.split(0.5, 2)?;
//! let parts = Partition::horizontal(&train, 4, 3)?; // M = 4 learners
//! let cfg = AdmmConfig::default().with_max_iter(30);
//! let outcome = HorizontalLinearSvm::train(&parts, &cfg, Some(&test))?;
//! assert!(outcome.model.accuracy(&test) > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
pub mod checkpoint;
mod config;
pub mod distributed;
pub mod dp;
mod error;
mod history;
pub mod jobs;
mod masks;
pub mod multiclass;
mod observe;
pub mod preprocessing;
pub mod secagg;

mod horizontal {
    pub mod kernel;
    pub mod linear;
}
mod vertical {
    pub mod kernel;
    pub mod linear;
}

pub use checkpoint::Checkpoint;
pub use config::{AdmmConfig, DistributedTiming};
pub use distributed::{DistributedOutcome, RecoveryOptions};
pub use error::TrainError;
pub use history::ConvergenceHistory;
pub use horizontal::kernel::{HorizontalKernelSvm, KernelConsensusModel, KernelOutcome};
pub use horizontal::linear::{HorizontalLinearSvm, LinearOutcome};
pub use masks::SeededMasker;
pub use observe::{observe_task_attempt, score_task_round, set_injected_lag};
pub use secagg::{
    coordinate_linear_secagg, coordinate_linear_secagg_with_recovery, learn_linear_secagg,
    learn_linear_secagg_with_defect, rejoin_linear_secagg, PaillierBackend, PairwiseBackend,
    SecAggConfig, SecAggKind, SecureAggregator, ShamirBackend,
};
pub use vertical::kernel::{VerticalKernelModel, VerticalKernelOutcome, VerticalKernelSvm};
pub use vertical::linear::{VerticalLinearModel, VerticalLinearSvm, VerticalOutcome};

// Re-exported so callers can pick an aggregation backend without importing
// ppml-crypto directly.
pub use ppml_crypto::{
    AdditiveSharing, PaillierAggregation, PairwiseMasking, SecureSum, ThresholdSharing,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TrainError>;
