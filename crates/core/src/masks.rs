//! Seed-agreed pairwise masking for the MapReduce deployment.
//!
//! In the in-process trainers, the mask exchange of §V's protocol is routed
//! directly ([`ppml_crypto::MaskingParty`]). On a real cluster, a
//! mapper-to-mapper channel inside an iteration is awkward, so the standard
//! deployment trick (as in secure-aggregation systems) is used instead:
//! every *pair* of learners agrees on a seed once, up front, and both
//! re-derive the pair's mask for iteration `t` locally. Learner `i` adds
//! the pair mask for every `j > i` and subtracts it for every `j < i`, so
//! summing all masked shares cancels every mask — the same algebra as the
//! paper's `Sedᵢ − Revᵢ`, with the network exchange replaced by a PRG.

use ppml_data::rng::Rng64;

use ppml_crypto::{CryptoError, FixedPointCodec};

use crate::Result;

/// One SplitMix64 finalization round (Steele et al.'s `mix64`): a bijective
/// nonlinear permutation of the state. Used by [`SeededMasker::pair_rng`] to
/// absorb seed components one at a time.
pub(crate) fn mix64(mut s: u64) -> u64 {
    s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    s ^ (s >> 31)
}

/// One learner's masking endpoint with pre-agreed pairwise seeds.
#[derive(Debug, Clone, Copy)]
pub struct SeededMasker {
    shared_seed: u64,
    party: usize,
    parties: usize,
    codec: FixedPointCodec,
}

impl SeededMasker {
    /// Creates the endpoint for `party` of `parties`. All parties must use
    /// the same `shared_seed` (it stands for the pairwise agreement
    /// handshake).
    ///
    /// # Panics
    ///
    /// Panics if `party >= parties` or `parties == 0`.
    pub fn new(shared_seed: u64, party: usize, parties: usize) -> Self {
        assert!(parties > 0, "at least one party");
        assert!(party < parties, "party {party} out of range {parties}");
        SeededMasker {
            shared_seed,
            party,
            parties,
            codec: FixedPointCodec::default(),
        }
    }

    /// The fixed-point codec in use.
    pub fn codec(&self) -> FixedPointCodec {
        self.codec
    }

    /// Deterministic pair mask stream for `(lo, hi)` at `iteration`.
    ///
    /// Each tuple component is absorbed through its own SplitMix64
    /// finalization round *sequentially*. The earlier XOR-of-three-products
    /// mix was linear over GF(2) before the single finalization, so distinct
    /// `(lo, hi, iteration)` tuples whose products XOR-collided produced the
    /// same seed — and therefore identical mask streams, which a curious
    /// reducer could cancel against each other. Chaining a full nonlinear
    /// round per component removes that structure.
    fn pair_rng(&self, lo: usize, hi: usize, iteration: u64) -> Rng64 {
        let mut s = mix64(self.shared_seed);
        s = mix64(s ^ lo as u64);
        s = mix64(s ^ hi as u64);
        s = mix64(s ^ iteration);
        Rng64::new(s)
    }

    /// Masks this learner's values for `iteration`: fixed-point encode, then
    /// add the pair mask for every higher-indexed peer and subtract it for
    /// every lower-indexed one.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ValueOutOfRange`] when a value exceeds the fixed-point
    /// range.
    pub fn mask_share(&self, values: &[f64], iteration: u64) -> Result<Vec<u64>> {
        self.apply_pair_masks(values, iteration, &mut (0..self.parties))
    }

    /// Masks this learner's values for `iteration` against the peers in
    /// `present` only — the re-keyed variant used after a dropout.
    ///
    /// Pair seeds are derived from `(shared_seed, lo, hi)` alone, so
    /// shrinking the set is a pure recomputation: the pair masks between
    /// surviving parties are unchanged, and the masks this learner used to
    /// exchange with dropped parties simply stop being applied. Summing
    /// the shares of exactly the parties in `present` (all masked over the
    /// same set, for the same iteration) still cancels every mask.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ProtocolMisuse`] when `present` does not contain this
    /// learner or names a party outside `0..parties`;
    /// [`CryptoError::ValueOutOfRange`] as [`SeededMasker::mask_share`].
    pub fn mask_share_among(
        &self,
        values: &[f64],
        iteration: u64,
        present: &[usize],
    ) -> Result<Vec<u64>> {
        if !present.contains(&self.party) {
            return Err(CryptoError::ProtocolMisuse {
                reason: "masking party not in the survivor set",
            }
            .into());
        }
        if present.iter().any(|&p| p >= self.parties) {
            return Err(CryptoError::ProtocolMisuse {
                reason: "survivor set names an unknown party",
            }
            .into());
        }
        self.apply_pair_masks(values, iteration, &mut present.iter().copied())
    }

    fn apply_pair_masks(
        &self,
        values: &[f64],
        iteration: u64,
        peers: &mut dyn Iterator<Item = usize>,
    ) -> Result<Vec<u64>> {
        let mut out = Vec::with_capacity(values.len());
        for &v in values {
            out.push(self.codec.encode_u64(v)?);
        }
        for peer in peers {
            if peer == self.party {
                continue;
            }
            let (lo, hi) = (self.party.min(peer), self.party.max(peer));
            let mut rng = self.pair_rng(lo, hi, iteration);
            let add = self.party == lo;
            for slot in out.iter_mut() {
                let m: u64 = rng.next_u64();
                *slot = if add {
                    slot.wrapping_add(m)
                } else {
                    slot.wrapping_sub(m)
                };
            }
        }
        Ok(out)
    }

    /// Reducer side: wrapping-sums the masked shares of **all** parties and
    /// decodes. Masks cancel if and only if every party contributed exactly
    /// once for the same iteration.
    ///
    /// # Errors
    ///
    /// [`CryptoError::ProtocolMisuse`] on missing or ragged shares.
    pub fn combine(
        shares: &[Vec<u64>],
        parties: usize,
        codec: FixedPointCodec,
    ) -> Result<Vec<f64>> {
        if shares.len() != parties {
            return Err(CryptoError::ProtocolMisuse {
                reason: "share count does not match party count",
            }
            .into());
        }
        // `parties == 0` with no shares passes the length check; reject it
        // before indexing rather than panicking on `shares[0]`.
        let Some(first) = shares.first() else {
            return Err(CryptoError::ProtocolMisuse {
                reason: "combine needs at least one party",
            }
            .into());
        };
        let len = first.len();
        if shares.iter().any(|s| s.len() != len) {
            return Err(CryptoError::ProtocolMisuse {
                reason: "shares have different lengths",
            }
            .into());
        }
        Ok((0..len)
            .map(|i| {
                let sum = shares.iter().fold(0u64, |acc, s| acc.wrapping_add(s[i]));
                codec.decode_u64(sum)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_cancel_in_the_sum() {
        let parties = 4;
        let values: Vec<Vec<f64>> = (0..parties)
            .map(|p| (0..5).map(|i| (p * 5 + i) as f64 * 0.25 - 2.0).collect())
            .collect();
        let maskers: Vec<SeededMasker> = (0..parties)
            .map(|p| SeededMasker::new(99, p, parties))
            .collect();
        let shares: Vec<Vec<u64>> = maskers
            .iter()
            .zip(&values)
            .map(|(m, v)| m.mask_share(v, 7).unwrap())
            .collect();
        let sum = SeededMasker::combine(&shares, parties, maskers[0].codec()).unwrap();
        for i in 0..5 {
            let want: f64 = values.iter().map(|v| v[i]).sum();
            assert!((sum[i] - want).abs() < 1e-6, "{} vs {}", sum[i], want);
        }
    }

    #[test]
    fn share_differs_from_raw_encoding() {
        let m = SeededMasker::new(1, 0, 3);
        let raw = m.codec().encode_u64(1.5).unwrap();
        let masked = m.mask_share(&[1.5], 0).unwrap();
        assert_ne!(masked[0], raw);
    }

    #[test]
    fn masks_differ_across_iterations() {
        let m = SeededMasker::new(1, 0, 2);
        let a = m.mask_share(&[0.0], 0).unwrap();
        let b = m.mask_share(&[0.0], 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn mixed_iteration_shares_do_not_cancel() {
        let parties = 2;
        let maskers: Vec<SeededMasker> = (0..parties)
            .map(|p| SeededMasker::new(5, p, parties))
            .collect();
        let s0 = maskers[0].mask_share(&[1.0], 0).unwrap();
        let s1 = maskers[1].mask_share(&[1.0], 1).unwrap(); // wrong iteration
        let sum = SeededMasker::combine(&[s0, s1], parties, maskers[0].codec()).unwrap();
        assert!((sum[0] - 2.0).abs() > 1.0, "stale masks must not cancel");
    }

    #[test]
    fn combine_validates_inputs() {
        let codec = FixedPointCodec::default();
        assert!(SeededMasker::combine(&[vec![0]], 2, codec).is_err());
        assert!(SeededMasker::combine(&[vec![0], vec![0, 1]], 2, codec).is_err());
    }

    #[test]
    fn combine_rejects_zero_parties_instead_of_panicking() {
        // `parties == 0` with no shares used to pass the length check and
        // then panic indexing `shares[0]`.
        let err = SeededMasker::combine(&[], 0, FixedPointCodec::default());
        assert!(err.is_err());
    }

    #[test]
    fn survivor_set_masks_still_cancel() {
        let parties = 4;
        let survivors = [0usize, 2, 3]; // party 1 dropped out
        let values: Vec<Vec<f64>> = (0..parties)
            .map(|p| (0..3).map(|i| (p * 3 + i) as f64 * 0.5 - 1.0).collect())
            .collect();
        let maskers: Vec<SeededMasker> = (0..parties)
            .map(|p| SeededMasker::new(99, p, parties))
            .collect();
        let shares: Vec<Vec<u64>> = survivors
            .iter()
            .map(|&p| {
                maskers[p]
                    .mask_share_among(&values[p], 7, &survivors)
                    .unwrap()
            })
            .collect();
        let sum = SeededMasker::combine(&shares, survivors.len(), maskers[0].codec()).unwrap();
        for i in 0..3 {
            let want: f64 = survivors.iter().map(|&p| values[p][i]).sum();
            assert!((sum[i] - want).abs() < 1e-6, "{} vs {}", sum[i], want);
        }
    }

    #[test]
    fn survivor_and_full_set_masks_agree_between_survivors() {
        // A full-set share minus a survivor-set share must equal exactly
        // the pair masks toward the dropped parties — i.e. re-keying only
        // removes dead pairs, it does not reshuffle surviving ones.
        let m = SeededMasker::new(42, 0, 3);
        let full = m.mask_share(&[1.25], 5).unwrap();
        let among = m.mask_share_among(&[1.25], 5, &[0, 2]).unwrap();
        assert_ne!(full, among, "dropping a pair must change the share");
        // Same survivor set, same iteration: deterministic recomputation.
        assert_eq!(among, m.mask_share_among(&[1.25], 5, &[0, 2]).unwrap());
    }

    #[test]
    fn mask_share_among_validates_the_survivor_set() {
        let m = SeededMasker::new(7, 0, 3);
        assert!(
            m.mask_share_among(&[0.0], 0, &[1, 2]).is_err(),
            "self missing"
        );
        assert!(
            m.mask_share_among(&[0.0], 0, &[0, 9]).is_err(),
            "unknown party"
        );
    }

    #[test]
    fn pair_streams_never_collide_across_pairs_and_iterations() {
        // Property: over a grid of pairs × iterations, no two distinct
        // (lo, hi, iteration) tuples may yield the same mask stream. The
        // old XOR-of-products seed derivation had GF(2)-linear collisions;
        // the sequential SplitMix absorb must not.
        let parties = 8;
        let iterations = 64u64;
        let m = SeededMasker::new(0xDEAD_BEEF, 0, parties);
        let mut seen = std::collections::HashMap::new();
        for lo in 0..parties {
            for hi in (lo + 1)..parties {
                for it in 0..iterations {
                    let mut rng = m.pair_rng(lo, hi, it);
                    // Two words of the stream: a 128-bit fingerprint.
                    let fp = (rng.next_u64(), rng.next_u64());
                    if let Some(prev) = seen.insert(fp, (lo, hi, it)) {
                        panic!("stream collision: {prev:?} vs {:?}", (lo, hi, it));
                    }
                }
            }
        }
        assert_eq!(
            seen.len(),
            parties * (parties - 1) / 2 * iterations as usize
        );
    }

    #[test]
    fn permuted_seed_components_do_not_alias() {
        // Regression for the absorb order: the sequential absorb must keep
        // component positions distinct — swapping values between slots (a
        // classic collision of commutative mixes) must change the stream.
        let m = SeededMasker::new(7, 0, 8);
        let word = |lo, hi, it| m.pair_rng(lo, hi, it).next_u64();
        assert_ne!(word(1, 2, 3), word(1, 3, 2));
        assert_ne!(word(1, 2, 3), word(2, 3, 1));
        assert_ne!(word(1, 2, 3), word(2, 1, 3));
    }

    #[test]
    fn single_survivor_share_is_unmasked_encoding() {
        // With every peer dropped, no pair masks remain: the survivor's
        // share must be exactly the fixed-point encoding, and combining the
        // singleton set must round-trip the values.
        let m = SeededMasker::new(11, 2, 4);
        let values = [0.75, -3.5, 0.0];
        let share = m.mask_share_among(&values, 9, &[2]).unwrap();
        for (slot, &v) in share.iter().zip(&values) {
            assert_eq!(*slot, m.codec().encode_u64(v).unwrap());
        }
        let sum = SeededMasker::combine(&[share], 1, m.codec()).unwrap();
        for (got, &want) in sum.iter().zip(&values) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn single_party_is_identity() {
        let m = SeededMasker::new(3, 0, 1);
        let shares = vec![m.mask_share(&[2.5, -1.0], 4).unwrap()];
        let sum = SeededMasker::combine(&shares, 1, m.codec()).unwrap();
        assert!((sum[0] - 2.5).abs() < 1e-6 && (sum[1] + 1.0).abs() < 1e-6);
    }
}
