use std::time::Duration;

use ppml_kernel::{Kernel, LandmarkStrategy};
use ppml_qp::QpConfig;

use crate::{Result, TrainError};

/// Hyper-parameters shared by all four trainers.
///
/// Defaults are exactly the paper's evaluation settings (§VI): `C = 50`,
/// `ρ = 100`, 100 iterations, RBF landmarks subsampled from the data when a
/// kernel trainer is used.
///
/// # Example
///
/// ```
/// use ppml_core::AdmmConfig;
///
/// let cfg = AdmmConfig::default()
///     .with_rho(10.0)
///     .with_max_iter(50)
///     .with_seed(7);
/// assert_eq!(cfg.rho, 10.0);
/// assert_eq!(cfg.c, 50.0); // paper default retained
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmConfig {
    /// Slack penalty `C`.
    pub c: f64,
    /// ADMM penalty / learning-speed parameter `ρ`. High values emphasize
    /// consensus over margin (§VI's discussion).
    pub rho: f64,
    /// Number of ADMM iterations to drive.
    pub max_iter: usize,
    /// Optional early-stop threshold on `‖z^{t+1} − z^t‖²`; `None` runs all
    /// `max_iter` iterations (as the paper's figures do).
    pub tol: Option<f64>,
    /// Kernel for the nonlinear trainers (ignored by the linear ones).
    pub kernel: Kernel,
    /// Number of landmark points `l` for the reduced consensus space
    /// (§IV-B); only the horizontal kernel trainer uses it.
    pub landmarks: usize,
    /// How landmarks are chosen.
    pub landmark_strategy: LandmarkStrategy,
    /// Inner QP solver settings.
    pub qp: QpConfig,
    /// Seed driving every randomized component (landmarks, masks).
    pub seed: u64,
    /// Nyström rank for the vertical kernel trainer: `Some(l)` replaces
    /// each node's exact `N × N` Gram operator with an `l`-landmark
    /// low-rank approximation (`O(N·l)` per iteration instead of `O(N²)`),
    /// trading a little accuracy for paper-scale `N`. `None` (default)
    /// keeps the exact operator. Ignored by the other trainers.
    pub nystrom_rank: Option<usize>,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            c: 50.0,
            rho: 100.0,
            max_iter: 100,
            tol: None,
            kernel: Kernel::Rbf { gamma: 0.5 },
            landmarks: 30,
            landmark_strategy: LandmarkStrategy::SubsampleRows,
            qp: QpConfig {
                tol: 1e-7,
                max_iter: 200_000,
            },
            seed: 0x9e37,
            nystrom_rank: None,
        }
    }
}

impl AdmmConfig {
    /// Sets the slack penalty `C`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the ADMM penalty `ρ`.
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Sets the iteration budget.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets an early-stop tolerance on `‖Δz‖²`.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    /// Sets the kernel for the nonlinear trainers.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the landmark count `l`.
    pub fn with_landmarks(mut self, landmarks: usize) -> Self {
        self.landmarks = landmarks;
        self
    }

    /// Sets the landmark selection strategy.
    pub fn with_landmark_strategy(mut self, strategy: LandmarkStrategy) -> Self {
        self.landmark_strategy = strategy;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the Nyström approximation for the vertical kernel trainer.
    pub fn with_nystrom(mut self, rank: usize) -> Self {
        self.nystrom_rank = Some(rank);
        self
    }

    /// Validates ranges; every trainer calls this first.
    ///
    /// # Errors
    ///
    /// [`TrainError::BadConfig`] with the offending field.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: &str| {
            Err(TrainError::BadConfig {
                reason: reason.to_string(),
            })
        };
        if !(self.c.is_finite() && self.c > 0.0) {
            return fail("C must be positive and finite");
        }
        if !(self.rho.is_finite() && self.rho > 0.0) {
            return fail("rho must be positive and finite");
        }
        if self.max_iter == 0 {
            return fail("max_iter must be at least 1");
        }
        if let Some(t) = self.tol {
            if t.is_nan() || t <= 0.0 {
                return fail("tol must be positive when set");
            }
        }
        if self.landmarks == 0 {
            return fail("landmark count must be at least 1");
        }
        if self.nystrom_rank == Some(0) {
            return fail("nystrom rank must be at least 1 when set");
        }
        Ok(())
    }
}

/// Timing knobs for the distributed protocol ([`crate::distributed`]).
///
/// Two clocks govern dropout detection, one per role:
///
/// * the **coordinator** gives each collection round a single deadline;
///   learners whose shares have not arrived when it expires are declared
///   dropped and the round is re-keyed over the survivors. Heartbeats do
///   not extend the deadline — a learner that is alive but never produces
///   a share still gets dropped.
/// * each **learner** bounds how long it waits for the next protocol
///   frame (consensus or re-key) from the coordinator. When the patience
///   runs out it exits with a transport error instead of blocking
///   forever on a dead coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedTiming {
    /// Coordinator-side deadline for collecting one round of shares.
    pub round_deadline: Duration,
    /// Learner-side bound on the gap between coordinator protocol frames.
    pub learner_patience: Duration,
}

impl Default for DistributedTiming {
    fn default() -> Self {
        DistributedTiming {
            round_deadline: Duration::from_secs(10),
            learner_patience: Duration::from_secs(30),
        }
    }
}

impl DistributedTiming {
    /// Sets the coordinator's per-round collection deadline.
    pub fn with_round_deadline(mut self, deadline: Duration) -> Self {
        self.round_deadline = deadline;
        self
    }

    /// Sets the learner's patience for the coordinator.
    pub fn with_learner_patience(mut self, patience: Duration) -> Self {
        self.learner_patience = patience;
        self
    }

    /// Validates the pair; both distributed entry points call this first.
    ///
    /// # Errors
    ///
    /// [`TrainError::BadConfig`] on a zero duration, or when the patience
    /// is shorter than the round deadline (a healthy learner can wait up
    /// to a full round deadline between coordinator frames, so a shorter
    /// patience would make it give up on a live coordinator).
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: &str| {
            Err(TrainError::BadConfig {
                reason: reason.to_string(),
            })
        };
        if self.round_deadline.is_zero() {
            return fail("round deadline must be positive");
        }
        if self.learner_patience < self.round_deadline {
            return fail("learner patience must be at least the round deadline");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = AdmmConfig::default();
        assert_eq!(cfg.c, 50.0);
        assert_eq!(cfg.rho, 100.0);
        assert_eq!(cfg.max_iter, 100);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let cfg = AdmmConfig::default()
            .with_c(1.0)
            .with_rho(2.0)
            .with_max_iter(3)
            .with_tol(1e-5)
            .with_landmarks(9)
            .with_seed(42);
        assert_eq!(cfg.c, 1.0);
        assert_eq!(cfg.rho, 2.0);
        assert_eq!(cfg.max_iter, 3);
        assert_eq!(cfg.tol, Some(1e-5));
        assert_eq!(cfg.landmarks, 9);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(AdmmConfig::default().with_c(0.0).validate().is_err());
        assert!(AdmmConfig::default().with_rho(-1.0).validate().is_err());
        assert!(AdmmConfig::default().with_max_iter(0).validate().is_err());
        assert!(AdmmConfig::default().with_tol(0.0).validate().is_err());
        assert!(AdmmConfig::default().with_landmarks(0).validate().is_err());
        let cfg = AdmmConfig {
            c: f64::NAN,
            ..AdmmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn timing_validates_both_clocks() {
        assert!(DistributedTiming::default().validate().is_ok());
        let zero = DistributedTiming::default().with_round_deadline(Duration::ZERO);
        assert!(zero.validate().is_err());
        let impatient = DistributedTiming::default()
            .with_round_deadline(Duration::from_secs(5))
            .with_learner_patience(Duration::from_secs(1));
        assert!(impatient.validate().is_err());
    }
}
