//! Acceptance test for the cluster observability plane (ISSUE 9): a
//! four-learner pairwise run over a loopback hub in which one learner is
//! slowed at the transport — it participates correctly but sleeps before
//! sending each round's share. The run must surface that learner on the
//! coordinator's `/cluster` endpoint with the leading straggler score,
//! record a `slow_learner` event in the JSONL stream, and fold one
//! telemetry delta per learner per round — all without changing the
//! trained model by a single bit.
//!
//! Lives in its own integration-test binary because both the telemetry
//! collector and the cluster registry are process-global.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ppml_core::distributed::{coordinate_linear, feature_count, learn_linear};
use ppml_core::{AdmmConfig, DistributedTiming};
use ppml_data::{synth, Dataset, Partition};
use ppml_svm::LinearSvm;
use ppml_telemetry as telemetry;
use ppml_telemetry::{
    mix64, ClusterRegistry, Event, EventKind, FanoutSink, JsonlSink, MetricsServer, MetricsSink,
    RingSink, Sink,
};
use ppml_transport::{
    Courier, Envelope, LinkStats, LoopbackHub, Message, NetFaultPlan, PartyId, RetryPolicy,
    Transport, TransportError,
};

const LEARNERS: usize = 4;
const SLOW: PartyId = 2;
const LAG: Duration = Duration::from_millis(60);

/// Delegating transport that sleeps before sending each masked share:
/// the learner behind it runs the real protocol, just late — the
/// injected fault the straggler scorer exists to catch.
struct LaggyTransport<T: Transport> {
    inner: T,
    lag: Duration,
}

impl<T: Transport> Transport for LaggyTransport<T> {
    fn party(&self) -> PartyId {
        self.inner.party()
    }

    fn next_seq(&mut self, to: PartyId) -> u64 {
        self.inner.next_seq(to)
    }

    fn send_raw(
        &mut self,
        to: PartyId,
        msg: &Message,
        seq: u64,
        flags: u16,
    ) -> Result<usize, TransportError> {
        if matches!(msg, Message::MaskedShare { .. }) {
            thread::sleep(self.lag);
        }
        self.inner.send_raw(to, msg, seq, flags)
    }

    fn recv(&mut self, timeout: Duration) -> Result<Envelope, TransportError> {
        self.inner.recv(timeout)
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }
}

/// One full pairwise run with learner [`SLOW`] lagged by `lag`; returns
/// the coordinator's model.
fn run_pairwise(parts: &[Dataset], cfg: &AdmmConfig, lag: Duration) -> LinearSvm {
    let m = parts.len();
    let features = feature_count(parts).expect("partitions");
    let hub = LoopbackHub::with_faults(m + 1, NetFaultPlan::none());
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_secs(2))
        .with_learner_patience(Duration::from_secs(8));
    let mut handles = Vec::new();
    for (p, part) in parts.iter().enumerate() {
        let part = part.clone();
        let cfg = *cfg;
        let endpoint = hub.endpoint(p as PartyId);
        handles.push(thread::spawn(move || {
            if p as PartyId == SLOW {
                let mut courier = Courier::new(
                    LaggyTransport {
                        inner: endpoint,
                        lag,
                    },
                    RetryPolicy::fast_local(),
                );
                learn_linear(&mut courier, m, &part, &cfg, timing)
            } else {
                let mut courier = Courier::new(endpoint, RetryPolicy::fast_local());
                learn_linear(&mut courier, m, &part, &cfg, timing)
            }
        }));
    }
    let mut courier = Courier::new(hub.endpoint(m as PartyId), RetryPolicy::fast_local());
    let outcome =
        coordinate_linear(&mut courier, m, features, cfg, None, timing).expect("run must complete");
    assert!(
        outcome.dropped.is_empty(),
        "a slow learner is not a dead one"
    );
    for handle in handles {
        let model = handle.join().expect("learner thread").expect("learner");
        assert_eq!(model, outcome.model, "learners agree on the consensus");
    }
    outcome.model
}

/// Pulls `ppml_straggler_score{learner="N"} V` rows out of the
/// exposition.
fn scores(body: &str) -> Vec<(u32, f64)> {
    body.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("ppml_straggler_score{learner=\"")?;
            let (learner, value) = rest.split_once("\"} ")?;
            Some((learner.parse().ok()?, value.parse().ok()?))
        })
        .collect()
}

#[test]
fn slow_learner_leads_the_cluster_view_without_touching_the_model() {
    let ds = synth::blobs(128, 5);
    let parts = Partition::horizontal(&ds, LEARNERS, 1).expect("partition");
    let cfg = AdmmConfig::default().with_max_iter(5).with_seed(11);

    // Instrumented run: JSONL + ring sinks installed, one learner lagged.
    let jsonl_path = std::env::temp_dir().join(format!(
        "ppml-cluster-observability-{}.jsonl",
        std::process::id()
    ));
    let jsonl = JsonlSink::create(&jsonl_path).expect("create jsonl");
    let ring = RingSink::new(100_000);
    telemetry::install(FanoutSink::new(vec![jsonl as Arc<dyn Sink>, ring.clone()]));
    ClusterRegistry::global().reset();

    let instrumented = run_pairwise(&parts, &cfg, LAG);

    // The /cluster endpoint serves the folded per-learner view over the
    // same server that serves /metrics.
    let sink = MetricsSink::new();
    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(sink.registry())).expect("serve");
    let (status, body) =
        telemetry::request(&server.local_addr().to_string(), "GET", "/cluster", b"")
            .expect("scrape /cluster");
    assert_eq!(status, 200);
    for learner in 0..LEARNERS {
        let series = format!("ppml_cluster_deltas_total{{learner=\"{learner}\"}}");
        let folded: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix(series.as_str()))
            .and_then(|rest| rest.trim().parse().ok())
            .unwrap_or_else(|| panic!("no {series} row in:\n{body}"));
        assert!(folded >= 1, "learner {learner} relayed no deltas:\n{body}");
    }

    // The lagged learner's straggler score leads, and crosses the
    // flagging threshold: 60 ms of injected lag against a loopback-run
    // median is far beyond 2x.
    let scores = scores(&body);
    assert_eq!(scores.len(), LEARNERS, "{body}");
    let (leader, leading_score) = scores
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("scores");
    assert_eq!(leader, SLOW, "wrong straggler flagged: {scores:?}");
    assert!(leading_score >= 2.0, "score must flag the lag: {scores:?}");

    telemetry::uninstall();

    // The coordinator's stream holds the verdict and the folded deltas.
    let text = std::fs::read_to_string(&jsonl_path).expect("read jsonl");
    let _ = std::fs::remove_file(&jsonl_path);
    let events: Vec<Event> = text
        .lines()
        .map(|line| Event::from_json(line).unwrap_or_else(|e| panic!("{e:?}: {line}")))
        .collect();
    assert_eq!(events.len() as u64, ring.recorded());
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            EventKind::SlowLearner { party, score, .. }
                if party == SLOW && score >= 2.0
        )),
        "missing the slow_learner verdict for party {SLOW}"
    );

    // Every relayed delta is stamped with the causal span id — either
    // anchored on the gossiped run id or still 0-anchored if the delta
    // was relayed before the learner saw its first clock probe.
    let run_id = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::RunInfo { run_id } => Some(run_id),
            _ => None,
        })
        .expect("coordinator must stamp the run id");
    let deltas: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TelemetryDelta {
                iteration, span, ..
            } => Some((iteration, span)),
            _ => None,
        })
        .collect();
    assert!(
        deltas.len() >= LEARNERS,
        "expected at least one folded delta per learner: {}",
        deltas.len()
    );
    for (iteration, span) in deltas {
        assert!(
            span == mix64(run_id ^ iteration) || span == mix64(iteration),
            "span {span:#x} matches neither anchored nor 0-anchored id for round {iteration}"
        );
    }

    // Bit-identity: the same run with telemetry disabled and no lag
    // produces the same model — the relay observes the protocol, it
    // never participates in it.
    let bare = run_pairwise(&parts, &cfg, Duration::ZERO);
    assert_eq!(
        instrumented, bare,
        "telemetry relay must not move the model"
    );
}
