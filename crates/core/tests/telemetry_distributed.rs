//! Acceptance test for the telemetry stream of a faulty distributed run:
//! a three-learner TCP training session in which one learner silently
//! stops contributing mid-run. The JSONL stream written during the run is
//! then *replayed* — every line re-parsed — and must contain the round
//! deadline miss, the dropout declaration and the re-key epoch.
//!
//! This lives in its own integration-test binary because the telemetry
//! collector is process-global: a separate process keeps the installed
//! sink isolated from every other test.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ppml_core::distributed::{coordinate_linear, feature_count, learn_linear};
use ppml_core::{AdmmConfig, DistributedTiming, SeededMasker};
use ppml_data::{synth, Partition};
use ppml_telemetry as telemetry;
use ppml_telemetry::{Event, EventKind, FanoutSink, JsonlSink, RingSink, Sink};
use ppml_transport::{Courier, Message, PartyId, RetryPolicy, TcpTransport};

const LEARNERS: usize = 3;

fn tcp_courier(
    party: PartyId,
    peers: HashMap<PartyId, std::net::SocketAddr>,
) -> Courier<TcpTransport> {
    let transport = TcpTransport::bind(
        party,
        "127.0.0.1:0".parse().expect("loopback addr"),
        peers,
        RetryPolicy::tcp_link(),
        Duration::from_secs(5),
    )
    .expect("bind");
    Courier::new(transport, RetryPolicy::tcp_default())
}

/// A learner that participates correctly for rounds 0 and 1, then stops
/// sending shares while still receiving (and therefore ACKing) frames:
/// the coordinator's broadcasts keep succeeding, so the dropout can only
/// be detected by the round deadline in the collect phase.
fn lame_learner(coordinator: std::net::SocketAddr, cfg: AdmmConfig, features: usize) {
    let party: PartyId = 1;
    let mut courier = tcp_courier(party, HashMap::from([(LEARNERS as PartyId, coordinator)]));
    courier
        .send_unreliable(LEARNERS as PartyId, &Message::Heartbeat { nonce: 1 })
        .expect("announce");
    let masker = SeededMasker::new(cfg.seed, party as usize, LEARNERS);
    let everyone: Vec<usize> = (0..LEARNERS).collect();
    let mut quiet_since = Instant::now();
    loop {
        let env = match courier.recv(Duration::from_millis(200)) {
            Ok(env) => {
                quiet_since = Instant::now();
                env
            }
            Err(_) => {
                // After the drop the coordinator never writes to this
                // party again; leave once the line has gone quiet.
                if quiet_since.elapsed() > Duration::from_secs(3) {
                    return;
                }
                continue;
            }
        };
        if let Message::Consensus {
            iteration, done, ..
        } = env.msg
        {
            if done || iteration > 1 {
                continue; // go silent: receive and ACK, never answer
            }
            // The share's *values* are irrelevant to the protocol events
            // under test; only the masking (full-set, correct iteration)
            // and the length must be right for the sum to proceed.
            let payload = masker
                .mask_share_among(&vec![0.0; features + 1], iteration, &everyone)
                .expect("mask");
            courier
                .send_reliable(
                    LEARNERS as PartyId,
                    &Message::MaskedShare {
                        iteration,
                        epoch: 0,
                        party,
                        payload,
                    },
                )
                .expect("share");
        }
    }
}

#[test]
fn jsonl_replay_contains_the_dropout_story() {
    let jsonl_path = std::env::temp_dir().join(format!(
        "ppml-telemetry-replay-{}.jsonl",
        std::process::id()
    ));
    let jsonl = JsonlSink::create(&jsonl_path).expect("create jsonl");
    let ring = RingSink::new(100_000);
    telemetry::install(FanoutSink::new(vec![jsonl as Arc<dyn Sink>, ring.clone()]));

    let ds = synth::blobs(96, 5);
    let parts = Partition::horizontal(&ds, LEARNERS, 1).expect("partition");
    let features = feature_count(&parts).expect("partitions");
    let cfg = AdmmConfig::default().with_max_iter(6).with_seed(11);
    let timing = DistributedTiming::default()
        .with_round_deadline(Duration::from_millis(800))
        .with_learner_patience(Duration::from_secs(8));

    let mut coordinator = tcp_courier(LEARNERS as PartyId, HashMap::new());
    let addr = coordinator.transport().local_addr();

    let mut handles = Vec::new();
    for party in [0usize, 2] {
        let part = parts[party].clone();
        let mut courier = tcp_courier(
            party as PartyId,
            HashMap::from([(LEARNERS as PartyId, addr)]),
        );
        handles.push(thread::spawn(move || {
            courier
                .send_unreliable(
                    LEARNERS as PartyId,
                    &Message::Heartbeat {
                        nonce: party as u64,
                    },
                )
                .expect("announce");
            learn_linear(&mut courier, LEARNERS, &part, &cfg, timing)
        }));
    }
    let lame = thread::spawn(move || lame_learner(addr, cfg, features));

    let deadline = Instant::now() + Duration::from_secs(20);
    while coordinator.transport().connected_parties().len() < LEARNERS {
        assert!(Instant::now() < deadline, "learners never connected");
        thread::sleep(Duration::from_millis(20));
    }

    let outcome = coordinate_linear(&mut coordinator, LEARNERS, features, &cfg, None, timing)
        .expect("survivors must finish");
    assert_eq!(outcome.dropped, vec![1], "party 1 must be declared dead");
    for handle in handles {
        let model = handle.join().expect("learner thread").expect("survivor");
        assert_eq!(model, outcome.model, "survivors agree on the consensus");
    }
    lame.join().expect("lame learner thread");

    telemetry::uninstall();

    // Replay: every line of the JSONL stream must parse back into the
    // exact event it was written from, and the dropout story — deadline
    // miss, dropout declaration, re-key epoch — must be on record.
    let text = std::fs::read_to_string(&jsonl_path).expect("read jsonl");
    let _ = std::fs::remove_file(&jsonl_path);
    assert!(
        !text.trim().is_empty(),
        "telemetry stream must not be empty"
    );
    let events: Vec<Event> = text
        .lines()
        .map(|line| Event::from_json(line).unwrap_or_else(|e| panic!("{e:?}: {line}")))
        .collect();
    assert_eq!(
        events.len() as u64,
        ring.recorded(),
        "jsonl and ring sinks must have seen the same events"
    );

    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DeadlineMiss { missing: 1, .. })),
        "missing the round deadline miss"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Dropout { party: 1, .. })),
        "missing the dropout declaration for party 1"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RekeyEpoch { survivors: 2, .. })),
        "missing the re-key epoch over the two survivors"
    );
    // The re-key must reach the surviving learners too (they emit their
    // own RekeyEpoch on applying it): at least coordinator + 2 survivors.
    assert!(
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RekeyEpoch { .. }))
            .count()
            >= 3,
        "survivors must record applying the re-key"
    );
    // Ordinary rounds are on record from both sides of the protocol.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::RoundClose { .. }) && e.party == LEARNERS as u32));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::RoundClose { .. }) && e.party == 0));
    // Wire-level events flowed through the same stream.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::FrameSent { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::FrameRecv { .. })));

    // Trace correlation: the coordinator stamps the stream with a run id
    // and completes a clock-offset handshake with every learner that
    // answers probes — the cooperative ones. The lame learner swallows
    // its probes, so it must have RunInfo from the probe gossip absent
    // and no ClockSync row either.
    let run_ids: Vec<(u32, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RunInfo { run_id } => Some((e.party, run_id)),
            _ => None,
        })
        .collect();
    assert!(
        run_ids.iter().any(|&(p, _)| p == LEARNERS as u32),
        "coordinator must stamp the stream with RunInfo"
    );
    for &learner in &[0u32, 2] {
        assert!(
            run_ids.iter().any(|&(p, _)| p == learner),
            "learner {learner} must record the gossiped run id"
        );
    }
    assert!(
        run_ids.windows(2).all(|w| w[0].1 == w[1].1),
        "every party must agree on one run id: {run_ids:?}"
    );
    let synced: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::ClockSync { peer, .. } => Some(peer),
            _ => None,
        })
        .collect();
    assert!(synced.contains(&0) && synced.contains(&2), "{synced:?}");
    assert!(
        !synced.contains(&1),
        "the lame learner never answers probes, so no offset can exist"
    );
    for e in &events {
        if let EventKind::ClockSync { rtt_ns, .. } = e.kind {
            assert!(rtt_ns > 0, "a loopback RTT is small but never zero");
        }
    }
}
