//! A hand-rolled, minimal HTTP/1.1 server (ISSUE 4 tentpole, piece 2;
//! generalized for serving in ISSUE 6). Zero external crates — the
//! workspace owns its TCP code, so it owns its HTTP endpoints too.
//!
//! The building blocks are [`Request`], [`Response`] and [`Router`]: a
//! route table of `(method, path) → handler` closures served by
//! [`HttpServer`], one short-lived thread per connection, one request per
//! connection (`Connection: close`). [`MetricsServer`] remains the
//! metrics-only wrapper the training binaries use: `GET /metrics` → the
//! [`MetricsRegistry`] rendered as Prometheus text. Handlers decide what
//! bytes leave the process; the metrics handler can only ever serve
//! registry scalars (sizes, timings, counts, epochs), which is the §V
//! privacy argument for exposing it on a socket at all — shares, masks
//! and model coordinates are not representable upstream in the event
//! vocabulary, so they cannot transit that endpoint.
//!
//! Defenses for the public role: request heads over [`MAX_HEAD`] and
//! bodies over [`MAX_BODY`] are answered `413`; a method no route uses
//! gets `405`, an unknown path `404`, and an unparseable request line
//! `400`. A half-open peer is cut off by the per-connection timeout
//! without wedging the accept loop.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cluster::ClusterRegistry;
use crate::metrics::MetricsRegistry;

/// Per-connection read/write budget. A client that cannot finish a
/// request/response cycle in this window is cut off.
const CONN_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-poll interval while idle.
const POLL: Duration = Duration::from_millis(25);
/// Longest request head we will buffer before answering 413.
pub const MAX_HEAD: usize = 8 * 1024;
/// Longest request body we will read before answering 413.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request, as much of it as handlers need.
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, …).
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

/// A response a handler returns; the server adds framing headers.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with a plain-text body.
    pub fn ok_text(body: impl Into<String>) -> Response {
        Response::text(200, body)
    }

    /// A plain-text response with an arbitrary status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A bodyless response carrying only a status.
    pub fn status(status: u16) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Vec::new(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// An exact-match route table. Paths are compared after the query string
/// is stripped; method comparison is exact (methods are conventionally
/// uppercase on the wire).
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, &'static str, Handler)>,
}

impl Router {
    /// An empty router (every request answers 404).
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a route; builder-style.
    pub fn route(
        mut self,
        method: &'static str,
        path: &'static str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((method, path, Box::new(handler)));
        self
    }

    /// Resolves a request: matched handler, else `405` when the path
    /// exists under another method or the method is entirely unknown to
    /// this router, else `404`.
    pub fn dispatch(&self, req: &Request) -> Response {
        for (method, path, handler) in &self.routes {
            if *method == req.method && *path == req.path {
                return handler(req);
            }
        }
        let path_known = self.routes.iter().any(|(_, p, _)| *p == req.path);
        let method_known = self.routes.iter().any(|(m, _, _)| *m == req.method);
        if path_known || !method_known {
            Response::status(405)
        } else {
            Response::status(404)
        }
    }
}

/// A background HTTP/1.1 server dispatching through a [`Router`], one
/// thread per connection, one request per connection. Dropping the
/// handle stops the accept loop (in-flight connections finish on their
/// own threads).
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop in a background thread.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn serve(addr: &str, router: Router) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let router = Arc::new(router);
        let handle = std::thread::Builder::new()
            .name("ppml-http".into())
            .spawn(move || accept_loop(listener, router, stop_flag))
            .expect("spawn http accept thread");
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, router: Arc<Router>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One thread per connection so a slow or mute client can
                // never block other requests behind its timeout.
                let router = router.clone();
                let _ = std::thread::Builder::new()
                    .name("ppml-http-conn".into())
                    .spawn(move || {
                        let _ = answer(stream, &router);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Position of the first header/body separator in `buf`, returned as
/// (separator start, separator length).
fn find_separator(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| (i, 4));
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| (i, 2));
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
        (a, b) => a.or(b),
    }
}

/// Reads one request and writes one response. Any IO failure just drops
/// the connection — a broken client must never disturb the host process.
fn answer(mut stream: TcpStream, router: &Router) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    stream.set_nonblocking(false)?;

    // Read until the header/body separator; anything past it is the
    // start of the body.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let separator = loop {
        if let Some(sep) = find_separator(&buf) {
            break sep;
        }
        if buf.len() > MAX_HEAD {
            return respond(&mut stream, Response::status(413));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer vanished mid-head
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Ok(()), // timeout on a half-open peer
        }
    };
    let (sep_at, sep_len) = separator;
    let head = String::from_utf8_lossy(&buf[..sep_at]).to_string();
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return respond(&mut stream, Response::status(400));
    };

    // Headers: only Content-Length matters to this server.
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return respond(&mut stream, Response::status(400)),
            }
        }
    }
    if content_length > MAX_BODY {
        return respond(&mut stream, Response::status(413));
    }

    let mut body = buf[sep_at + sep_len..].to_vec();
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer vanished mid-body
            Ok(n) => {
                let need = content_length - body.len();
                body.extend_from_slice(&chunk[..n.min(need)]);
            }
            Err(_) => return Ok(()),
        }
    }

    let request = Request {
        method: method.to_string(),
        // Accept a query string; scrapers commonly append one.
        path: target.split('?').next().unwrap_or(target).to_string(),
        body,
    };
    respond(&mut stream, router.dispatch(&request))
}

fn respond(stream: &mut TcpStream, response: Response) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {} {}\r\n\
         Content-Type: {}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A background thread serving `GET /metrics` over HTTP/1.1 from a
/// shared [`MetricsRegistry`] — the metrics-only facade over
/// [`HttpServer`] the training binaries use. Dropping the handle stops
/// the thread.
pub struct MetricsServer {
    inner: HttpServer,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `GET /metrics` (and `GET /`, for convenience),
    /// plus `GET /cluster` — the per-learner series the coordinator
    /// folds from in-band telemetry deltas (empty text until a
    /// distributed loop feeds [`ClusterRegistry::global`]).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn serve(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
        let render = {
            let registry = registry.clone();
            move |_req: &Request| {
                let mut response = Response::ok_text(registry.render());
                response.content_type = "text/plain; version=0.0.4; charset=utf-8";
                response
            }
        };
        let render_root = render.clone();
        let render_cluster = |_req: &Request| {
            let mut response = Response::ok_text(ClusterRegistry::global().render());
            response.content_type = "text/plain; version=0.0.4; charset=utf-8";
            response
        };
        let router = Router::new()
            .route("GET", "/metrics", render)
            .route("GET", "/", render_root)
            .route("GET", "/cluster", render_cluster);
        Ok(MetricsServer {
            inner: HttpServer::serve(addr, router)?,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Sends one HTTP/1.1 request to `addr` and returns `(status, body)` —
/// the tiny client the integration tests, benches and CI share. `addr`
/// is a bare `host:port`; `body` is sent with a `Content-Length` header
/// when non-empty.
///
/// # Errors
///
/// IO errors from the socket, or [`ErrorKind::InvalidData`] when the
/// response has no status line or no header/body separator.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, CONN_TIMEOUT)?;
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| response.strip_prefix("HTTP/1.0 "))
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no status line"))?;
    let response_body = response
        .split_once("\r\n\r\n")
        .or_else(|| response.split_once("\n\n"))
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no header/body separator"))?;
    Ok((status, response_body))
}

/// Fetches `http://{addr}/metrics` and returns the response body.
///
/// # Errors
///
/// IO errors from the socket, or [`ErrorKind::InvalidData`] when the
/// response is not a 200 or has no body separator.
pub fn scrape(addr: &str) -> std::io::Result<String> {
    let (status, body) = request(addr, "GET", "/metrics", b"")?;
    if status != 200 {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("scrape failed: status {status}"),
        ));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn served_registry() -> (MetricsServer, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        (server, registry)
    }

    #[test]
    fn scrape_round_trips_the_render() {
        let (server, registry) = served_registry();
        registry.record(Event {
            t_ns: 0,
            party: 0,
            kind: EventKind::FrameSent {
                to: 1,
                bytes: 64,
                retransmit: false,
            },
        });
        let body = scrape(&server.local_addr().to_string()).expect("scrape");
        assert!(body.contains("ppml_frames_sent_total 1"), "{body}");
        // A second scrape sees updated counters (fresh connection).
        registry.record(Event {
            t_ns: 1,
            party: 0,
            kind: EventKind::FrameSent {
                to: 1,
                bytes: 64,
                retransmit: false,
            },
        });
        let body = scrape(&server.local_addr().to_string()).expect("scrape 2");
        assert!(body.contains("ppml_frames_sent_total 2"), "{body}");
        server.shutdown();
    }

    #[test]
    fn cluster_endpoint_serves_the_global_registry() {
        let (server, _registry) = served_registry();
        let addr = server.local_addr().to_string();
        // Learner id chosen to be unique to this test: the global
        // cluster registry is process-wide shared state.
        ClusterRegistry::global().fold(
            4_041,
            &crate::cluster::ClusterDelta {
                iteration: 1,
                bytes_sent: 77,
                ..Default::default()
            },
        );
        let (status, body) = request(&addr, "GET", "/cluster", b"").expect("request");
        assert_eq!(status, 200);
        assert!(
            body.contains("ppml_cluster_bytes_sent_total{learner=\"4041\"} 77"),
            "{body}"
        );
        server.shutdown();
    }

    #[test]
    fn wrong_paths_and_methods_are_rejected() {
        let (server, _registry) = served_registry();
        let addr = server.local_addr().to_string();
        let (status, _) = request(&addr, "GET", "/secrets", b"").expect("request");
        assert_eq!(status, 404);
        let (status, _) = request(&addr, "POST", "/metrics", b"").expect("request");
        assert_eq!(status, 405);
        let (status, _) = request(&addr, "BREW", "/metrics", b"").expect("request");
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn half_open_connection_does_not_wedge_the_server() {
        let (server, registry) = served_registry();
        let addr = server.local_addr();
        // Connect and say nothing: the mute peer gets its own connection
        // thread, so the next scrape must go straight through.
        let _mute = TcpStream::connect(addr).expect("connect");
        registry.record(Event {
            t_ns: 0,
            party: 0,
            kind: EventKind::WorkerUp { node: 1 },
        });
        let body = scrape(&addr.to_string()).expect("scrape alongside mute peer");
        assert!(body.contains("ppml_workers 1"), "{body}");
        server.shutdown();
    }

    #[test]
    fn router_dispatch_prefers_exact_match_then_405_then_404() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::ok_text("a"))
            .route("POST", "/b", |req| {
                Response::ok_text(format!("b:{}", req.body.len()))
            });
        let req = |method: &str, path: &str| Request {
            method: method.to_string(),
            path: path.to_string(),
            body: vec![0; 3],
        };
        assert_eq!(router.dispatch(&req("GET", "/a")).status, 200);
        let ok = router.dispatch(&req("POST", "/b"));
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"b:3");
        // Known path, wrong method.
        assert_eq!(router.dispatch(&req("POST", "/a")).status, 405);
        // Unknown method anywhere.
        assert_eq!(router.dispatch(&req("DELETE", "/nowhere")).status, 405);
        // Known method, unknown path.
        assert_eq!(router.dispatch(&req("GET", "/nowhere")).status, 404);
    }

    #[test]
    fn post_bodies_reach_the_handler() {
        let router = Router::new().route("POST", "/echo-len", |req| {
            Response::ok_text(format!("{}", req.body.len()))
        });
        let server = HttpServer::serve("127.0.0.1:0", router).expect("bind");
        let addr = server.local_addr().to_string();
        let payload = vec![b'x'; 100_000];
        let (status, body) = request(&addr, "POST", "/echo-len", &payload).expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "100000");
        server.shutdown();
    }

    #[test]
    fn overlong_heads_and_bodies_answer_413() {
        let router = Router::new().route("POST", "/x", |_| Response::ok_text("ok"));
        let server = HttpServer::serve("127.0.0.1:0", router).expect("bind");
        let addr = server.local_addr();

        // A request line longer than MAX_HEAD.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let long_path = "a".repeat(MAX_HEAD + 100);
        let head = format!("GET /{long_path} HTTP/1.1\r\n");
        stream.write_all(head.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");

        // A declared body over MAX_BODY: rejected from the header alone,
        // without reading the body.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        stream.write_all(head.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        server.shutdown();
    }

    #[test]
    fn malformed_and_partial_requests_are_handled() {
        let router = Router::new().route("GET", "/", |_| Response::ok_text("ok"));
        let server = HttpServer::serve("127.0.0.1:0", router).expect("bind");
        let addr = server.local_addr();

        // Garbage request line → 400.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NONSENSE\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // Unparseable Content-Length → 400.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // A partial head followed by a hangup: the server just drops the
        // connection, and stays serviceable for the next client.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET / HT").expect("write");
        drop(stream);
        let (status, body) = request(&addr.to_string(), "GET", "/", b"").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        server.shutdown();
    }
}
