//! A hand-rolled, minimal HTTP/1.1 exposition endpoint (ISSUE 4
//! tentpole, piece 2). Zero external crates — the workspace owns its TCP
//! code, so it owns its scrape endpoint too.
//!
//! The server answers exactly one question: `GET /metrics` → the
//! [`MetricsRegistry`] rendered as Prometheus text format. It never
//! reads a request body, never keeps a connection alive, and the only
//! bytes it can serve are [`MetricsRegistry::render`] output — registry
//! scalars (sizes, timings, counts, epochs), which is the §V privacy
//! argument for exposing it on a socket at all: shares, masks and model
//! coordinates are not representable upstream in the event vocabulary,
//! so they cannot transit this endpoint.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::MetricsRegistry;

/// Per-connection read/write budget. A scraper that cannot finish a
/// request/response cycle in this window is cut off.
const CONN_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-poll interval while idle.
const POLL: Duration = Duration::from_millis(25);
/// Longest request head we will buffer before answering 431.
const MAX_HEAD: usize = 8 * 1024;

/// A background thread serving `GET /metrics` over HTTP/1.1 from a
/// shared [`MetricsRegistry`]. Dropping the handle stops the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop in a background thread.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn serve(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("ppml-metrics-http".into())
            .spawn(move || accept_loop(listener, registry, stop_flag))
            .expect("spawn metrics http thread");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One scraper at a time: answering is a render + a write,
                // microseconds — no need for per-connection threads.
                let _ = answer(stream, &registry);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Reads one request head and writes one response. Any IO failure just
/// drops the connection — a broken scraper must never disturb training.
fn answer(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    stream.set_nonblocking(false)?;

    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let complete = loop {
        match stream.read(&mut buf) {
            Ok(0) => break false,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break true;
                }
                if head.len() > MAX_HEAD {
                    return respond(&mut stream, "431 Request Header Fields Too Large", "");
                }
            }
            Err(_) => break false,
        }
    };
    if !complete {
        return Ok(());
    }

    let request_line = head
        .split(|&b| b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).trim().to_string())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "");
    }
    // Accept a query string; scrapers commonly append one.
    let bare = path.split('?').next().unwrap_or(path);
    match bare {
        "/metrics" | "/" => respond(&mut stream, "200 OK", &registry.render()),
        _ => respond(&mut stream, "404 Not Found", ""),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetches `http://{addr}/metrics` and returns the response body — the
/// tiny client the integration tests, the example's self-scrape and CI
/// all share. `addr` is a bare `host:port`.
///
/// # Errors
///
/// IO errors from the socket, or [`ErrorKind::InvalidData`] when the
/// response is not a 200 or has no body separator.
pub fn scrape(addr: &str) -> std::io::Result<String> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, CONN_TIMEOUT)?;
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status_ok = response.starts_with("HTTP/1.1 200") || response.starts_with("HTTP/1.0 200");
    if !status_ok {
        let line = response.lines().next().unwrap_or("<empty>").to_string();
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("scrape failed: {line}"),
        ));
    }
    let body = response
        .split_once("\r\n\r\n")
        .or_else(|| response.split_once("\n\n"))
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no header/body separator"))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn served_registry() -> (MetricsServer, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        (server, registry)
    }

    #[test]
    fn scrape_round_trips_the_render() {
        let (server, registry) = served_registry();
        registry.record(Event {
            t_ns: 0,
            party: 0,
            kind: EventKind::FrameSent {
                to: 1,
                bytes: 64,
                retransmit: false,
            },
        });
        let body = scrape(&server.local_addr().to_string()).expect("scrape");
        assert!(body.contains("ppml_frames_sent_total 1"), "{body}");
        // A second scrape sees updated counters (fresh connection).
        registry.record(Event {
            t_ns: 1,
            party: 0,
            kind: EventKind::FrameSent {
                to: 1,
                bytes: 64,
                retransmit: false,
            },
        });
        let body = scrape(&server.local_addr().to_string()).expect("scrape 2");
        assert!(body.contains("ppml_frames_sent_total 2"), "{body}");
        server.shutdown();
    }

    #[test]
    fn wrong_paths_and_methods_are_rejected() {
        let (server, _registry) = served_registry();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /secrets HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }

    #[test]
    fn half_open_connection_does_not_wedge_the_server() {
        let (server, registry) = served_registry();
        let addr = server.local_addr();
        // Connect and say nothing: the per-connection read timeout must
        // release the accept loop for the next scraper.
        let _mute = TcpStream::connect(addr).expect("connect");
        registry.record(Event {
            t_ns: 0,
            party: 0,
            kind: EventKind::WorkerUp { node: 1 },
        });
        // The mute peer occupies the single-threaded accept loop for up
        // to CONN_TIMEOUT, so allow the scrape a few attempts.
        let body = (0..5)
            .find_map(|_| scrape(&addr.to_string()).ok())
            .expect("scrape after mute peer");
        assert!(body.contains("ppml_workers 1"), "{body}");
        server.shutdown();
    }
}
