//! The event vocabulary and its JSONL wire form.
//!
//! Every event is a [`Copy`] value of scalar fields — counts, sizes,
//! timings, epochs, party ids and `&'static str` phase labels. That bound
//! is the privacy rule of the paper's §V threat model *enforced by the
//! type system*: a heap payload (a share vector, a mask, a model
//! coordinate slice) simply cannot be attached to an [`Event`], because
//! `Vec` and `String` are not `Copy`. The only floating-point fields are
//! aggregate diagnostics the coordinator already learns (residual norms,
//! `‖Δz‖²`, objective values), never individual coordinates.

use std::fmt::Write as _;

/// Sentinel party id for events not attributable to a protocol party
/// (cluster driver, trainer loops).
pub const NO_PARTY: u32 = u32::MAX;

/// One structured telemetry event.
///
/// `t_ns` is monotonic nanoseconds since the process-local telemetry
/// epoch (first use of [`crate::now_ns`]); comparable within one process,
/// not across processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Monotonic nanoseconds since the process telemetry epoch.
    pub t_ns: u64,
    /// The party (or cluster node) the event happened on; [`NO_PARTY`]
    /// when not attributable.
    pub party: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The typed payload of an [`Event`]. Scalar fields only — see the
/// module docs for why this is a privacy boundary, not a convenience.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A frame was put on the wire (transport layer, per attempt).
    FrameSent {
        /// Destination party.
        to: u32,
        /// Encoded frame size.
        bytes: u64,
        /// Whether the ARQ flagged this transmission as a retransmit.
        retransmit: bool,
    },
    /// A well-formed frame arrived from the wire.
    FrameRecv {
        /// Source party.
        from: u32,
        /// Encoded frame size.
        bytes: u64,
    },
    /// An arriving frame failed to decode (bad checksum, bad version)
    /// and was discarded.
    FrameRejected {
        /// Size of the rejected byte run.
        bytes: u64,
    },
    /// A send gave up after exhausting its retry budget.
    SendTimeout {
        /// Destination party.
        to: u32,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The ARQ retransmitted an unacknowledged frame.
    ArqRetransmit {
        /// Destination party.
        to: u32,
        /// The frame's sequence number.
        seq: u64,
        /// 1-based retransmission attempt.
        attempt: u32,
    },
    /// The ARQ discarded a duplicate delivery.
    DedupDrop {
        /// Source party.
        from: u32,
        /// The duplicated sequence number.
        seq: u64,
    },
    /// An acknowledgement could not be delivered (the peer vanished
    /// between sending its frame and our ack) and was dropped. Safe
    /// under stop-and-wait: a live sender retransmits and the duplicate
    /// is re-acked.
    AckDropped {
        /// The unreachable peer.
        to: u32,
        /// Sequence number the lost ack covered.
        of_seq: u64,
    },
    /// A protocol round opened (coordinator: broadcast sent; learner:
    /// consensus received).
    RoundOpen {
        /// ADMM iteration number.
        iteration: u64,
        /// Re-key epoch in force.
        epoch: u64,
    },
    /// A protocol round closed (coordinator: all shares in; learner:
    /// share sent).
    RoundClose {
        /// ADMM iteration number.
        iteration: u64,
        /// Re-key epoch in force at close.
        epoch: u64,
        /// Shares summed (coordinator) or sent (learner).
        shares: u32,
        /// Wall clock from open to close.
        elapsed_ns: u64,
    },
    /// A collection round's deadline expired with shares still missing.
    DeadlineMiss {
        /// ADMM iteration number.
        iteration: u64,
        /// Re-key epoch in force when the deadline expired.
        epoch: u64,
        /// Survivors whose share had not arrived.
        missing: u32,
    },
    /// A learner was declared dropped.
    Dropout {
        /// The dropped learner.
        party: u32,
        /// Round at which it was declared dead.
        iteration: u64,
    },
    /// The secure sum was re-keyed over a survivor set.
    RekeyEpoch {
        /// Round being re-keyed.
        iteration: u64,
        /// The new epoch.
        epoch: u64,
        /// Survivor count.
        survivors: u32,
    },
    /// A map task was dispatched to a cluster node.
    TaskAttempt {
        /// Block id of the task's input.
        block: u64,
        /// Node the attempt ran on.
        node: u32,
        /// 1-based attempt number.
        attempt: u32,
        /// Whether the block was node-local (no remote read).
        local: bool,
    },
    /// A cluster worker thread came up.
    WorkerUp {
        /// The worker's node id.
        node: u32,
    },
    /// A cluster worker thread exited.
    WorkerDown {
        /// The worker's node id.
        node: u32,
    },
    /// Broadcast cost of one cluster iteration.
    BroadcastBytes {
        /// Iteration index.
        iteration: u64,
        /// Framed broadcast bytes charged.
        bytes: u64,
    },
    /// Shuffle cost of one cluster iteration.
    ShuffleBytes {
        /// Iteration index.
        iteration: u64,
        /// Framed shuffle bytes charged.
        bytes: u64,
    },
    /// Per-iteration trainer diagnostics (aggregate norms only).
    AdmmIteration {
        /// ADMM iteration number.
        iteration: u64,
        /// Primal residual `Σ_m ‖local_m − consensus‖²`.
        primal_sq: f64,
        /// Dual residual `ρ²·M·‖z_{t+1} − z_t‖²`.
        dual_sq: f64,
        /// Consensus movement `‖z_{t+1} − z_t‖²`.
        z_delta: f64,
        /// Primal objective where cheap to evaluate (linear trainers);
        /// `None` for the kernel trainers.
        objective: Option<f64>,
    },
    /// A timed phase ended (emitted by [`crate::Span`] on drop).
    PhaseElapsed {
        /// Phase label (static strings only — see [`PHASES`]).
        phase: &'static str,
        /// Wall clock the phase took.
        elapsed_ns: u64,
    },
    /// Identifies the distributed run this stream belongs to. Emitted
    /// once per process near stream start; `ppml-trace` groups streams
    /// by it.
    RunInfo {
        /// Run identifier shared by every process of one run (the
        /// coordinator mints it and gossips it over the transport).
        run_id: u64,
    },
    /// Result of one RTT-based clock-offset handshake against a peer.
    ///
    /// On the coordinator, `offset_ns` estimates `peer_epoch_clock −
    /// my_clock` at the probe midpoint: adding it to one of the peer's
    /// `t_ns` values rebases that timestamp onto the coordinator's
    /// clock. Scalars only — this is a timing statement, never payload.
    ClockSync {
        /// The probed peer.
        peer: u32,
        /// Estimated `peer_now_ns − local_now_ns` (signed; process
        /// epochs are unrelated so this can be large either way).
        offset_ns: i64,
        /// Round-trip time of the winning (minimum-RTT) probe.
        rtt_ns: u64,
    },
    /// The coordinator durably checkpointed its round state (after the
    /// write-temp → fsync → rename sequence completed).
    CheckpointWrite {
        /// Next round the checkpoint would resume at.
        iteration: u64,
        /// Re-key epoch captured in the checkpoint.
        epoch: u64,
        /// Encoded checkpoint size on disk.
        bytes: u64,
    },
    /// A coordinator came back from a checkpoint and re-entered the run.
    ResumeFromCheckpoint {
        /// Round the resumed coordinator will re-broadcast.
        iteration: u64,
        /// Epoch in force after the post-resume bump.
        epoch: u64,
        /// Learners believed alive at resume.
        survivors: u32,
    },
    /// A previously dropped (or restarted) learner was re-admitted.
    Rejoin {
        /// The returning learner.
        party: u32,
        /// Round at which it re-enters the protocol.
        iteration: u64,
    },
    /// `ppml-serve` answered one batched scoring request. Counts and
    /// timings only — margins and features never enter telemetry.
    ScoreBatch {
        /// Rows in the batch.
        batch: u32,
        /// Wall clock from decoded request to margins ready.
        elapsed_ns: u64,
    },
    /// `ppml-serve` rejected a scoring request (dimension mismatch,
    /// empty batch) without scoring it.
    ScoreRejected {
        /// Rows in the rejected batch.
        batch: u32,
    },
    /// The serving engine (re)loaded its model and swapped it in.
    ModelReload {
        /// Monotonic model generation; 1 is the startup load.
        generation: u64,
        /// Encoded model size on disk.
        bytes: u64,
    },
    /// A transport connection was registered under a party id (hello
    /// handshake completed).
    ConnOpen {
        /// The peer the connection now carries.
        peer: u32,
        /// `true` when the peer dialed in; `false` when we dialed out.
        inbound: bool,
    },
    /// A transport connection closed (EOF, socket error, corrupt
    /// stream, handler panic, or replacement by a newer connection).
    ConnClose {
        /// The registered peer; [`NO_PARTY`] if it never identified
        /// itself.
        peer: u32,
    },
    /// A transport connection was reaped by the idle-read deadline: the
    /// peer produced no bytes for too long (half-open or stalled).
    ConnReaped {
        /// The registered peer; [`NO_PARTY`] if it never identified
        /// itself.
        peer: u32,
        /// How long the connection had been silent when reaped.
        idle_ms: u64,
    },
    /// The coordinator completed one secure-aggregation round under a
    /// pluggable backend. Labels, byte counts and timings only — never
    /// shares, ciphertexts, or coordinates.
    SecAggRound {
        /// Backend label (static strings only — see [`BACKENDS`]).
        backend: &'static str,
        /// ADMM iteration the round served.
        iteration: u64,
        /// Framed aggregation bytes the coordinator moved this round
        /// (shares in, relays/collects out).
        bytes: u64,
        /// Wall clock from round open to the decoded aggregate.
        elapsed_ns: u64,
    },
    /// The coordinator folded one in-band telemetry delta from a learner
    /// (a `Telemetry` wire frame) into its cluster registry. Counts and
    /// sizes only — the delta itself already carries nothing else.
    TelemetryDelta {
        /// The reporting learner.
        from: u32,
        /// Round the delta covers.
        iteration: u64,
        /// Causal correlation id stamped on the delta
        /// (`mix64(run_id ^ iteration)`).
        span: u64,
        /// Frames the learner reported sending since its last delta.
        frames: u64,
        /// Bytes the learner reported sending since its last delta.
        bytes: u64,
        /// The learner's local wall clock for the round.
        elapsed_ns: u64,
    },
    /// The straggler scorer flagged a learner: its share arrived late
    /// relative to the round's median collect lag. A timing verdict
    /// about protocol behaviour — never about data.
    SlowLearner {
        /// The slow learner.
        party: u32,
        /// Round the verdict is for.
        iteration: u64,
        /// This learner's collect lag (round open → share accepted).
        lag_ns: u64,
        /// The round's median collect lag across accepted shares.
        median_ns: u64,
        /// `lag_ns / median_ns` — ≥ the scorer's threshold by
        /// construction (1.0 means exactly median).
        score: f64,
    },
    /// The task scheduler launched a speculative duplicate of a map
    /// attempt whose elapsed time exceeded the round's lower-median by
    /// the speculation factor. First result wins; the loser is
    /// cancelled.
    TaskSpeculated {
        /// Block id of the straggling task.
        block: u64,
        /// Node/worker the duplicate attempt was dispatched to.
        node: u32,
        /// Attempt number of the duplicate (the original keeps its own).
        attempt: u32,
        /// How long the original attempt had been running when the
        /// duplicate launched.
        elapsed_ns: u64,
    },
    /// A MapReduce worker died mid-job (process crash, SIGKILL, or a
    /// send to it failed); its in-flight tasks were re-queued on the
    /// survivors.
    WorkerDead {
        /// The dead worker's node id.
        node: u32,
        /// Tasks that were in flight on the worker when it died.
        inflight: u32,
    },
    /// The task-attempt straggler scorer flagged a worker: its map
    /// attempt ran long relative to the round's lower-median attempt
    /// time. The MapReduce twin of [`EventKind::SlowLearner`].
    SlowWorker {
        /// The slow worker's node id.
        node: u32,
        /// Iteration (round) the verdict is for.
        iteration: u64,
        /// This worker's attempt wall clock.
        lag_ns: u64,
        /// The round's lower-median attempt wall clock.
        median_ns: u64,
        /// `lag_ns / median_ns` — ≥ the scorer's threshold by
        /// construction.
        score: f64,
    },
}

/// Phase labels [`Event::from_json`] can map back to `&'static str`.
/// Parsing an unknown label yields `"other"`.
pub const PHASES: &[&str] = &[
    "train",
    "broadcast",
    "collect",
    "map",
    "reduce",
    "connect",
    "run",
    "other",
];

fn intern_phase(s: &str) -> &'static str {
    PHASES.iter().find(|&&p| p == s).copied().unwrap_or("other")
}

/// Secure-aggregation backend labels [`Event::from_json`] can map back to
/// `&'static str`. Parsing an unknown label yields `"other"`.
pub const BACKENDS: &[&str] = &["pairwise", "shamir", "paillier", "other"];

fn intern_backend(s: &str) -> &'static str {
    BACKENDS
        .iter()
        .find(|&&b| b == s)
        .copied()
        .unwrap_or("other")
}

/// Error from [`Event::from_json`].
///
/// [`ParseError::UnknownKind`] is split out so forward-compatible
/// readers (`ppml-trace`) can skip-and-count lines written by a newer
/// build instead of aborting on them; every other defect is
/// [`ParseError::Malformed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line is valid JSON of the expected shape but names an event
    /// `kind` this build does not know. Carries the unknown kind label.
    UnknownKind(String),
    /// The line is structurally broken: not a flat JSON object, missing
    /// or mistyped fields, bad numbers.
    Malformed(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownKind(kind) => {
                write!(f, "telemetry parse error: unknown kind {kind:?}")
            }
            ParseError::Malformed(msg) => write!(f, "telemetry parse error: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn bad(msg: impl Into<String>) -> ParseError {
    ParseError::Malformed(msg.into())
}

/// A flat JSON scalar — all this format ever nests.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    U(u64),
    I(i64),
    F(f64),
    B(bool),
    S(String),
    Null,
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    if v.is_finite() {
        let _ = write!(out, ",\"{key}\":{v}");
    } else {
        // Non-finite values are not valid JSON; record the gap instead.
        let _ = write!(out, ",\"{key}\":null");
    }
}

impl Event {
    /// Encodes the event as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"t_ns\":{},\"party\":{}", self.t_ns, self.party);
        let kind = |out: &mut String, name: &str| {
            let _ = write!(out, ",\"kind\":\"{name}\"");
        };
        let u = |out: &mut String, key: &str, v: u64| {
            let _ = write!(out, ",\"{key}\":{v}");
        };
        let b = |out: &mut String, key: &str, v: bool| {
            let _ = write!(out, ",\"{key}\":{v}");
        };
        match self.kind {
            EventKind::FrameSent {
                to,
                bytes,
                retransmit,
            } => {
                kind(&mut out, "frame_sent");
                u(&mut out, "to", to.into());
                u(&mut out, "bytes", bytes);
                b(&mut out, "retransmit", retransmit);
            }
            EventKind::FrameRecv { from, bytes } => {
                kind(&mut out, "frame_recv");
                u(&mut out, "from", from.into());
                u(&mut out, "bytes", bytes);
            }
            EventKind::FrameRejected { bytes } => {
                kind(&mut out, "frame_rejected");
                u(&mut out, "bytes", bytes);
            }
            EventKind::SendTimeout { to, attempts } => {
                kind(&mut out, "send_timeout");
                u(&mut out, "to", to.into());
                u(&mut out, "attempts", attempts.into());
            }
            EventKind::ArqRetransmit { to, seq, attempt } => {
                kind(&mut out, "arq_retransmit");
                u(&mut out, "to", to.into());
                u(&mut out, "seq", seq);
                u(&mut out, "attempt", attempt.into());
            }
            EventKind::DedupDrop { from, seq } => {
                kind(&mut out, "dedup_drop");
                u(&mut out, "from", from.into());
                u(&mut out, "seq", seq);
            }
            EventKind::AckDropped { to, of_seq } => {
                kind(&mut out, "ack_dropped");
                u(&mut out, "to", to.into());
                u(&mut out, "of_seq", of_seq);
            }
            EventKind::RoundOpen { iteration, epoch } => {
                kind(&mut out, "round_open");
                u(&mut out, "iteration", iteration);
                u(&mut out, "epoch", epoch);
            }
            EventKind::RoundClose {
                iteration,
                epoch,
                shares,
                elapsed_ns,
            } => {
                kind(&mut out, "round_close");
                u(&mut out, "iteration", iteration);
                u(&mut out, "epoch", epoch);
                u(&mut out, "shares", shares.into());
                u(&mut out, "elapsed_ns", elapsed_ns);
            }
            EventKind::DeadlineMiss {
                iteration,
                epoch,
                missing,
            } => {
                kind(&mut out, "deadline_miss");
                u(&mut out, "iteration", iteration);
                u(&mut out, "epoch", epoch);
                u(&mut out, "missing", missing.into());
            }
            EventKind::Dropout { party, iteration } => {
                kind(&mut out, "dropout");
                u(&mut out, "dropped", party.into());
                u(&mut out, "iteration", iteration);
            }
            EventKind::RekeyEpoch {
                iteration,
                epoch,
                survivors,
            } => {
                kind(&mut out, "rekey_epoch");
                u(&mut out, "iteration", iteration);
                u(&mut out, "epoch", epoch);
                u(&mut out, "survivors", survivors.into());
            }
            EventKind::TaskAttempt {
                block,
                node,
                attempt,
                local,
            } => {
                kind(&mut out, "task_attempt");
                u(&mut out, "block", block);
                u(&mut out, "node", node.into());
                u(&mut out, "attempt", attempt.into());
                b(&mut out, "local", local);
            }
            EventKind::WorkerUp { node } => {
                kind(&mut out, "worker_up");
                u(&mut out, "node", node.into());
            }
            EventKind::WorkerDown { node } => {
                kind(&mut out, "worker_down");
                u(&mut out, "node", node.into());
            }
            EventKind::BroadcastBytes { iteration, bytes } => {
                kind(&mut out, "broadcast_bytes");
                u(&mut out, "iteration", iteration);
                u(&mut out, "bytes", bytes);
            }
            EventKind::ShuffleBytes { iteration, bytes } => {
                kind(&mut out, "shuffle_bytes");
                u(&mut out, "iteration", iteration);
                u(&mut out, "bytes", bytes);
            }
            EventKind::AdmmIteration {
                iteration,
                primal_sq,
                dual_sq,
                z_delta,
                objective,
            } => {
                kind(&mut out, "admm_iteration");
                u(&mut out, "iteration", iteration);
                push_f64(&mut out, "primal_sq", primal_sq);
                push_f64(&mut out, "dual_sq", dual_sq);
                push_f64(&mut out, "z_delta", z_delta);
                if let Some(obj) = objective {
                    push_f64(&mut out, "objective", obj);
                }
            }
            EventKind::PhaseElapsed { phase, elapsed_ns } => {
                kind(&mut out, "phase_elapsed");
                let _ = write!(out, ",\"phase\":\"{phase}\"");
                u(&mut out, "elapsed_ns", elapsed_ns);
            }
            EventKind::RunInfo { run_id } => {
                kind(&mut out, "run_info");
                u(&mut out, "run_id", run_id);
            }
            EventKind::ClockSync {
                peer,
                offset_ns,
                rtt_ns,
            } => {
                kind(&mut out, "clock_sync");
                u(&mut out, "peer", peer.into());
                let _ = write!(out, ",\"offset_ns\":{offset_ns}");
                u(&mut out, "rtt_ns", rtt_ns);
            }
            EventKind::CheckpointWrite {
                iteration,
                epoch,
                bytes,
            } => {
                kind(&mut out, "checkpoint_write");
                u(&mut out, "iteration", iteration);
                u(&mut out, "epoch", epoch);
                u(&mut out, "bytes", bytes);
            }
            EventKind::ResumeFromCheckpoint {
                iteration,
                epoch,
                survivors,
            } => {
                kind(&mut out, "resume_from_checkpoint");
                u(&mut out, "iteration", iteration);
                u(&mut out, "epoch", epoch);
                u(&mut out, "survivors", survivors.into());
            }
            EventKind::Rejoin { party, iteration } => {
                kind(&mut out, "rejoin");
                u(&mut out, "rejoined", party.into());
                u(&mut out, "iteration", iteration);
            }
            EventKind::ScoreBatch { batch, elapsed_ns } => {
                kind(&mut out, "score_batch");
                u(&mut out, "batch", batch.into());
                u(&mut out, "elapsed_ns", elapsed_ns);
            }
            EventKind::ScoreRejected { batch } => {
                kind(&mut out, "score_rejected");
                u(&mut out, "batch", batch.into());
            }
            EventKind::ModelReload { generation, bytes } => {
                kind(&mut out, "model_reload");
                u(&mut out, "generation", generation);
                u(&mut out, "bytes", bytes);
            }
            EventKind::ConnOpen { peer, inbound } => {
                kind(&mut out, "conn_open");
                u(&mut out, "peer", peer.into());
                b(&mut out, "inbound", inbound);
            }
            EventKind::ConnClose { peer } => {
                kind(&mut out, "conn_close");
                u(&mut out, "peer", peer.into());
            }
            EventKind::ConnReaped { peer, idle_ms } => {
                kind(&mut out, "conn_reaped");
                u(&mut out, "peer", peer.into());
                u(&mut out, "idle_ms", idle_ms);
            }
            EventKind::SecAggRound {
                backend,
                iteration,
                bytes,
                elapsed_ns,
            } => {
                kind(&mut out, "secagg_round");
                let _ = write!(out, ",\"backend\":\"{backend}\"");
                u(&mut out, "iteration", iteration);
                u(&mut out, "bytes", bytes);
                u(&mut out, "elapsed_ns", elapsed_ns);
            }
            EventKind::TelemetryDelta {
                from,
                iteration,
                span,
                frames,
                bytes,
                elapsed_ns,
            } => {
                kind(&mut out, "telemetry_delta");
                u(&mut out, "from", from.into());
                u(&mut out, "iteration", iteration);
                u(&mut out, "span", span);
                u(&mut out, "frames", frames);
                u(&mut out, "bytes", bytes);
                u(&mut out, "elapsed_ns", elapsed_ns);
            }
            EventKind::SlowLearner {
                party: learner,
                iteration,
                lag_ns,
                median_ns,
                score,
            } => {
                kind(&mut out, "slow_learner");
                u(&mut out, "learner", learner.into());
                u(&mut out, "iteration", iteration);
                u(&mut out, "lag_ns", lag_ns);
                u(&mut out, "median_ns", median_ns);
                push_f64(&mut out, "score", score);
            }
            EventKind::TaskSpeculated {
                block,
                node,
                attempt,
                elapsed_ns,
            } => {
                kind(&mut out, "task_speculated");
                u(&mut out, "block", block);
                u(&mut out, "node", node.into());
                u(&mut out, "attempt", attempt.into());
                u(&mut out, "elapsed_ns", elapsed_ns);
            }
            EventKind::WorkerDead { node, inflight } => {
                kind(&mut out, "worker_dead");
                u(&mut out, "node", node.into());
                u(&mut out, "inflight", inflight.into());
            }
            EventKind::SlowWorker {
                node,
                iteration,
                lag_ns,
                median_ns,
                score,
            } => {
                kind(&mut out, "slow_worker");
                u(&mut out, "node", node.into());
                u(&mut out, "iteration", iteration);
                u(&mut out, "lag_ns", lag_ns);
                u(&mut out, "median_ns", median_ns);
                push_f64(&mut out, "score", score);
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// [`ParseError`] on malformed JSON, an unknown `kind`, or missing
    /// fields.
    pub fn from_json(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| bad(format!("missing field {key}")))
        };
        let get_u = |key: &str| -> Result<u64, ParseError> {
            match get(key)? {
                Val::U(v) => Ok(*v),
                other => Err(bad(format!("field {key} is not an integer: {other:?}"))),
            }
        };
        let get_u32 = |key: &str| -> Result<u32, ParseError> {
            u32::try_from(get_u(key)?).map_err(|_| bad(format!("field {key} exceeds u32")))
        };
        let get_f = |key: &str| -> Result<f64, ParseError> {
            match get(key)? {
                Val::U(v) => Ok(*v as f64),
                Val::I(v) => Ok(*v as f64),
                Val::F(v) => Ok(*v),
                Val::Null => Ok(f64::NAN),
                other => Err(bad(format!("field {key} is not a number: {other:?}"))),
            }
        };
        let get_i = |key: &str| -> Result<i64, ParseError> {
            match get(key)? {
                Val::U(v) => i64::try_from(*v).map_err(|_| bad(format!("field {key} exceeds i64"))),
                Val::I(v) => Ok(*v),
                other => Err(bad(format!("field {key} is not an integer: {other:?}"))),
            }
        };
        let get_b = |key: &str| -> Result<bool, ParseError> {
            match get(key)? {
                Val::B(v) => Ok(*v),
                other => Err(bad(format!("field {key} is not a bool: {other:?}"))),
            }
        };
        let get_s = |key: &str| -> Result<&str, ParseError> {
            match get(key)? {
                Val::S(v) => Ok(v.as_str()),
                other => Err(bad(format!("field {key} is not a string: {other:?}"))),
            }
        };

        let kind = match get_s("kind")? {
            "frame_sent" => EventKind::FrameSent {
                to: get_u32("to")?,
                bytes: get_u("bytes")?,
                retransmit: get_b("retransmit")?,
            },
            "frame_recv" => EventKind::FrameRecv {
                from: get_u32("from")?,
                bytes: get_u("bytes")?,
            },
            "frame_rejected" => EventKind::FrameRejected {
                bytes: get_u("bytes")?,
            },
            "send_timeout" => EventKind::SendTimeout {
                to: get_u32("to")?,
                attempts: get_u32("attempts")?,
            },
            "arq_retransmit" => EventKind::ArqRetransmit {
                to: get_u32("to")?,
                seq: get_u("seq")?,
                attempt: get_u32("attempt")?,
            },
            "dedup_drop" => EventKind::DedupDrop {
                from: get_u32("from")?,
                seq: get_u("seq")?,
            },
            "ack_dropped" => EventKind::AckDropped {
                to: get_u32("to")?,
                of_seq: get_u("of_seq")?,
            },
            "round_open" => EventKind::RoundOpen {
                iteration: get_u("iteration")?,
                epoch: get_u("epoch")?,
            },
            "round_close" => EventKind::RoundClose {
                iteration: get_u("iteration")?,
                epoch: get_u("epoch")?,
                shares: get_u32("shares")?,
                elapsed_ns: get_u("elapsed_ns")?,
            },
            "deadline_miss" => EventKind::DeadlineMiss {
                iteration: get_u("iteration")?,
                epoch: get_u("epoch")?,
                missing: get_u32("missing")?,
            },
            "dropout" => EventKind::Dropout {
                party: get_u32("dropped")?,
                iteration: get_u("iteration")?,
            },
            "rekey_epoch" => EventKind::RekeyEpoch {
                iteration: get_u("iteration")?,
                epoch: get_u("epoch")?,
                survivors: get_u32("survivors")?,
            },
            "task_attempt" => EventKind::TaskAttempt {
                block: get_u("block")?,
                node: get_u32("node")?,
                attempt: get_u32("attempt")?,
                local: get_b("local")?,
            },
            "worker_up" => EventKind::WorkerUp {
                node: get_u32("node")?,
            },
            "worker_down" => EventKind::WorkerDown {
                node: get_u32("node")?,
            },
            "broadcast_bytes" => EventKind::BroadcastBytes {
                iteration: get_u("iteration")?,
                bytes: get_u("bytes")?,
            },
            "shuffle_bytes" => EventKind::ShuffleBytes {
                iteration: get_u("iteration")?,
                bytes: get_u("bytes")?,
            },
            "admm_iteration" => EventKind::AdmmIteration {
                iteration: get_u("iteration")?,
                primal_sq: get_f("primal_sq")?,
                dual_sq: get_f("dual_sq")?,
                z_delta: get_f("z_delta")?,
                objective: match get("objective") {
                    Ok(_) => Some(get_f("objective")?),
                    Err(_) => None,
                },
            },
            "phase_elapsed" => EventKind::PhaseElapsed {
                phase: intern_phase(get_s("phase")?),
                elapsed_ns: get_u("elapsed_ns")?,
            },
            "run_info" => EventKind::RunInfo {
                run_id: get_u("run_id")?,
            },
            "clock_sync" => EventKind::ClockSync {
                peer: get_u32("peer")?,
                offset_ns: get_i("offset_ns")?,
                rtt_ns: get_u("rtt_ns")?,
            },
            "checkpoint_write" => EventKind::CheckpointWrite {
                iteration: get_u("iteration")?,
                epoch: get_u("epoch")?,
                bytes: get_u("bytes")?,
            },
            "resume_from_checkpoint" => EventKind::ResumeFromCheckpoint {
                iteration: get_u("iteration")?,
                epoch: get_u("epoch")?,
                survivors: get_u32("survivors")?,
            },
            "rejoin" => EventKind::Rejoin {
                party: get_u32("rejoined")?,
                iteration: get_u("iteration")?,
            },
            "score_batch" => EventKind::ScoreBatch {
                batch: get_u32("batch")?,
                elapsed_ns: get_u("elapsed_ns")?,
            },
            "score_rejected" => EventKind::ScoreRejected {
                batch: get_u32("batch")?,
            },
            "model_reload" => EventKind::ModelReload {
                generation: get_u("generation")?,
                bytes: get_u("bytes")?,
            },
            "conn_open" => EventKind::ConnOpen {
                peer: get_u32("peer")?,
                inbound: get_b("inbound")?,
            },
            "conn_close" => EventKind::ConnClose {
                peer: get_u32("peer")?,
            },
            "conn_reaped" => EventKind::ConnReaped {
                peer: get_u32("peer")?,
                idle_ms: get_u("idle_ms")?,
            },
            "secagg_round" => EventKind::SecAggRound {
                backend: intern_backend(get_s("backend")?),
                iteration: get_u("iteration")?,
                bytes: get_u("bytes")?,
                elapsed_ns: get_u("elapsed_ns")?,
            },
            "telemetry_delta" => EventKind::TelemetryDelta {
                from: get_u32("from")?,
                iteration: get_u("iteration")?,
                span: get_u("span")?,
                frames: get_u("frames")?,
                bytes: get_u("bytes")?,
                elapsed_ns: get_u("elapsed_ns")?,
            },
            "slow_learner" => EventKind::SlowLearner {
                party: get_u32("learner")?,
                iteration: get_u("iteration")?,
                lag_ns: get_u("lag_ns")?,
                median_ns: get_u("median_ns")?,
                score: get_f("score")?,
            },
            "task_speculated" => EventKind::TaskSpeculated {
                block: get_u("block")?,
                node: get_u32("node")?,
                attempt: get_u32("attempt")?,
                elapsed_ns: get_u("elapsed_ns")?,
            },
            "worker_dead" => EventKind::WorkerDead {
                node: get_u32("node")?,
                inflight: get_u32("inflight")?,
            },
            "slow_worker" => EventKind::SlowWorker {
                node: get_u32("node")?,
                iteration: get_u("iteration")?,
                lag_ns: get_u("lag_ns")?,
                median_ns: get_u("median_ns")?,
                score: get_f("score")?,
            },
            other => return Err(ParseError::UnknownKind(other.to_string())),
        };
        Ok(Event {
            t_ns: get_u("t_ns")?,
            party: get_u32("party")?,
            kind,
        })
    }
}

/// Parses one flat JSON object: string keys, scalar values, no nesting,
/// no string escapes — exactly the grammar [`Event::to_json`] emits.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Val)>, ParseError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| bad("not a JSON object"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| bad("expected a quoted key"))?;
        let key_end = after_quote
            .find('"')
            .ok_or_else(|| bad("unterminated key"))?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..].trim_start();
        let value_str = after_key
            .strip_prefix(':')
            .ok_or_else(|| bad("expected ':' after key"))?
            .trim_start();
        let (val, remainder) = parse_scalar(value_str)?;
        fields.push((key.to_string(), val));
        rest = remainder.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            if rest.is_empty() {
                return Err(bad("trailing comma"));
            }
        } else if !rest.is_empty() {
            return Err(bad("expected ',' between fields"));
        }
    }
    Ok(fields)
}

fn parse_scalar(s: &str) -> Result<(Val, &str), ParseError> {
    if let Some(after) = s.strip_prefix('"') {
        let end = after.find('"').ok_or_else(|| bad("unterminated string"))?;
        return Ok((Val::S(after[..end].to_string()), &after[end + 1..]));
    }
    for (lit, val) in [
        ("true", Val::B(true)),
        ("false", Val::B(false)),
        ("null", Val::Null),
    ] {
        if let Some(rest) = s.strip_prefix(lit) {
            return Ok((val, rest));
        }
    }
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    let num = &s[..end];
    if num.is_empty() {
        return Err(bad(format!("expected a value at {s:?}")));
    }
    if !num.contains(['.', 'e', 'E']) {
        if let Ok(v) = num.parse::<u64>() {
            return Ok((Val::U(v), &s[end..]));
        }
        if let Ok(v) = num.parse::<i64>() {
            return Ok((Val::I(v), &s[end..]));
        }
    }
    let v: f64 = num
        .parse()
        .map_err(|_| bad(format!("bad number {num:?}")))?;
    Ok((Val::F(v), &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_copy<T: Copy>() {}

    #[test]
    fn events_are_copy_scalars() {
        // The privacy rule: events cannot carry heap payloads because the
        // type is Copy. If someone adds a Vec field this stops compiling.
        assert_copy::<Event>();
        assert_copy::<EventKind>();
    }

    fn samples() -> Vec<Event> {
        let kinds = vec![
            EventKind::FrameSent {
                to: 3,
                bytes: 220,
                retransmit: true,
            },
            EventKind::FrameRecv { from: 1, bytes: 36 },
            EventKind::FrameRejected { bytes: 12 },
            EventKind::SendTimeout { to: 2, attempts: 6 },
            EventKind::ArqRetransmit {
                to: 0,
                seq: 17,
                attempt: 2,
            },
            EventKind::DedupDrop { from: 2, seq: 5 },
            EventKind::AckDropped { to: 1, of_seq: 8 },
            EventKind::RoundOpen {
                iteration: 4,
                epoch: 1,
            },
            EventKind::RoundClose {
                iteration: 4,
                epoch: 1,
                shares: 3,
                elapsed_ns: 1_234_567,
            },
            EventKind::DeadlineMiss {
                iteration: 2,
                epoch: 0,
                missing: 1,
            },
            EventKind::Dropout {
                party: 1,
                iteration: 2,
            },
            EventKind::RekeyEpoch {
                iteration: 2,
                epoch: 1,
                survivors: 2,
            },
            EventKind::TaskAttempt {
                block: 9,
                node: 2,
                attempt: 1,
                local: false,
            },
            EventKind::WorkerUp { node: 7 },
            EventKind::WorkerDown { node: 7 },
            EventKind::BroadcastBytes {
                iteration: 3,
                bytes: 4096,
            },
            EventKind::ShuffleBytes {
                iteration: 3,
                bytes: 888,
            },
            EventKind::AdmmIteration {
                iteration: 11,
                primal_sq: 0.125,
                dual_sq: 2.5e-3,
                z_delta: 1.0e-9,
                objective: Some(431.0625),
            },
            EventKind::AdmmIteration {
                iteration: 12,
                primal_sq: 3.0,
                dual_sq: 0.5,
                z_delta: 0.25,
                objective: None,
            },
            EventKind::PhaseElapsed {
                phase: "collect",
                elapsed_ns: 987_654_321,
            },
            EventKind::RunInfo {
                run_id: 0xDEAD_BEEF_CAFE_F00D,
            },
            EventKind::ClockSync {
                peer: 2,
                offset_ns: -1_234_567_890,
                rtt_ns: 250_000,
            },
            EventKind::ClockSync {
                peer: 0,
                offset_ns: i64::MAX,
                rtt_ns: 1,
            },
            EventKind::CheckpointWrite {
                iteration: 6,
                epoch: 2,
                bytes: 1632,
            },
            EventKind::ResumeFromCheckpoint {
                iteration: 6,
                epoch: 6,
                survivors: 3,
            },
            EventKind::Rejoin {
                party: 1,
                iteration: 7,
            },
            EventKind::ScoreBatch {
                batch: 256,
                elapsed_ns: 41_000,
            },
            EventKind::ScoreRejected { batch: 16 },
            EventKind::ModelReload {
                generation: 2,
                bytes: 4_096,
            },
            EventKind::ConnOpen {
                peer: 3,
                inbound: true,
            },
            EventKind::ConnClose { peer: NO_PARTY },
            EventKind::ConnReaped {
                peer: 1,
                idle_ms: 61_250,
            },
            EventKind::SecAggRound {
                backend: "shamir",
                iteration: 9,
                bytes: 18_432,
                elapsed_ns: 2_750_000,
            },
            EventKind::TelemetryDelta {
                from: 2,
                iteration: 9,
                span: 0x9e37_79b9_7f4a_7c15,
                frames: 6,
                bytes: 4_280,
                elapsed_ns: 1_920_000,
            },
            EventKind::SlowLearner {
                party: 3,
                iteration: 9,
                lag_ns: 8_400_000,
                median_ns: 2_100_000,
                score: 4.0,
            },
            EventKind::TaskSpeculated {
                block: 4,
                node: 2,
                attempt: 2,
                elapsed_ns: 6_200_000,
            },
            EventKind::WorkerDead {
                node: 1,
                inflight: 2,
            },
            EventKind::SlowWorker {
                node: 2,
                iteration: 9,
                lag_ns: 9_300_000,
                median_ns: 3_100_000,
                score: 3.0,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                t_ns: 1000 + i as u64,
                party: i as u32,
                kind,
            })
            .collect()
    }

    #[test]
    fn json_round_trips_every_kind() {
        for event in samples() {
            let line = event.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "round trip failed for {line}");
        }
    }

    #[test]
    fn json_lines_are_single_line_flat_objects() {
        for event in samples() {
            let line = event.to_json();
            assert!(!line.contains('\n'));
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let event = Event {
            t_ns: 1,
            party: 0,
            kind: EventKind::AdmmIteration {
                iteration: 0,
                primal_sq: f64::INFINITY,
                dual_sq: 0.0,
                z_delta: 0.0,
                objective: None,
            },
        };
        let line = event.to_json();
        assert!(line.contains("\"primal_sq\":null"), "{line}");
        let back = Event::from_json(&line).expect("parseable");
        match back.kind {
            EventKind::AdmmIteration { primal_sq, .. } => assert!(primal_sq.is_nan()),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        for line in [
            "",
            "not json",
            "{\"t_ns\":1}",
            "{\"t_ns\":1,\"party\":0,\"kind\":\"dropout\"}",
            "{\"t_ns\":1,,}",
        ] {
            assert!(
                matches!(Event::from_json(line), Err(ParseError::Malformed(_))),
                "accepted or misclassified {line:?}"
            );
        }
    }

    #[test]
    fn unknown_kind_is_distinguishable_from_malformed() {
        let line = "{\"t_ns\":1,\"party\":0,\"kind\":\"quantum_teleport\",\"qubits\":3}";
        match Event::from_json(line) {
            Err(ParseError::UnknownKind(kind)) => assert_eq!(kind, "quantum_teleport"),
            other => panic!("expected UnknownKind, got {other:?}"),
        }
        // A known kind with broken fields stays Malformed — the split is
        // only about forward compatibility, not error forgiveness.
        let broken = "{\"t_ns\":1,\"party\":0,\"kind\":\"dropout\",\"dropped\":\"x\"}";
        assert!(matches!(
            Event::from_json(broken),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn parser_survives_adversarial_lines() {
        // None of these may panic; all must return an error (or, for the
        // in-range ones, a value) without slicing mid-codepoint.
        for adversarial in [
            // Truncated mid-object / mid-string / mid-number.
            "{\"t_ns\":1,\"party\":0,\"kind\":\"frame_recv\",\"from\":1,\"bytes\":",
            "{\"t_ns\":1,\"party\":0,\"kind\":\"frame_re",
            "{\"t_ns\":1,\"party\":0,\"kind",
            "{",
            "}",
            // Multi-byte UTF-8 inside keys and values (parser is byte-
            // oriented; must not panic on char boundaries).
            "{\"t_ns\":1,\"party\":0,\"kind\":\"дропаут\"}",
            "{\"t_ёns\":1,\"party\":0,\"kind\":\"dropout\"}",
            "{\"t_ns\":1,\"party\":0,\"kind\":\"phase_elapsed\",\"phase\":\"蛙🐸\",\"elapsed_ns\":1}",
            // Absurd numerics: overflow u64, overflow i64, huge exponents,
            // bare signs, leading-plus.
            "{\"t_ns\":99999999999999999999999999,\"party\":0,\"kind\":\"worker_up\",\"node\":1}",
            "{\"t_ns\":1,\"party\":-3,\"kind\":\"worker_up\",\"node\":1}",
            "{\"t_ns\":1,\"party\":0,\"kind\":\"clock_sync\",\"peer\":1,\
             \"offset_ns\":-99999999999999999999,\"rtt_ns\":1}",
            "{\"t_ns\":1e400,\"party\":0,\"kind\":\"worker_up\",\"node\":1}",
            "{\"t_ns\":+,\"party\":0,\"kind\":\"worker_up\",\"node\":1}",
            "{\"t_ns\":1,\"party\":0,\"kind\":\"frame_recv\",\"from\":4294967296,\"bytes\":1}",
            // Structural noise.
            "[1,2,3]",
            "{\"a\"\"b\":1}",
            "{\"a\":}",
            "{\"t_ns\":1,\"party\":0,\"kind\":\"worker_up\",\"node\":1}}",
        ] {
            // from_json must be total: Ok or Err, never a panic.
            let _ = Event::from_json(adversarial);
        }
        // A couple of those are actually malformed in a way we want to
        // classify precisely.
        assert!(matches!(
            Event::from_json("{\"t_ns\":1,\"party\":0,\"kind\":\"дропаут\"}"),
            Err(ParseError::UnknownKind(_))
        ));
        assert!(matches!(
            Event::from_json(
                "{\"t_ns\":1,\"party\":0,\"kind\":\"frame_recv\",\"from\":4294967296,\"bytes\":1}"
            ),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn negative_integers_parse_via_signed_path() {
        let line = "{\"t_ns\":9,\"party\":3,\"kind\":\"clock_sync\",\
                    \"peer\":1,\"offset_ns\":-42,\"rtt_ns\":7}";
        let event = Event::from_json(line).expect("parseable");
        assert_eq!(
            event.kind,
            EventKind::ClockSync {
                peer: 1,
                offset_ns: -42,
                rtt_ns: 7
            }
        );
    }

    #[test]
    fn unknown_phase_labels_intern_to_other() {
        let line = "{\"t_ns\":5,\"party\":0,\"kind\":\"phase_elapsed\",\
                    \"phase\":\"exotic\",\"elapsed_ns\":7}";
        let event = Event::from_json(line).expect("parseable");
        assert_eq!(
            event.kind,
            EventKind::PhaseElapsed {
                phase: "other",
                elapsed_ns: 7
            }
        );
    }

    #[test]
    fn unknown_backend_labels_intern_to_other() {
        let line = "{\"t_ns\":5,\"party\":0,\"kind\":\"secagg_round\",\
                    \"backend\":\"quantum\",\"iteration\":1,\"bytes\":2,\
                    \"elapsed_ns\":3}";
        let event = Event::from_json(line).expect("parseable");
        assert_eq!(
            event.kind,
            EventKind::SecAggRound {
                backend: "other",
                iteration: 1,
                bytes: 2,
                elapsed_ns: 3
            }
        );
    }
}
