//! Structured events and span timings for the distributed ADMM stack
//! (ISSUE 3 tentpole).
//!
//! The paper's experiments (§VI) are all *per-iteration* claims — ADMM
//! residual decay, communication volume, iteration wall clock — but a
//! distributed run is opaque once it leaves one address space. This crate
//! is the observability layer: every interesting moment (a frame on the
//! wire, a retransmission, a round deadline, a dropout verdict, a re-key
//! epoch, an ADMM step) becomes a typed [`Event`] delivered to whatever
//! [`Sink`] the process installed.
//!
//! # Design rules
//!
//! * **Free when off.** The instrumented hot paths call [`emit`], which
//!   is one relaxed atomic load when no sink is installed — no lock, no
//!   allocation, no timestamp. Installing a sink is what turns the
//!   machinery on.
//! * **Privacy by type.** [`Event`] is `Copy` and holds scalars only:
//!   sizes, timings, counts, epochs, party ids, aggregate norms. Raw
//!   shares, masks and model coordinates are *unrepresentable* — a `Vec`
//!   field would break the `Copy` bound — so instrumentation cannot leak
//!   what the §V threat model protects, by construction rather than by
//!   review. See [`event`] for the full argument.
//! * **Std only.** Matching the workspace's `--offline` constraint: no
//!   external crates, JSONL encoding and parsing are hand-rolled.
//!
//! # Sinks
//!
//! * [`RingSink`] — bounded in-memory ring, queryable from tests;
//! * [`JsonlSink`] — one JSON object per line, machine-parseable with
//!   [`Event::from_json`] (the `--telemetry <path>` flag of the
//!   coordinator/learner binaries writes this);
//! * [`SummarySink`] — O(1) accumulators rendering an end-of-run human
//!   summary (per-phase wall clock, byte totals, retransmit rate,
//!   dropout timeline);
//! * [`FanoutSink`] — duplicates events to several sinks.
//!
//! # Example
//!
//! ```
//! use ppml_telemetry as telemetry;
//! use telemetry::{EventKind, RingSink};
//!
//! let ring = RingSink::new(64);
//! telemetry::install(ring.clone());
//! telemetry::emit(0, EventKind::RoundOpen { iteration: 0, epoch: 0 });
//! telemetry::uninstall();
//! assert_eq!(ring.snapshot().len(), 1);
//! // With no sink installed, emit is a no-op costing one atomic load.
//! telemetry::emit(0, EventKind::RoundOpen { iteration: 1, epoch: 0 });
//! assert_eq!(ring.recorded(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod event;
pub mod http;
pub mod metrics;
pub mod sinks;

pub use cluster::{mix64, ClusterDelta, ClusterRegistry, StragglerVerdict};
pub use event::{Event, EventKind, ParseError, BACKENDS, NO_PARTY, PHASES};
pub use http::{request, scrape, HttpServer, MetricsServer, Request, Response, Router};
pub use metrics::{MetricsRegistry, MetricsSink};
pub use sinks::{FanoutSink, JsonlSink, RingSink, Sink, SummarySink};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Fast-path gate: true while a sink is installed. Relaxed is enough —
/// an emitter racing an install/uninstall may miss or catch the
/// boundary event, which is inherent to toggling telemetry at runtime.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink. Only touched when [`ENABLED`] says so, or by
/// [`install`]/[`uninstall`] themselves.
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

/// Process-local monotonic epoch; first call to [`now_ns`] pins it.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether a sink is installed. Instrumented code may use this to skip
/// *computing* event fields (e.g. an objective evaluation) — [`emit`]
/// already checks it internally.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the process telemetry epoch.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Mints a run identifier for [`EventKind::RunInfo`]: wall clock ⊕ pid,
/// finalized through SplitMix64 so distinct runs collide with
/// negligible probability. Never returns 0 (0 means "unknown" in the
/// metrics registry).
pub fn fresh_run_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    let mut z = nanos ^ (u64::from(std::process::id()) << 32);
    // SplitMix64 finalization round.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.max(1)
}

/// Records an event if a sink is installed; otherwise a single relaxed
/// atomic load and return — no allocation, no lock, no clock read.
#[inline]
pub fn emit(party: u32, kind: EventKind) {
    if enabled() {
        emit_enabled(party, kind);
    }
}

#[cold]
fn emit_enabled(party: u32, kind: EventKind) {
    let event = Event {
        t_ns: now_ns(),
        party,
        kind,
    };
    let sink = SINK.lock().expect("telemetry sink registry").clone();
    if let Some(sink) = sink {
        sink.record(event);
    }
}

/// Installs `sink` as the process-wide event destination and enables
/// the instrumented paths. Replaces any previously installed sink.
pub fn install(sink: Arc<dyn Sink>) {
    *SINK.lock().expect("telemetry sink registry") = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables telemetry, flushes any buffering sink, and returns the sink
/// that was installed so the caller can render it.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    ENABLED.store(false, Ordering::SeqCst);
    let sink = SINK.lock().expect("telemetry sink registry").take();
    if let Some(sink) = &sink {
        sink.flush();
    }
    sink
}

/// A scoped phase timer: captures the clock at [`Span::begin`] when
/// telemetry is enabled and emits [`EventKind::PhaseElapsed`] when
/// dropped. When telemetry is disabled at `begin` the span holds
/// nothing and drops for free.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    party: u32,
    phase: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts timing `phase` for `party` (use [`NO_PARTY`] off-protocol).
    pub fn begin(party: u32, phase: &'static str) -> Self {
        Span {
            party,
            phase,
            start: enabled().then(Instant::now),
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            emit(
                self.party,
                EventKind::PhaseElapsed {
                    phase: self.phase,
                    elapsed_ns: start.elapsed().as_nanos() as u64,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests that install sinks take
    /// this lock so they cannot observe each other's events.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn emit_reaches_installed_sink_and_stops_after_uninstall() {
        let _guard = SERIAL.lock().expect("serial");
        let ring = RingSink::new(16);
        install(ring.clone());
        emit(3, EventKind::WorkerUp { node: 3 });
        assert!(enabled());
        let taken = uninstall().expect("a sink was installed");
        emit(3, EventKind::WorkerDown { node: 3 });
        assert!(!enabled());
        assert_eq!(ring.recorded(), 1);
        assert_eq!(ring.snapshot()[0].kind, EventKind::WorkerUp { node: 3 },);
        // The returned handle is the same sink.
        taken.record(Event {
            t_ns: 0,
            party: 0,
            kind: EventKind::WorkerDown { node: 3 },
        });
        assert_eq!(ring.recorded(), 2);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn span_emits_elapsed_on_drop() {
        let _guard = SERIAL.lock().expect("serial");
        let ring = RingSink::new(16);
        install(ring.clone());
        {
            let _span = Span::begin(7, "collect");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        uninstall();
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        match events[0].kind {
            EventKind::PhaseElapsed { phase, elapsed_ns } => {
                assert_eq!(phase, "collect");
                assert!(elapsed_ns >= 1_000_000, "{elapsed_ns}");
            }
            other => panic!("wrong kind {other:?}"),
        }
        assert_eq!(events[0].party, 7);
    }

    #[test]
    fn span_started_while_disabled_emits_nothing() {
        let _guard = SERIAL.lock().expect("serial");
        uninstall();
        let span = Span::begin(0, "train");
        let ring = RingSink::new(4);
        install(ring.clone());
        drop(span); // began disabled → stays silent even though enabled now
        uninstall();
        assert_eq!(ring.recorded(), 0);
    }
}
