//! Fixed-capacity metrics registry and the [`MetricsSink`] that feeds it
//! (ISSUE 4 tentpole, piece 1).
//!
//! Everything here is a plain atomic: counters, gauges, and log2-bucketed
//! histograms with a *fixed* 65-slot bucket array. Recording an event
//! touches a handful of relaxed atomics and never allocates, so the sink
//! obeys the same "free when off, cheap when on" discipline as
//! [`crate::emit`] itself. The registry holds only the scalars the event
//! vocabulary already exposes — sizes, timings, counts, epochs, aggregate
//! residual norms — so rendering it (see [`MetricsSink::render`]) cannot
//! leak anything the §V threat model protects: shares, masks and model
//! coordinates are unrepresentable upstream of it.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{Event, EventKind, BACKENDS, PHASES};
use crate::sinks::Sink;

/// Number of histogram buckets: one for zero, one per power-of-two
/// magnitude of a `u64` (the last holds `2^63 ..= u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maps a value to its bucket: 0 for 0, else `64 − leading_zeros(v)`,
/// i.e. bucket `i ≥ 1` holds `2^(i−1) ..= 2^i − 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label value).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`, saturating at `u64::MAX`. A long-lived serve process
    /// must never wrap a counter: Prometheus clients treat a decrease as
    /// a process restart, and a wrapped value renders as a bogus small
    /// number. The CAS loop costs the same one atomic RMW as `fetch_add`
    /// until the counter actually pins.
    #[inline]
    pub fn add(&self, v: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed last-value gauge.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An unsigned last-value gauge (run ids, epochs — values that do not
/// fit a meaningful sign).
#[derive(Default)]
pub struct UintGauge(AtomicU64);

impl UintGauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for aggregate floating-point diagnostics (stored
/// as raw bits in an `AtomicU64`).
pub struct FloatGauge(AtomicU64);

impl Default for FloatGauge {
    fn default() -> Self {
        FloatGauge(AtomicU64::new(f64::NAN.to_bits()))
    }
}

impl FloatGauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (`NaN` until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram over `u64` observations: fixed 65-slot
/// bucket array, running count and sum, all relaxed atomics — observing
/// is a few `fetch_add`s and never allocates.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow, like Prometheus
    /// counters).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Observations landed in bucket `i` (non-cumulative).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    fn highest_bucket(&self) -> Option<usize> {
        (0..HISTOGRAM_BUCKETS).rev().find(|&i| self.bucket(i) > 0)
    }
}

/// The fixed field set populated from the [`EventKind`] stream. Every
/// member is named after the Prometheus family it renders as (minus the
/// `ppml_` prefix).
#[derive(Default)]
pub struct MetricsRegistry {
    // ---- wire
    /// Frames put on the wire ([`EventKind::FrameSent`]).
    pub frames_sent_total: Counter,
    /// Well-formed frames received ([`EventKind::FrameRecv`]).
    pub frames_recv_total: Counter,
    /// Undecodable byte runs discarded ([`EventKind::FrameRejected`]).
    pub frames_rejected_total: Counter,
    /// Encoded bytes sent (per-attempt, retransmits included).
    pub bytes_sent_total: Counter,
    /// Encoded bytes received.
    pub bytes_recv_total: Counter,
    /// ARQ retransmissions ([`EventKind::ArqRetransmit`]).
    pub retransmits_total: Counter,
    /// Duplicate deliveries dropped ([`EventKind::DedupDrop`]).
    pub dedup_drops_total: Counter,
    /// Acknowledgements dropped because the peer vanished
    /// ([`EventKind::AckDropped`]).
    pub acks_dropped_total: Counter,
    /// Sends that exhausted their retry budget.
    pub send_timeouts_total: Counter,
    /// Encoded frame sizes, sent and received.
    pub frame_bytes: Histogram,
    /// ARQ retransmission attempt numbers (1-based).
    pub retransmit_attempts: Histogram,
    // ---- protocol rounds
    /// Rounds opened.
    pub rounds_opened_total: Counter,
    /// Rounds closed.
    pub rounds_closed_total: Counter,
    /// Round open→close wall clock.
    pub round_latency_ns: Histogram,
    /// Collection deadlines that expired with shares missing.
    pub deadline_misses_total: Counter,
    /// Learners declared dropped.
    pub dropouts_total: Counter,
    /// Secure-sum re-keys performed.
    pub rekeys_total: Counter,
    /// Re-key epoch currently in force.
    pub rekey_epoch: UintGauge,
    /// Survivor count after the last re-key.
    pub survivors: Gauge,
    /// Highest round number seen (open or close).
    pub last_round: UintGauge,
    // ---- cluster
    /// Map-task attempts.
    pub task_attempts_total: Counter,
    /// Data-local map-task attempts.
    pub local_tasks_total: Counter,
    /// Cluster workers currently up (up minus down).
    pub workers: Gauge,
    /// Framed broadcast bytes charged.
    pub broadcast_bytes_total: Counter,
    /// Framed shuffle bytes charged.
    pub shuffle_bytes_total: Counter,
    // ---- trainer diagnostics (aggregate norms only — see module docs)
    /// ADMM iterations observed.
    pub admm_iterations_total: Counter,
    /// Latest primal residual `Σ_m ‖x_m − z‖²`.
    pub admm_primal_sq: FloatGauge,
    /// Latest dual residual `ρ²·M·‖Δz‖²`.
    pub admm_dual_sq: FloatGauge,
    /// Latest consensus movement `‖Δz‖²`.
    pub admm_z_delta: FloatGauge,
    /// Latest primal objective (NaN when the trainer does not report it).
    pub admm_objective: FloatGauge,
    /// Consensus movement per iteration, in nano-units (`⌊‖Δz‖²·1e9⌋`),
    /// log2-bucketed so residual decay is visible from a scrape alone.
    pub admm_z_delta_nanos: Histogram,
    // ---- phases
    /// Per-phase wall clock, indexed like [`PHASES`].
    pub phase_ns: [Histogram; PHASES.len()],
    // ---- identity & correlation
    /// Events recorded by this registry.
    pub events_total: Counter,
    /// Run id gossiped by the coordinator (0 until known).
    pub run_id: UintGauge,
    /// Protocol party of this process (−1 until set by the host binary).
    pub party: Gauge,
    /// Clock-offset handshakes completed.
    pub clock_syncs_total: Counter,
    /// Last estimated peer clock offset, nanoseconds.
    pub clock_offset_ns: Gauge,
    /// RTT of the winning probe per handshake.
    pub clock_sync_rtt_ns: Histogram,
    // ---- recovery
    /// Durable checkpoints written ([`EventKind::CheckpointWrite`]).
    pub checkpoints_total: Counter,
    /// Encoded size of the last checkpoint on disk.
    pub checkpoint_bytes: UintGauge,
    /// Coordinator resumes from a checkpoint.
    pub resumes_total: Counter,
    /// Learners re-admitted mid-run ([`EventKind::Rejoin`]).
    pub rejoins_total: Counter,
    // ---- serving
    /// Scoring batches answered ([`EventKind::ScoreBatch`]).
    pub score_requests_total: Counter,
    /// Rows scored across all batches.
    pub score_rows_total: Counter,
    /// Scoring batches rejected ([`EventKind::ScoreRejected`]).
    pub score_rejected_total: Counter,
    /// Rows per scoring batch.
    pub score_batch_size: Histogram,
    /// Per-batch scoring wall clock (p50/p99 come from the buckets).
    pub score_latency_ns: Histogram,
    /// Model (re)loads performed ([`EventKind::ModelReload`]).
    pub model_reloads_total: Counter,
    /// Generation of the model currently serving (1 = startup load).
    pub model_generation: UintGauge,
    /// Encoded size of the model currently serving.
    pub model_bytes: UintGauge,
    // ---- connection lifecycle
    /// Connections registered ([`EventKind::ConnOpen`]).
    pub conns_opened_total: Counter,
    /// Connections closed ([`EventKind::ConnClose`]).
    pub conns_closed_total: Counter,
    /// Connections reaped by the idle deadline ([`EventKind::ConnReaped`]).
    pub conns_reaped_total: Counter,
    /// Connections currently registered (opened minus closed/reaped).
    pub conns_open: Gauge,
    // ---- secure aggregation
    /// Aggregation rounds completed per backend (indexed like [`BACKENDS`]).
    pub secagg_rounds_total: [Counter; BACKENDS.len()],
    /// Aggregation bytes moved per backend (indexed like [`BACKENDS`]).
    pub secagg_bytes_total: [Counter; BACKENDS.len()],
    /// Per-round aggregation wall clock per backend (indexed like
    /// [`BACKENDS`]).
    pub secagg_round_ns: [Histogram; BACKENDS.len()],
    // ---- cluster observability (ISSUE 9)
    /// In-band telemetry deltas folded ([`EventKind::TelemetryDelta`]).
    pub telemetry_deltas_total: Counter,
    /// Straggler verdicts emitted ([`EventKind::SlowLearner`]).
    pub slow_learners_total: Counter,
    /// Collect lag of the last flagged straggler.
    pub straggler_lag_ns: Histogram,
    // ---- fault-tolerant scheduling (ISSUE 10)
    /// Speculative duplicate attempts launched
    /// ([`EventKind::TaskSpeculated`]).
    pub task_speculations_total: Counter,
    /// Workers declared dead mid-job ([`EventKind::WorkerDead`]).
    pub worker_deaths_total: Counter,
    /// Task-attempt straggler verdicts emitted
    /// ([`EventKind::SlowWorker`]).
    pub slow_workers_total: Counter,
    /// Attempt wall clock of flagged slow workers.
    pub task_straggler_lag_ns: Histogram,
}

impl MetricsRegistry {
    /// An empty registry; `party` starts at −1 and float gauges at NaN.
    pub fn new() -> Self {
        let registry = MetricsRegistry::default();
        registry.party.set(-1);
        registry
    }

    fn phase_slot(&self, phase: &str) -> &Histogram {
        let idx = PHASES
            .iter()
            .position(|&p| p == phase)
            .unwrap_or(PHASES.len() - 1);
        &self.phase_ns[idx]
    }

    /// Folds one event into the registry. A fixed number of relaxed
    /// atomic operations; no locks, no allocation.
    pub fn record(&self, event: Event) {
        self.events_total.inc();
        match event.kind {
            EventKind::FrameSent {
                bytes, retransmit, ..
            } => {
                self.frames_sent_total.inc();
                self.bytes_sent_total.add(bytes);
                self.frame_bytes.observe(bytes);
                let _ = retransmit; // per-attempt detail lives in retransmits_total
            }
            EventKind::FrameRecv { bytes, .. } => {
                self.frames_recv_total.inc();
                self.bytes_recv_total.add(bytes);
                self.frame_bytes.observe(bytes);
            }
            EventKind::FrameRejected { .. } => self.frames_rejected_total.inc(),
            EventKind::SendTimeout { .. } => self.send_timeouts_total.inc(),
            EventKind::ArqRetransmit { attempt, .. } => {
                self.retransmits_total.inc();
                self.retransmit_attempts.observe(attempt.into());
            }
            EventKind::DedupDrop { .. } => self.dedup_drops_total.inc(),
            EventKind::AckDropped { .. } => self.acks_dropped_total.inc(),
            EventKind::RoundOpen { iteration, .. } => {
                self.rounds_opened_total.inc();
                self.last_round.set(iteration);
            }
            EventKind::RoundClose {
                iteration,
                elapsed_ns,
                ..
            } => {
                self.rounds_closed_total.inc();
                self.round_latency_ns.observe(elapsed_ns);
                self.last_round.set(iteration);
            }
            EventKind::DeadlineMiss { .. } => self.deadline_misses_total.inc(),
            EventKind::Dropout { .. } => self.dropouts_total.inc(),
            EventKind::RekeyEpoch {
                epoch, survivors, ..
            } => {
                self.rekeys_total.inc();
                self.rekey_epoch.set(epoch);
                self.survivors.set(survivors.into());
            }
            EventKind::TaskAttempt { local, .. } => {
                self.task_attempts_total.inc();
                if local {
                    self.local_tasks_total.inc();
                }
            }
            EventKind::WorkerUp { .. } => self.workers.add(1),
            EventKind::WorkerDown { .. } => self.workers.add(-1),
            EventKind::BroadcastBytes { bytes, .. } => self.broadcast_bytes_total.add(bytes),
            EventKind::ShuffleBytes { bytes, .. } => self.shuffle_bytes_total.add(bytes),
            EventKind::AdmmIteration {
                primal_sq,
                dual_sq,
                z_delta,
                objective,
                ..
            } => {
                self.admm_iterations_total.inc();
                self.admm_primal_sq.set(primal_sq);
                self.admm_dual_sq.set(dual_sq);
                self.admm_z_delta.set(z_delta);
                if let Some(obj) = objective {
                    self.admm_objective.set(obj);
                }
                if z_delta.is_finite() && z_delta >= 0.0 {
                    // Saturating f64→u64; ⌊‖Δz‖²·1e9⌋ keeps sub-unit decay
                    // visible in integer buckets.
                    self.admm_z_delta_nanos.observe((z_delta * 1e9) as u64);
                }
            }
            EventKind::PhaseElapsed { phase, elapsed_ns } => {
                self.phase_slot(phase).observe(elapsed_ns);
            }
            EventKind::RunInfo { run_id } => self.run_id.set(run_id),
            EventKind::ClockSync {
                offset_ns, rtt_ns, ..
            } => {
                self.clock_syncs_total.inc();
                self.clock_offset_ns.set(offset_ns);
                self.clock_sync_rtt_ns.observe(rtt_ns);
            }
            EventKind::CheckpointWrite { bytes, .. } => {
                self.checkpoints_total.inc();
                self.checkpoint_bytes.set(bytes);
            }
            EventKind::ResumeFromCheckpoint {
                epoch, survivors, ..
            } => {
                self.resumes_total.inc();
                self.rekey_epoch.set(epoch);
                self.survivors.set(survivors.into());
            }
            EventKind::Rejoin { .. } => self.rejoins_total.inc(),
            EventKind::ScoreBatch { batch, elapsed_ns } => {
                self.score_requests_total.inc();
                self.score_rows_total.add(batch.into());
                self.score_batch_size.observe(batch.into());
                self.score_latency_ns.observe(elapsed_ns);
            }
            EventKind::ScoreRejected { .. } => self.score_rejected_total.inc(),
            EventKind::ModelReload { generation, bytes } => {
                self.model_reloads_total.inc();
                self.model_generation.set(generation);
                self.model_bytes.set(bytes);
            }
            EventKind::ConnOpen { .. } => {
                self.conns_opened_total.inc();
                self.conns_open.add(1);
            }
            EventKind::ConnClose { .. } => {
                self.conns_closed_total.inc();
                self.conns_open.add(-1);
            }
            EventKind::ConnReaped { .. } => {
                self.conns_reaped_total.inc();
                self.conns_open.add(-1);
            }
            EventKind::SecAggRound {
                backend,
                bytes,
                elapsed_ns,
                ..
            } => {
                let idx = BACKENDS
                    .iter()
                    .position(|&b| b == backend)
                    .unwrap_or(BACKENDS.len() - 1);
                self.secagg_rounds_total[idx].inc();
                self.secagg_bytes_total[idx].add(bytes);
                self.secagg_round_ns[idx].observe(elapsed_ns);
            }
            EventKind::TelemetryDelta { .. } => self.telemetry_deltas_total.inc(),
            EventKind::SlowLearner { lag_ns, .. } => {
                self.slow_learners_total.inc();
                self.straggler_lag_ns.observe(lag_ns);
            }
            EventKind::TaskSpeculated { .. } => self.task_speculations_total.inc(),
            EventKind::WorkerDead { .. } => {
                self.worker_deaths_total.inc();
                self.workers.add(-1);
            }
            EventKind::SlowWorker { lag_ns, .. } => {
                self.slow_workers_total.inc();
                self.task_straggler_lag_ns.observe(lag_ns);
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`). Renders registry scalars only —
    /// nothing else is reachable from here, which is the privacy
    /// argument for serving this over HTTP (see DESIGN.md §9).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let c = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE ppml_{name} counter\nppml_{name} {v}");
        };
        let g = |out: &mut String, name: &str, v: i64| {
            let _ = writeln!(out, "# TYPE ppml_{name} gauge\nppml_{name} {v}");
        };
        let gu = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE ppml_{name} gauge\nppml_{name} {v}");
        };
        let gf = |out: &mut String, name: &str, v: f64| {
            let _ = writeln!(out, "# TYPE ppml_{name} gauge\nppml_{name} {v}");
        };
        let h = |out: &mut String, name: &str, labels: &str, hist: &Histogram| {
            let _ = writeln!(out, "# TYPE ppml_{name} histogram");
            let sep = if labels.is_empty() { "" } else { "," };
            let mut cumulative = 0u64;
            if let Some(top) = hist.highest_bucket() {
                for i in 0..=top {
                    cumulative += hist.bucket(i);
                    let le = bucket_upper_bound(i);
                    let _ = writeln!(
                        out,
                        "ppml_{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "ppml_{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
                hist.count()
            );
            let _ = writeln!(out, "ppml_{name}_sum{{{labels}}} {}", hist.sum());
            let _ = writeln!(out, "ppml_{name}_count{{{labels}}} {}", hist.count());
        };

        gu(&mut out, "run_id", self.run_id.get());
        g(&mut out, "party", self.party.get());
        c(&mut out, "events_total", self.events_total.get());

        c(&mut out, "frames_sent_total", self.frames_sent_total.get());
        c(&mut out, "frames_recv_total", self.frames_recv_total.get());
        c(
            &mut out,
            "frames_rejected_total",
            self.frames_rejected_total.get(),
        );
        c(&mut out, "bytes_sent_total", self.bytes_sent_total.get());
        c(&mut out, "bytes_recv_total", self.bytes_recv_total.get());
        c(&mut out, "retransmits_total", self.retransmits_total.get());
        c(&mut out, "dedup_drops_total", self.dedup_drops_total.get());
        c(
            &mut out,
            "acks_dropped_total",
            self.acks_dropped_total.get(),
        );
        c(
            &mut out,
            "send_timeouts_total",
            self.send_timeouts_total.get(),
        );
        h(&mut out, "frame_bytes", "", &self.frame_bytes);
        h(
            &mut out,
            "retransmit_attempts",
            "",
            &self.retransmit_attempts,
        );

        c(
            &mut out,
            "rounds_opened_total",
            self.rounds_opened_total.get(),
        );
        c(
            &mut out,
            "rounds_closed_total",
            self.rounds_closed_total.get(),
        );
        h(&mut out, "round_latency_ns", "", &self.round_latency_ns);
        c(
            &mut out,
            "deadline_misses_total",
            self.deadline_misses_total.get(),
        );
        c(&mut out, "dropouts_total", self.dropouts_total.get());
        c(&mut out, "rekeys_total", self.rekeys_total.get());
        gu(&mut out, "rekey_epoch", self.rekey_epoch.get());
        g(&mut out, "survivors", self.survivors.get());
        gu(&mut out, "last_round", self.last_round.get());

        c(
            &mut out,
            "task_attempts_total",
            self.task_attempts_total.get(),
        );
        c(&mut out, "local_tasks_total", self.local_tasks_total.get());
        g(&mut out, "workers", self.workers.get());
        c(
            &mut out,
            "broadcast_bytes_total",
            self.broadcast_bytes_total.get(),
        );
        c(
            &mut out,
            "shuffle_bytes_total",
            self.shuffle_bytes_total.get(),
        );

        c(
            &mut out,
            "admm_iterations_total",
            self.admm_iterations_total.get(),
        );
        gf(&mut out, "admm_primal_sq", self.admm_primal_sq.get());
        gf(&mut out, "admm_dual_sq", self.admm_dual_sq.get());
        gf(&mut out, "admm_z_delta", self.admm_z_delta.get());
        gf(&mut out, "admm_objective", self.admm_objective.get());
        h(&mut out, "admm_z_delta_nanos", "", &self.admm_z_delta_nanos);

        let _ = writeln!(out, "# TYPE ppml_phase_ns histogram");
        for (idx, phase) in PHASES.iter().enumerate() {
            let hist = &self.phase_ns[idx];
            if hist.count() == 0 {
                continue;
            }
            let labels = format!("phase=\"{phase}\"");
            let mut cumulative = 0u64;
            if let Some(top) = hist.highest_bucket() {
                for i in 0..=top {
                    cumulative += hist.bucket(i);
                    let le = bucket_upper_bound(i);
                    let _ = writeln!(
                        out,
                        "ppml_phase_ns_bucket{{{labels},le=\"{le}\"}} {cumulative}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "ppml_phase_ns_bucket{{{labels},le=\"+Inf\"}} {}",
                hist.count()
            );
            let _ = writeln!(out, "ppml_phase_ns_sum{{{labels}}} {}", hist.sum());
            let _ = writeln!(out, "ppml_phase_ns_count{{{labels}}} {}", hist.count());
        }

        c(&mut out, "clock_syncs_total", self.clock_syncs_total.get());
        g(&mut out, "clock_offset_ns", self.clock_offset_ns.get());
        h(&mut out, "clock_sync_rtt_ns", "", &self.clock_sync_rtt_ns);

        c(&mut out, "checkpoints_total", self.checkpoints_total.get());
        gu(&mut out, "checkpoint_bytes", self.checkpoint_bytes.get());
        c(&mut out, "resumes_total", self.resumes_total.get());
        c(&mut out, "rejoins_total", self.rejoins_total.get());

        c(
            &mut out,
            "score_requests_total",
            self.score_requests_total.get(),
        );
        c(&mut out, "score_rows_total", self.score_rows_total.get());
        c(
            &mut out,
            "score_rejected_total",
            self.score_rejected_total.get(),
        );
        h(&mut out, "score_batch_size", "", &self.score_batch_size);
        h(&mut out, "score_latency_ns", "", &self.score_latency_ns);
        c(
            &mut out,
            "model_reloads_total",
            self.model_reloads_total.get(),
        );
        gu(&mut out, "model_generation", self.model_generation.get());
        gu(&mut out, "model_bytes", self.model_bytes.get());

        c(
            &mut out,
            "conns_opened_total",
            self.conns_opened_total.get(),
        );
        c(
            &mut out,
            "conns_closed_total",
            self.conns_closed_total.get(),
        );
        c(
            &mut out,
            "conns_reaped_total",
            self.conns_reaped_total.get(),
        );
        g(&mut out, "conns_open", self.conns_open.get());

        let _ = writeln!(out, "# TYPE ppml_secagg_rounds_total counter");
        let _ = writeln!(out, "# TYPE ppml_secagg_bytes_total counter");
        for (idx, backend) in BACKENDS.iter().enumerate() {
            let rounds = self.secagg_rounds_total[idx].get();
            if rounds == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "ppml_secagg_rounds_total{{backend=\"{backend}\"}} {rounds}"
            );
            let _ = writeln!(
                out,
                "ppml_secagg_bytes_total{{backend=\"{backend}\"}} {}",
                self.secagg_bytes_total[idx].get()
            );
        }
        let _ = writeln!(out, "# TYPE ppml_secagg_round_ns histogram");
        for (idx, backend) in BACKENDS.iter().enumerate() {
            let hist = &self.secagg_round_ns[idx];
            if hist.count() == 0 {
                continue;
            }
            let labels = format!("backend=\"{backend}\"");
            let mut cumulative = 0u64;
            if let Some(top) = hist.highest_bucket() {
                for i in 0..=top {
                    cumulative += hist.bucket(i);
                    let le = bucket_upper_bound(i);
                    let _ = writeln!(
                        out,
                        "ppml_secagg_round_ns_bucket{{{labels},le=\"{le}\"}} {cumulative}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "ppml_secagg_round_ns_bucket{{{labels},le=\"+Inf\"}} {}",
                hist.count()
            );
            let _ = writeln!(out, "ppml_secagg_round_ns_sum{{{labels}}} {}", hist.sum());
            let _ = writeln!(
                out,
                "ppml_secagg_round_ns_count{{{labels}}} {}",
                hist.count()
            );
        }

        c(
            &mut out,
            "telemetry_deltas_total",
            self.telemetry_deltas_total.get(),
        );
        c(
            &mut out,
            "slow_learners_total",
            self.slow_learners_total.get(),
        );
        h(&mut out, "straggler_lag_ns", "", &self.straggler_lag_ns);

        c(
            &mut out,
            "task_speculations_total",
            self.task_speculations_total.get(),
        );
        c(
            &mut out,
            "worker_deaths_total",
            self.worker_deaths_total.get(),
        );
        c(
            &mut out,
            "slow_workers_total",
            self.slow_workers_total.get(),
        );
        h(
            &mut out,
            "task_straggler_lag_ns",
            "",
            &self.task_straggler_lag_ns,
        );

        out
    }
}

/// A [`Sink`] folding every event into a shared [`MetricsRegistry`] —
/// install it (alone or in a fanout) and hand the same `Arc` to the
/// exposition server.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
}

impl MetricsSink {
    /// A sink over a fresh registry.
    pub fn new() -> Arc<Self> {
        MetricsSink::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// A sink over an existing registry (to share with a server).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Arc<Self> {
        Arc::new(MetricsSink { registry })
    }

    /// The registry this sink populates.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Renders the registry — see [`MetricsRegistry::render`].
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Sink for MetricsSink {
    fn record(&self, event: Event) {
        self.registry.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_PARTY;

    fn event(kind: EventKind) -> Event {
        Event {
            t_ns: 1,
            party: 0,
            kind,
        }
    }

    #[test]
    fn bucket_boundaries_at_zero_powers_of_two_and_max() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Each power of two opens a new bucket; its predecessor closes one.
        for k in 1..64 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Consistency: every value is ≤ its bucket's upper bound and >
        // the previous bucket's.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v}");
            }
        }
    }

    #[test]
    fn counter_add_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        // One past the top must pin, not wrap to 0 (a wrapped counter
        // reads as a restart to Prometheus clients).
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_exposition_le_buckets_are_monotonic() {
        let reg = MetricsRegistry::new();
        // Spread observations across several buckets including the edges.
        for v in [0u64, 1, 2, 127, 128, 1023, u64::MAX] {
            reg.frame_bytes.observe(v);
        }
        let text = reg.render();
        let mut last_le = -1i128;
        let mut last_cum = 0u64;
        let mut lines = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("ppml_frame_bytes_bucket{le=\"") else {
                continue;
            };
            lines += 1;
            let (le_str, cum_str) = rest.split_once("\"} ").expect("bucket line shape");
            let cum: u64 = cum_str.parse().expect("cumulative count");
            let le: i128 = if le_str == "+Inf" {
                i128::MAX
            } else {
                le_str.parse().expect("le bound")
            };
            assert!(le > last_le, "le not increasing: {line}");
            assert!(cum >= last_cum, "cumulative count decreased: {line}");
            last_le = le;
            last_cum = cum;
        }
        assert!(lines >= 4, "expected several bucket lines:\n{text}");
        assert_eq!(last_cum, 7, "+Inf bucket must equal the total count");
        // The exact-edge observations land under their documented bounds.
        assert!(
            text.contains("ppml_frame_bytes_bucket{le=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppml_frame_bytes_bucket{le=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains(&format!("ppml_frame_bytes_bucket{{le=\"{}\"}} 7", u64::MAX)),
            "{text}"
        );
    }

    #[test]
    fn registry_folds_cluster_observability_events() {
        let reg = MetricsRegistry::new();
        reg.record(event(EventKind::TelemetryDelta {
            from: 2,
            iteration: 5,
            span: 99,
            frames: 4,
            bytes: 2_048,
            elapsed_ns: 1_000_000,
        }));
        reg.record(event(EventKind::SlowLearner {
            party: 3,
            iteration: 5,
            lag_ns: 8_000_000,
            median_ns: 2_000_000,
            score: 4.0,
        }));
        assert_eq!(reg.telemetry_deltas_total.get(), 1);
        assert_eq!(reg.slow_learners_total.get(), 1);
        assert_eq!(reg.straggler_lag_ns.count(), 1);
        let text = reg.render();
        assert!(text.contains("ppml_telemetry_deltas_total 1"), "{text}");
        assert!(text.contains("ppml_slow_learners_total 1"), "{text}");
    }

    #[test]
    fn histogram_counts_land_in_expected_buckets() {
        let hist = Histogram::default();
        for v in [0u64, 1, 2, 3, 8, u64::MAX] {
            hist.observe(v);
        }
        assert_eq!(hist.count(), 6);
        assert_eq!(
            hist.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 8).wrapping_add(u64::MAX)
        );
        assert_eq!(hist.bucket(0), 1); // 0
        assert_eq!(hist.bucket(1), 1); // 1
        assert_eq!(hist.bucket(2), 2); // 2, 3
        assert_eq!(hist.bucket(4), 1); // 8
        assert_eq!(hist.bucket(64), 1); // u64::MAX
        assert_eq!(hist.highest_bucket(), Some(64));
    }

    #[test]
    fn registry_folds_the_event_stream() {
        let reg = MetricsRegistry::new();
        reg.record(event(EventKind::FrameSent {
            to: 1,
            bytes: 100,
            retransmit: false,
        }));
        reg.record(event(EventKind::FrameRecv { from: 1, bytes: 50 }));
        reg.record(event(EventKind::RoundOpen {
            iteration: 0,
            epoch: 0,
        }));
        reg.record(event(EventKind::RoundClose {
            iteration: 0,
            epoch: 0,
            shares: 3,
            elapsed_ns: 5_000,
        }));
        reg.record(event(EventKind::ArqRetransmit {
            to: 2,
            seq: 9,
            attempt: 3,
        }));
        reg.record(event(EventKind::RekeyEpoch {
            iteration: 1,
            epoch: 1,
            survivors: 2,
        }));
        reg.record(event(EventKind::RunInfo { run_id: 77 }));
        reg.record(event(EventKind::ClockSync {
            peer: 1,
            offset_ns: -40,
            rtt_ns: 80,
        }));
        assert_eq!(reg.frames_sent_total.get(), 1);
        assert_eq!(reg.frames_recv_total.get(), 1);
        assert_eq!(reg.bytes_sent_total.get(), 100);
        assert_eq!(reg.bytes_recv_total.get(), 50);
        assert_eq!(reg.frame_bytes.count(), 2);
        assert_eq!(reg.rounds_opened_total.get(), 1);
        assert_eq!(reg.rounds_closed_total.get(), 1);
        assert_eq!(reg.round_latency_ns.count(), 1);
        assert_eq!(reg.retransmits_total.get(), 1);
        assert_eq!(reg.retransmit_attempts.bucket(bucket_index(3)), 1);
        assert_eq!(reg.rekey_epoch.get(), 1);
        assert_eq!(reg.survivors.get(), 2);
        assert_eq!(reg.run_id.get(), 77);
        assert_eq!(reg.clock_offset_ns.get(), -40);
        assert_eq!(reg.events_total.get(), 8);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let reg = MetricsRegistry::new();
        reg.party.set(3);
        reg.record(event(EventKind::FrameSent {
            to: 1,
            bytes: 100,
            retransmit: false,
        }));
        reg.record(event(EventKind::PhaseElapsed {
            phase: "collect",
            elapsed_ns: 1_000,
        }));
        let text = reg.render();
        assert!(
            text.contains("# TYPE ppml_frames_sent_total counter"),
            "{text}"
        );
        assert!(text.contains("ppml_frames_sent_total 1"), "{text}");
        assert!(text.contains("ppml_party 3"), "{text}");
        // 100 lands in bucket 7 (le 127); the cumulative line must exist.
        assert!(
            text.contains("ppml_frame_bytes_bucket{le=\"127\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppml_frame_bytes_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("ppml_frame_bytes_sum{} 100"), "{text}");
        assert!(
            text.contains("ppml_phase_ns_bucket{phase=\"collect\",le=\"+Inf\"} 1"),
            "{text}"
        );
        // Empty phases are not rendered.
        assert!(!text.contains("phase=\"map\""), "{text}");
        // Every line is either a comment or `name{...} value` / `name value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ppml_") || line.starts_with("ppml_"),
                "odd line: {line}"
            );
        }
    }

    #[test]
    fn registry_folds_serving_events() {
        let reg = MetricsRegistry::new();
        reg.record(event(EventKind::ModelReload {
            generation: 1,
            bytes: 512,
        }));
        reg.record(event(EventKind::ScoreBatch {
            batch: 16,
            elapsed_ns: 9_000,
        }));
        reg.record(event(EventKind::ScoreBatch {
            batch: 1,
            elapsed_ns: 700,
        }));
        reg.record(event(EventKind::ScoreRejected { batch: 3 }));
        reg.record(event(EventKind::ModelReload {
            generation: 2,
            bytes: 640,
        }));
        assert_eq!(reg.score_requests_total.get(), 2);
        assert_eq!(reg.score_rows_total.get(), 17);
        assert_eq!(reg.score_rejected_total.get(), 1);
        assert_eq!(reg.score_batch_size.count(), 2);
        assert_eq!(reg.score_batch_size.bucket(bucket_index(16)), 1);
        assert_eq!(reg.score_latency_ns.sum(), 9_700);
        assert_eq!(reg.model_reloads_total.get(), 2);
        assert_eq!(reg.model_generation.get(), 2);
        assert_eq!(reg.model_bytes.get(), 640);
        let text = reg.render();
        assert!(text.contains("ppml_score_requests_total 2"), "{text}");
        assert!(text.contains("ppml_model_reloads_total 2"), "{text}");
        assert!(text.contains("ppml_score_latency_ns_count{} 2"), "{text}");
    }

    #[test]
    fn unknown_phase_labels_fold_into_other() {
        let reg = MetricsRegistry::new();
        reg.record(Event {
            t_ns: 0,
            party: NO_PARTY,
            kind: EventKind::PhaseElapsed {
                phase: "never-registered",
                elapsed_ns: 10,
            },
        });
        assert_eq!(reg.phase_slot("other").count(), 1);
    }

    #[test]
    fn metrics_sink_shares_its_registry() {
        let sink = MetricsSink::new();
        let registry = sink.registry().clone();
        sink.record(event(EventKind::Dropout {
            party: 1,
            iteration: 4,
        }));
        assert_eq!(registry.dropouts_total.get(), 1);
        assert!(sink.render().contains("ppml_dropouts_total 1"));
    }
}
