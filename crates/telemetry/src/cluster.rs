//! Coordinator-side view of the whole cluster (ISSUE 9 tentpole).
//!
//! Learners ship compact telemetry *deltas* piggy-backed on round
//! boundaries (the `Telemetry` wire kind); the coordinator folds them
//! here into per-learner labelled series. The registry also powers the
//! per-round straggler scorer: the coordinator records each learner's
//! collect lag (round open → share accepted) as shares arrive, and
//! [`ClusterRegistry::score_round`] compares every learner against the
//! round's median lag.
//!
//! Same privacy posture as the rest of the crate: a [`ClusterDelta`] is
//! `Copy` scalars only — sizes, timings, counts, epochs. Shares, masks
//! and model coordinates are unrepresentable, so nothing the §V threat
//! model protects can reach the `/cluster` exposition by construction.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};

/// A learner whose collect lag is at least this multiple of the round
/// median is flagged slow.
pub const SLOW_SCORE_THRESHOLD: f64 = 2.0;

/// Lags under a millisecond are never flagged, whatever the ratio —
/// in-process loopback rounds finish in microseconds and tiny absolute
/// jitter would otherwise read as a straggler.
pub const SLOW_MIN_LAG_NS: u64 = 1_000_000;

/// SplitMix64 finalizer — the span-id mix shared by the learner relay
/// and `ppml-trace`'s causal merge (`span = mix64(run_id ^ iteration)`).
/// Deterministic, so every party derives the same id independently.
#[must_use]
pub fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One learner's counter deltas for one round — the payload of a
/// `Telemetry` wire frame, minus addressing. All fields are deltas
/// since the learner's previous report except `iteration`, `span` and
/// `epoch`, which identify the round the report covers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterDelta {
    /// Round the delta covers.
    pub iteration: u64,
    /// Causal correlation id: `mix64(run_id ^ iteration)`.
    pub span: u64,
    /// Re-key epoch in force at the learner.
    pub epoch: u64,
    /// Frames sent since the last report.
    pub frames_sent: u64,
    /// Frames received since the last report.
    pub frames_recv: u64,
    /// Bytes sent since the last report.
    pub bytes_sent: u64,
    /// Bytes received since the last report.
    pub bytes_recv: u64,
    /// ARQ retransmissions since the last report.
    pub retransmits: u64,
    /// The learner's local wall clock for the round.
    pub elapsed_ns: u64,
}

/// The straggler scorer's per-learner output for one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerVerdict {
    /// The learner scored.
    pub party: u32,
    /// Round the verdict is for.
    pub iteration: u64,
    /// This learner's collect lag (round open → share accepted).
    pub lag_ns: u64,
    /// The round's median collect lag.
    pub median_ns: u64,
    /// `lag_ns / median_ns`; 1.0 means exactly median.
    pub score: f64,
}

impl StragglerVerdict {
    /// Whether this verdict crosses the flagging thresholds (relative
    /// score *and* absolute lag — see [`SLOW_MIN_LAG_NS`]).
    #[must_use]
    pub fn is_slow(&self) -> bool {
        self.score >= SLOW_SCORE_THRESHOLD && self.lag_ns >= SLOW_MIN_LAG_NS
    }
}

/// A plain (non-atomic) log2 histogram — the registry is coarse-grained
/// behind one mutex, so per-bucket atomics would buy nothing.
#[derive(Clone)]
struct LagHistogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LagHistogram {
    fn default() -> Self {
        LagHistogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LagHistogram {
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    fn highest_bucket(&self) -> Option<usize> {
        (0..HISTOGRAM_BUCKETS).rev().find(|&i| self.buckets[i] > 0)
    }

    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        if let Some(top) = self.highest_bucket() {
            for i in 0..=top {
                cumulative += self.buckets[i];
                let le = bucket_upper_bound(i);
                let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
    }
}

/// Everything the coordinator knows about one learner.
#[derive(Clone, Default)]
struct LearnerSeries {
    deltas: u64,
    frames_sent: u64,
    frames_recv: u64,
    bytes_sent: u64,
    bytes_recv: u64,
    retransmits: u64,
    epoch: u64,
    last_iteration: u64,
    last_span: u64,
    /// Most recent [`StragglerVerdict::score`]; 0 until first scored.
    straggler_score: f64,
    round_elapsed_ns: LagHistogram,
    collect_lag_ns: LagHistogram,
}

/// Everything the driver knows about one MapReduce worker (ISSUE 10):
/// attempt/speculation/death counters plus the task-attempt half of the
/// straggler scorer. Kept separate from [`LearnerSeries`] because the
/// id spaces differ — a worker node id is not a protocol party.
#[derive(Clone, Default)]
struct WorkerSeries {
    attempts: u64,
    speculations: u64,
    deaths: u64,
    /// Most recent task [`StragglerVerdict::score`]; 0 until first scored.
    straggler_score: f64,
    attempt_lag_ns: LagHistogram,
}

#[derive(Default)]
struct Inner {
    learners: BTreeMap<u32, LearnerSeries>,
    /// Collect lags awaiting [`ClusterRegistry::score_round`], keyed by
    /// round.
    pending: BTreeMap<u64, Vec<(u32, u64)>>,
    workers: BTreeMap<u32, WorkerSeries>,
    /// Task-attempt lags awaiting [`ClusterRegistry::score_task_round`],
    /// keyed by round.
    pending_tasks: BTreeMap<u64, Vec<(u32, u64)>>,
}

/// Per-learner labelled series folded from in-band telemetry deltas
/// plus the straggler scorer's working state. One mutex around a plain
/// map — folding happens once per learner per round on the coordinator
/// control path, nowhere near a hot loop.
#[derive(Default)]
pub struct ClusterRegistry {
    inner: Mutex<Inner>,
}

impl ClusterRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ClusterRegistry::default()
    }

    /// The process-wide registry the `/cluster` endpoint serves. The
    /// distributed loop folds into this when telemetry is enabled; a
    /// process that never folds renders an empty exposition.
    pub fn global() -> &'static ClusterRegistry {
        static GLOBAL: OnceLock<ClusterRegistry> = OnceLock::new();
        GLOBAL.get_or_init(ClusterRegistry::new)
    }

    /// Folds one delta reported by `learner`.
    pub fn fold(&self, learner: u32, delta: &ClusterDelta) {
        let mut inner = self.inner.lock().expect("cluster registry");
        let series = inner.learners.entry(learner).or_default();
        series.deltas += 1;
        series.frames_sent = series.frames_sent.saturating_add(delta.frames_sent);
        series.frames_recv = series.frames_recv.saturating_add(delta.frames_recv);
        series.bytes_sent = series.bytes_sent.saturating_add(delta.bytes_sent);
        series.bytes_recv = series.bytes_recv.saturating_add(delta.bytes_recv);
        series.retransmits = series.retransmits.saturating_add(delta.retransmits);
        series.epoch = delta.epoch;
        series.last_iteration = series.last_iteration.max(delta.iteration);
        series.last_span = delta.span;
        if delta.elapsed_ns > 0 {
            series.round_elapsed_ns.observe(delta.elapsed_ns);
        }
    }

    /// Records `learner`'s collect lag for `iteration` (round open →
    /// share accepted, by the coordinator's clock). Scored when the
    /// round closes via [`ClusterRegistry::score_round`].
    pub fn observe_lag(&self, learner: u32, iteration: u64, lag_ns: u64) {
        let mut inner = self.inner.lock().expect("cluster registry");
        inner
            .pending
            .entry(iteration)
            .or_default()
            .push((learner, lag_ns));
        inner
            .learners
            .entry(learner)
            .or_default()
            .collect_lag_ns
            .observe(lag_ns);
    }

    /// Scores every lag recorded for `iteration` against the round's
    /// (lower) median, updates the per-learner `ppml_straggler_score`
    /// gauges, and returns the verdicts. Rounds with fewer than two
    /// accepted shares have no meaningful median and score nothing.
    pub fn score_round(&self, iteration: u64) -> Vec<StragglerVerdict> {
        let mut inner = self.inner.lock().expect("cluster registry");
        let Some(lags) = inner.pending.remove(&iteration) else {
            return Vec::new();
        };
        if lags.len() < 2 {
            return Vec::new();
        }
        let mut sorted: Vec<u64> = lags.iter().map(|&(_, lag)| lag).collect();
        sorted.sort_unstable();
        let median_ns = sorted[(sorted.len() - 1) / 2].max(1);
        let mut verdicts = Vec::with_capacity(lags.len());
        for (party, lag_ns) in lags {
            let score = lag_ns as f64 / median_ns as f64;
            inner.learners.entry(party).or_default().straggler_score = score;
            verdicts.push(StragglerVerdict {
                party,
                iteration,
                lag_ns,
                median_ns,
                score,
            });
        }
        verdicts
    }

    /// Counts one map-task attempt dispatched to `worker`.
    pub fn fold_task_attempt(&self, worker: u32) {
        let mut inner = self.inner.lock().expect("cluster registry");
        inner.workers.entry(worker).or_default().attempts += 1;
    }

    /// Counts one speculative duplicate attempt dispatched to `worker`.
    pub fn fold_task_speculation(&self, worker: u32) {
        let mut inner = self.inner.lock().expect("cluster registry");
        inner.workers.entry(worker).or_default().speculations += 1;
    }

    /// Counts `worker` dying mid-job.
    pub fn fold_worker_death(&self, worker: u32) {
        let mut inner = self.inner.lock().expect("cluster registry");
        inner.workers.entry(worker).or_default().deaths += 1;
    }

    /// Records `worker`'s wall clock for one completed map attempt in
    /// `iteration`. Scored when the round closes via
    /// [`ClusterRegistry::score_task_round`].
    pub fn observe_task_lag(&self, worker: u32, iteration: u64, lag_ns: u64) {
        let mut inner = self.inner.lock().expect("cluster registry");
        inner
            .pending_tasks
            .entry(iteration)
            .or_default()
            .push((worker, lag_ns));
        inner
            .workers
            .entry(worker)
            .or_default()
            .attempt_lag_ns
            .observe(lag_ns);
    }

    /// Scores every task-attempt lag recorded for `iteration` against
    /// the round's lower median — the MapReduce twin of
    /// [`ClusterRegistry::score_round`]. `StragglerVerdict::party`
    /// carries the worker node id. Consumes the round; fewer than two
    /// attempts score nothing.
    pub fn score_task_round(&self, iteration: u64) -> Vec<StragglerVerdict> {
        let mut inner = self.inner.lock().expect("cluster registry");
        let Some(lags) = inner.pending_tasks.remove(&iteration) else {
            return Vec::new();
        };
        if lags.len() < 2 {
            return Vec::new();
        }
        let mut sorted: Vec<u64> = lags.iter().map(|&(_, lag)| lag).collect();
        sorted.sort_unstable();
        let median_ns = sorted[(sorted.len() - 1) / 2].max(1);
        let mut verdicts = Vec::with_capacity(lags.len());
        for (worker, lag_ns) in lags {
            let score = lag_ns as f64 / median_ns as f64;
            inner.workers.entry(worker).or_default().straggler_score = score;
            verdicts.push(StragglerVerdict {
                party: worker,
                iteration,
                lag_ns,
                median_ns,
                score,
            });
        }
        verdicts
    }

    /// Learners with at least one folded delta or observed lag.
    #[must_use]
    pub fn learners(&self) -> Vec<u32> {
        self.inner
            .lock()
            .expect("cluster registry")
            .learners
            .keys()
            .copied()
            .collect()
    }

    /// Workers with at least one counted attempt, speculation, death or
    /// observed task lag.
    #[must_use]
    pub fn workers(&self) -> Vec<u32> {
        self.inner
            .lock()
            .expect("cluster registry")
            .workers
            .keys()
            .copied()
            .collect()
    }

    /// Clears everything — between runs in one process, and in tests.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("cluster registry");
        inner.learners.clear();
        inner.pending.clear();
        inner.workers.clear();
        inner.pending_tasks.clear();
    }

    /// Renders the per-learner series in the Prometheus text exposition
    /// format, one `learner="N"` label per series. Scalars only — the
    /// privacy argument of [`crate::metrics::MetricsRegistry::render`]
    /// applies unchanged.
    #[must_use]
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("cluster registry");
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, pick: &dyn Fn(&LearnerSeries) -> u64| {
            let _ = writeln!(out, "# TYPE ppml_cluster_{name} counter");
            for (learner, series) in &inner.learners {
                let _ = writeln!(
                    out,
                    "ppml_cluster_{name}{{learner=\"{learner}\"}} {}",
                    pick(series)
                );
            }
        };
        let gauge = |out: &mut String, name: &str, pick: &dyn Fn(&LearnerSeries) -> u64| {
            let _ = writeln!(out, "# TYPE ppml_cluster_{name} gauge");
            for (learner, series) in &inner.learners {
                let _ = writeln!(
                    out,
                    "ppml_cluster_{name}{{learner=\"{learner}\"}} {}",
                    pick(series)
                );
            }
        };
        counter(&mut out, "deltas_total", &|s| s.deltas);
        counter(&mut out, "frames_sent_total", &|s| s.frames_sent);
        counter(&mut out, "frames_recv_total", &|s| s.frames_recv);
        counter(&mut out, "bytes_sent_total", &|s| s.bytes_sent);
        counter(&mut out, "bytes_recv_total", &|s| s.bytes_recv);
        counter(&mut out, "retransmits_total", &|s| s.retransmits);
        gauge(&mut out, "epoch", &|s| s.epoch);
        gauge(&mut out, "last_round", &|s| s.last_iteration);
        gauge(&mut out, "last_span", &|s| s.last_span);
        let _ = writeln!(out, "# TYPE ppml_straggler_score gauge");
        for (learner, series) in &inner.learners {
            let _ = writeln!(
                out,
                "ppml_straggler_score{{learner=\"{learner}\"}} {}",
                series.straggler_score
            );
        }
        let _ = writeln!(out, "# TYPE ppml_cluster_round_elapsed_ns histogram");
        for (learner, series) in &inner.learners {
            if series.round_elapsed_ns.count == 0 {
                continue;
            }
            series.round_elapsed_ns.render(
                &mut out,
                "ppml_cluster_round_elapsed_ns",
                &format!("learner=\"{learner}\""),
            );
        }
        let _ = writeln!(out, "# TYPE ppml_cluster_collect_lag_ns histogram");
        for (learner, series) in &inner.learners {
            if series.collect_lag_ns.count == 0 {
                continue;
            }
            series.collect_lag_ns.render(
                &mut out,
                "ppml_cluster_collect_lag_ns",
                &format!("learner=\"{learner}\""),
            );
        }
        // ---- MapReduce worker series (ISSUE 10)
        let worker_counter = |out: &mut String, name: &str, pick: &dyn Fn(&WorkerSeries) -> u64| {
            let _ = writeln!(out, "# TYPE ppml_{name} counter");
            for (worker, series) in &inner.workers {
                let _ = writeln!(out, "ppml_{name}{{worker=\"{worker}\"}} {}", pick(series));
            }
        };
        worker_counter(&mut out, "task_attempts_total", &|s| s.attempts);
        worker_counter(&mut out, "task_speculations_total", &|s| s.speculations);
        worker_counter(&mut out, "worker_deaths_total", &|s| s.deaths);
        let _ = writeln!(out, "# TYPE ppml_task_straggler_score gauge");
        for (worker, series) in &inner.workers {
            let _ = writeln!(
                out,
                "ppml_task_straggler_score{{worker=\"{worker}\"}} {}",
                series.straggler_score
            );
        }
        let _ = writeln!(out, "# TYPE ppml_task_attempt_lag_ns histogram");
        for (worker, series) in &inner.workers {
            if series.attempt_lag_ns.count == 0 {
                continue;
            }
            series.attempt_lag_ns.render(
                &mut out,
                "ppml_task_attempt_lag_ns",
                &format!("worker=\"{worker}\""),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(iteration: u64, bytes: u64, elapsed_ns: u64) -> ClusterDelta {
        ClusterDelta {
            iteration,
            span: mix64(7 ^ iteration),
            epoch: 0,
            frames_sent: 2,
            frames_recv: 2,
            bytes_sent: bytes,
            bytes_recv: bytes / 2,
            retransmits: 0,
            elapsed_ns,
        }
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn fold_accumulates_per_learner_series() {
        let reg = ClusterRegistry::new();
        reg.fold(1, &delta(0, 100, 1_000));
        reg.fold(1, &delta(1, 200, 1_000));
        reg.fold(2, &delta(1, 50, 2_000));
        assert_eq!(reg.learners(), vec![1, 2]);
        let text = reg.render();
        assert!(
            text.contains("ppml_cluster_bytes_sent_total{learner=\"1\"} 300"),
            "{text}"
        );
        assert!(
            text.contains("ppml_cluster_bytes_sent_total{learner=\"2\"} 50"),
            "{text}"
        );
        assert!(
            text.contains("ppml_cluster_deltas_total{learner=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ppml_cluster_last_round{learner=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppml_cluster_round_elapsed_ns_count{learner=\"2\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn fold_saturates_instead_of_wrapping() {
        let reg = ClusterRegistry::new();
        let mut d = delta(0, u64::MAX, 1);
        reg.fold(1, &d);
        d.iteration = 1;
        reg.fold(1, &d);
        let text = reg.render();
        assert!(
            text.contains(&format!(
                "ppml_cluster_bytes_sent_total{{learner=\"1\"}} {}",
                u64::MAX
            )),
            "{text}"
        );
    }

    #[test]
    fn straggler_scorer_flags_the_laggard_against_the_median() {
        let reg = ClusterRegistry::new();
        reg.observe_lag(0, 5, 2_000_000);
        reg.observe_lag(1, 5, 2_200_000);
        reg.observe_lag(2, 5, 2_100_000);
        reg.observe_lag(3, 5, 9_000_000);
        let verdicts = reg.score_round(5);
        assert_eq!(verdicts.len(), 4);
        // Lower median of [2.0, 2.1, 2.2, 9.0] ms is 2.1 ms.
        assert!(verdicts.iter().all(|v| v.median_ns == 2_100_000));
        let slow: Vec<_> = verdicts.iter().filter(|v| v.is_slow()).collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].party, 3);
        assert!(slow[0].score > 4.0, "{}", slow[0].score);
        // The gauge sticks and the laggard leads the exposition.
        let text = reg.render();
        assert!(
            text.contains("ppml_straggler_score{learner=\"3\"}"),
            "{text}"
        );
        // Scoring consumed the round: a second call returns nothing.
        assert!(reg.score_round(5).is_empty());
    }

    #[test]
    fn tiny_absolute_lags_are_never_flagged() {
        let reg = ClusterRegistry::new();
        reg.observe_lag(0, 1, 10);
        reg.observe_lag(1, 1, 900); // 90× the median but sub-millisecond
        let verdicts = reg.score_round(1);
        assert!(verdicts.iter().all(|v| !v.is_slow()), "{verdicts:?}");
    }

    #[test]
    fn single_share_rounds_score_nothing() {
        let reg = ClusterRegistry::new();
        reg.observe_lag(0, 2, 5_000_000);
        assert!(reg.score_round(2).is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let reg = ClusterRegistry::new();
        reg.fold(1, &delta(0, 10, 5));
        reg.observe_lag(1, 0, 99);
        reg.fold_task_attempt(2);
        reg.observe_task_lag(2, 0, 50);
        reg.reset();
        assert!(reg.learners().is_empty());
        assert!(reg.workers().is_empty());
        assert!(reg.score_round(0).is_empty());
        assert!(reg.score_task_round(0).is_empty());
        assert!(!reg.render().contains("learner=\"1\""));
        assert!(!reg.render().contains("worker=\"2\""));
    }

    #[test]
    fn worker_series_surface_on_the_exposition() {
        let reg = ClusterRegistry::new();
        reg.fold_task_attempt(1);
        reg.fold_task_attempt(1);
        reg.fold_task_attempt(2);
        reg.fold_task_speculation(2);
        reg.fold_worker_death(1);
        assert_eq!(reg.workers(), vec![1, 2]);
        let text = reg.render();
        assert!(
            text.contains("ppml_task_attempts_total{worker=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ppml_task_attempts_total{worker=\"2\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppml_task_speculations_total{worker=\"2\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ppml_worker_deaths_total{worker=\"1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn task_scorer_flags_the_straggling_worker() {
        let reg = ClusterRegistry::new();
        reg.observe_task_lag(0, 3, 2_000_000);
        reg.observe_task_lag(1, 3, 2_200_000);
        reg.observe_task_lag(2, 3, 11_000_000);
        let verdicts = reg.score_task_round(3);
        assert_eq!(verdicts.len(), 3);
        // Lower median of [2.0, 2.2, 11.0] ms is 2.2 ms.
        assert!(verdicts.iter().all(|v| v.median_ns == 2_200_000));
        let slow: Vec<_> = verdicts.iter().filter(|v| v.is_slow()).collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].party, 2);
        let text = reg.render();
        assert!(
            text.contains("ppml_task_straggler_score{worker=\"2\"}"),
            "{text}"
        );
        assert!(
            text.contains("ppml_task_attempt_lag_ns_count{worker=\"0\"} 1"),
            "{text}"
        );
        // Scoring consumed the round and never mixes with learner lags.
        assert!(reg.score_task_round(3).is_empty());
        assert!(reg.score_round(3).is_empty());
    }

    #[test]
    fn single_attempt_task_rounds_score_nothing() {
        let reg = ClusterRegistry::new();
        reg.observe_task_lag(0, 4, 5_000_000);
        assert!(reg.score_task_round(4).is_empty());
    }
}
