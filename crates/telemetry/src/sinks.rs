//! Event sinks: the in-memory ring, the JSONL writer, the end-of-run
//! summary, and a fan-out combinator.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};

/// Where emitted events go. Implementations must tolerate concurrent
/// `record` calls from many threads.
pub trait Sink: Send + Sync {
    /// Accepts one event. Must not panic and must not call back into
    /// [`crate::emit`].
    fn record(&self, event: Event);

    /// Pushes any buffered events to durable storage. Called by
    /// [`crate::uninstall`] before the host renders its summary; sinks
    /// that write eagerly need not override the default no-op.
    fn flush(&self) {}
}

// ---------------------------------------------------------------- ring

struct RingState {
    events: VecDeque<Event>,
    recorded: u64,
}

/// A bounded in-memory ring of the most recent events — the sink tests
/// query. When full, the oldest event is evicted; [`RingSink::recorded`]
/// still counts everything ever seen.
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(RingSink {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                events: VecDeque::new(),
                recorded: 0,
            }),
        })
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.state
            .lock()
            .expect("ring lock")
            .events
            .iter()
            .copied()
            .collect()
    }

    /// Total events recorded, including any the ring has since evicted.
    pub fn recorded(&self) -> u64 {
        self.state.lock().expect("ring lock").recorded
    }
}

impl Sink for RingSink {
    fn record(&self, event: Event) {
        let mut state = self.state.lock().expect("ring lock");
        if state.events.len() == self.capacity {
            state.events.pop_front();
        }
        state.events.push_back(event);
        state.recorded += 1;
    }
}

// --------------------------------------------------------------- jsonl

/// Appends one [`Event::to_json`] line per event to a file, buffered
/// behind a [`BufWriter`] — high-rate wire events cost a memcpy, not a
/// syscall each. Durability comes from explicit flush points rather
/// than per-line writes: the buffer drains on [`Sink::flush`] (which
/// [`crate::uninstall`] calls), on drop, and immediately after any
/// *barrier* event — round closes, checkpoints, dropouts, re-keys,
/// resumes, rejoins, deadline misses, straggler verdicts — so a process
/// killed mid-run (the chaos drills SIGKILL on purpose) still leaves a
/// parseable prefix that includes every protocol milestone it reached.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

/// Events whose presence on disk the chaos drills and `ppml-trace`
/// depend on: buffered lines are flushed as soon as one is recorded.
fn is_barrier(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::RoundClose { .. }
            | EventKind::DeadlineMiss { .. }
            | EventKind::Dropout { .. }
            | EventKind::RekeyEpoch { .. }
            | EventKind::CheckpointWrite { .. }
            | EventKind::ResumeFromCheckpoint { .. }
            | EventKind::Rejoin { .. }
            | EventKind::SlowLearner { .. }
            | EventKind::TaskSpeculated { .. }
            | EventKind::WorkerDead { .. }
            | EventKind::SlowWorker { .. }
    )
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn create(path: &Path) -> std::io::Result<Arc<Self>> {
        Ok(Arc::new(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        }))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut writer = self.writer.lock().expect("jsonl lock");
        // A full disk must not take the training run down with it.
        let _ = writer.write_all(line.as_bytes());
        if is_barrier(&event.kind) {
            let _ = writer.flush();
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.get_mut() {
            let _ = writer.flush();
        }
    }
}

// ------------------------------------------------------------- summary

#[derive(Default)]
struct Totals {
    events: u64,
    first_t_ns: Option<u64>,
    last_t_ns: u64,
    frames_sent: u64,
    bytes_sent: u64,
    retransmit_frames: u64,
    frames_recv: u64,
    bytes_recv: u64,
    rejected: u64,
    arq_retransmits: u64,
    dedup_drops: u64,
    send_timeouts: u64,
    rounds_closed: u64,
    deadline_misses: u64,
    broadcast_bytes: u64,
    shuffle_bytes: u64,
    task_attempts: u64,
    local_tasks: u64,
    admm_iterations: u64,
    last_z_delta: Option<f64>,
    score_batches: u64,
    score_rows: u64,
    score_ns: u64,
    score_rejected: u64,
    model_reloads: u64,
    conns_opened: u64,
    conns_closed: u64,
    conns_reaped: u64,
    /// `(t_ns, party, iteration)` per dropout declaration.
    dropouts: Vec<(u64, u32, u64)>,
    /// `(t_ns, epoch, survivors)` per re-key.
    rekeys: Vec<(u64, u64, u32)>,
    checkpoints: u64,
    /// `(t_ns, iteration)` per coordinator resume.
    resumes: Vec<(u64, u64)>,
    /// `(t_ns, party, iteration)` per learner re-admission.
    rejoins: Vec<(u64, u32, u64)>,
    /// label → (count, total ns).
    phases: BTreeMap<&'static str, (u64, u64)>,
    /// backend label → (rounds, bytes, total ns).
    secagg: BTreeMap<&'static str, (u64, u64, u64)>,
    telemetry_deltas: u64,
    /// `(t_ns, party, iteration, score)` per straggler verdict.
    slow_learners: Vec<(u64, u32, u64, f64)>,
    task_speculations: u64,
    /// `(t_ns, node, inflight)` per worker death.
    worker_deaths: Vec<(u64, u32, u32)>,
    slow_workers: u64,
}

/// O(1)-per-event accumulators rendering an end-of-run human summary:
/// per-phase wall clock, byte totals, retransmit rate and the dropout
/// timeline. Exact regardless of event volume — nothing is sampled or
/// evicted (the dropout/re-key timelines grow, but only by a handful of
/// entries per lost learner).
#[derive(Default)]
pub struct SummarySink {
    totals: Mutex<Totals>,
}

impl SummarySink {
    /// An empty summary.
    pub fn new() -> Arc<Self> {
        Arc::new(SummarySink::default())
    }

    /// Renders the accumulated totals as human-readable text.
    pub fn render(&self) -> String {
        let t = self.totals.lock().expect("summary lock");
        let span_s = t
            .first_t_ns
            .map(|first| (t.last_t_ns.saturating_sub(first)) as f64 / 1e9)
            .unwrap_or(0.0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry summary: {} events over {span_s:.3}s",
            t.events
        );
        if t.frames_sent + t.frames_recv + t.rejected > 0 {
            let rate = if t.frames_sent > 0 {
                100.0 * t.retransmit_frames as f64 / t.frames_sent as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  wire: {} frames out ({} B, {:.1}% retransmit), {} frames in ({} B), \
                 {} rejected",
                t.frames_sent, t.bytes_sent, rate, t.frames_recv, t.bytes_recv, t.rejected
            );
        }
        if t.arq_retransmits + t.dedup_drops + t.send_timeouts > 0 {
            let _ = writeln!(
                out,
                "  arq: {} retransmits, {} duplicates dropped, {} send timeouts",
                t.arq_retransmits, t.dedup_drops, t.send_timeouts
            );
        }
        if t.rounds_closed + t.deadline_misses > 0 {
            let _ = writeln!(
                out,
                "  rounds: {} closed, {} deadline misses",
                t.rounds_closed, t.deadline_misses
            );
        }
        if t.broadcast_bytes + t.shuffle_bytes > 0 {
            let _ = writeln!(
                out,
                "  cluster bytes: {} broadcast, {} shuffled",
                t.broadcast_bytes, t.shuffle_bytes
            );
        }
        if t.task_attempts > 0 {
            let _ = writeln!(
                out,
                "  tasks: {} attempts, {} data-local",
                t.task_attempts, t.local_tasks
            );
        }
        if t.task_speculations + t.slow_workers > 0 {
            let _ = writeln!(
                out,
                "  speculation: {} duplicate attempts launched, {} slow-worker verdicts",
                t.task_speculations, t.slow_workers
            );
        }
        for &(t_ns, node, inflight) in &t.worker_deaths {
            let rel = t.first_t_ns.map_or(0, |f| t_ns.saturating_sub(f));
            let _ = writeln!(
                out,
                "  worker dead: node {node} with {inflight} in flight (+{:.3}s)",
                rel as f64 / 1e9
            );
        }
        if t.admm_iterations > 0 {
            let _ = writeln!(
                out,
                "  admm: {} iterations, final |dz|^2 = {:.3e}",
                t.admm_iterations,
                t.last_z_delta.unwrap_or(0.0)
            );
        }
        for &(t_ns, party, iteration) in &t.dropouts {
            let rel = t.first_t_ns.map_or(0, |f| t_ns.saturating_sub(f));
            let _ = writeln!(
                out,
                "  dropout: party {party} at round {iteration} (+{:.3}s)",
                rel as f64 / 1e9
            );
        }
        for &(t_ns, epoch, survivors) in &t.rekeys {
            let rel = t.first_t_ns.map_or(0, |f| t_ns.saturating_sub(f));
            let _ = writeln!(
                out,
                "  re-key: epoch {epoch}, {survivors} survivors (+{:.3}s)",
                rel as f64 / 1e9
            );
        }
        if t.checkpoints > 0 {
            let _ = writeln!(out, "  checkpoints: {} written", t.checkpoints);
        }
        if t.conns_opened + t.conns_closed + t.conns_reaped > 0 {
            let _ = writeln!(
                out,
                "  conns: {} opened, {} closed, {} idle-reaped",
                t.conns_opened, t.conns_closed, t.conns_reaped
            );
        }
        if t.score_batches + t.score_rejected > 0 {
            let _ = writeln!(
                out,
                "  serving: {} batches ({} rows) in {:.3}s, {} rejected, {} model loads",
                t.score_batches,
                t.score_rows,
                t.score_ns as f64 / 1e9,
                t.score_rejected,
                t.model_reloads
            );
        }
        for &(t_ns, iteration) in &t.resumes {
            let rel = t.first_t_ns.map_or(0, |f| t_ns.saturating_sub(f));
            let _ = writeln!(
                out,
                "  resume: from checkpoint at round {iteration} (+{:.3}s)",
                rel as f64 / 1e9
            );
        }
        for &(t_ns, party, iteration) in &t.rejoins {
            let rel = t.first_t_ns.map_or(0, |f| t_ns.saturating_sub(f));
            let _ = writeln!(
                out,
                "  rejoin: party {party} at round {iteration} (+{:.3}s)",
                rel as f64 / 1e9
            );
        }
        for (phase, &(count, total_ns)) in &t.phases {
            let _ = writeln!(
                out,
                "  phase {phase}: {count} spans, {:.3}s total",
                total_ns as f64 / 1e9
            );
        }
        for (backend, &(rounds, bytes, total_ns)) in &t.secagg {
            let _ = writeln!(
                out,
                "  secagg {backend}: {rounds} rounds, {bytes} B, {:.3}s total",
                total_ns as f64 / 1e9
            );
        }
        if t.telemetry_deltas > 0 {
            let _ = writeln!(
                out,
                "  cluster: {} telemetry deltas folded",
                t.telemetry_deltas
            );
        }
        for &(t_ns, party, iteration, score) in &t.slow_learners {
            let rel = t.first_t_ns.map_or(0, |f| t_ns.saturating_sub(f));
            let _ = writeln!(
                out,
                "  straggler: party {party} at round {iteration}, score {score:.2} (+{:.3}s)",
                rel as f64 / 1e9
            );
        }
        out
    }
}

impl Sink for SummarySink {
    fn record(&self, event: Event) {
        let mut t = self.totals.lock().expect("summary lock");
        t.events += 1;
        t.first_t_ns.get_or_insert(event.t_ns);
        t.last_t_ns = t.last_t_ns.max(event.t_ns);
        match event.kind {
            EventKind::FrameSent {
                bytes, retransmit, ..
            } => {
                t.frames_sent += 1;
                t.bytes_sent += bytes;
                if retransmit {
                    t.retransmit_frames += 1;
                }
            }
            EventKind::FrameRecv { bytes, .. } => {
                t.frames_recv += 1;
                t.bytes_recv += bytes;
            }
            EventKind::FrameRejected { .. } => t.rejected += 1,
            EventKind::SendTimeout { .. } => t.send_timeouts += 1,
            EventKind::ArqRetransmit { .. } => t.arq_retransmits += 1,
            EventKind::DedupDrop { .. } => t.dedup_drops += 1,
            EventKind::AckDropped { .. } => {}
            EventKind::RoundOpen { .. } => {}
            EventKind::RoundClose { .. } => t.rounds_closed += 1,
            EventKind::DeadlineMiss { .. } => t.deadline_misses += 1,
            EventKind::Dropout { party, iteration } => {
                t.dropouts.push((event.t_ns, party, iteration));
            }
            EventKind::RekeyEpoch {
                epoch, survivors, ..
            } => t.rekeys.push((event.t_ns, epoch, survivors)),
            EventKind::TaskAttempt { local, .. } => {
                t.task_attempts += 1;
                if local {
                    t.local_tasks += 1;
                }
            }
            EventKind::WorkerUp { .. } | EventKind::WorkerDown { .. } => {}
            EventKind::BroadcastBytes { bytes, .. } => t.broadcast_bytes += bytes,
            EventKind::ShuffleBytes { bytes, .. } => t.shuffle_bytes += bytes,
            EventKind::AdmmIteration { z_delta, .. } => {
                t.admm_iterations += 1;
                t.last_z_delta = Some(z_delta);
            }
            EventKind::PhaseElapsed { phase, elapsed_ns } => {
                let slot = t.phases.entry(phase).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += elapsed_ns;
            }
            EventKind::RunInfo { .. } | EventKind::ClockSync { .. } => {}
            EventKind::CheckpointWrite { .. } => t.checkpoints += 1,
            EventKind::ResumeFromCheckpoint { iteration, .. } => {
                t.resumes.push((event.t_ns, iteration));
            }
            EventKind::Rejoin { party, iteration } => {
                t.rejoins.push((event.t_ns, party, iteration));
            }
            EventKind::ScoreBatch { batch, elapsed_ns } => {
                t.score_batches += 1;
                t.score_rows += u64::from(batch);
                t.score_ns += elapsed_ns;
            }
            EventKind::ScoreRejected { .. } => t.score_rejected += 1,
            EventKind::ModelReload { .. } => t.model_reloads += 1,
            EventKind::ConnOpen { .. } => t.conns_opened += 1,
            EventKind::ConnClose { .. } => t.conns_closed += 1,
            EventKind::ConnReaped { .. } => t.conns_reaped += 1,
            EventKind::SecAggRound {
                backend,
                bytes,
                elapsed_ns,
                ..
            } => {
                let slot = t.secagg.entry(backend).or_insert((0, 0, 0));
                slot.0 += 1;
                slot.1 += bytes;
                slot.2 += elapsed_ns;
            }
            EventKind::TelemetryDelta { .. } => t.telemetry_deltas += 1,
            EventKind::SlowLearner {
                party,
                iteration,
                score,
                ..
            } => t.slow_learners.push((event.t_ns, party, iteration, score)),
            EventKind::TaskSpeculated { .. } => t.task_speculations += 1,
            EventKind::WorkerDead { node, inflight } => {
                t.worker_deaths.push((event.t_ns, node, inflight));
            }
            EventKind::SlowWorker { .. } => t.slow_workers += 1,
        }
    }
}

// -------------------------------------------------------------- fanout

/// Duplicates every event to each wrapped sink — e.g. a JSONL file plus
/// a live summary.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// Fans out to `sinks` in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Arc<Self> {
        Arc::new(FanoutSink { sinks })
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t_ns: u64, kind: EventKind) -> Event {
        Event {
            t_ns,
            party: 0,
            kind,
        }
    }

    #[test]
    fn ring_evicts_oldest_but_counts_all() {
        let ring = RingSink::new(3);
        for seq in 0..10 {
            ring.record(event(seq, EventKind::DedupDrop { from: 1, seq }));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].t_ns, 7);
        assert_eq!(snap[2].t_ns, 9);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn summary_renders_rates_and_timeline() {
        let summary = SummarySink::new();
        summary.record(event(
            0,
            EventKind::FrameSent {
                to: 1,
                bytes: 100,
                retransmit: false,
            },
        ));
        summary.record(event(
            1_000,
            EventKind::FrameSent {
                to: 1,
                bytes: 100,
                retransmit: true,
            },
        ));
        summary.record(event(
            2_000_000_000,
            EventKind::Dropout {
                party: 1,
                iteration: 2,
            },
        ));
        summary.record(event(
            2_000_000_001,
            EventKind::RekeyEpoch {
                iteration: 2,
                epoch: 1,
                survivors: 2,
            },
        ));
        summary.record(event(
            3_000_000_000,
            EventKind::PhaseElapsed {
                phase: "collect",
                elapsed_ns: 500_000_000,
            },
        ));
        let text = summary.render();
        assert!(text.contains("50.0% retransmit"), "{text}");
        assert!(text.contains("dropout: party 1 at round 2"), "{text}");
        assert!(text.contains("re-key: epoch 1, 2 survivors"), "{text}");
        assert!(text.contains("phase collect: 1 spans, 0.500s"), "{text}");
    }

    #[test]
    fn jsonl_buffers_until_flush_and_flushes_on_barriers() {
        let dir = std::env::temp_dir().join(format!("ppml-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("buffered.jsonl");
        let sink = JsonlSink::create(&path).expect("create");

        // A high-rate wire event sits in the buffer: nothing on disk yet.
        sink.record(event(1, EventKind::DedupDrop { from: 1, seq: 7 }));
        assert_eq!(
            std::fs::read_to_string(&path).expect("read").len(),
            0,
            "non-barrier events must be buffered, not synced per line"
        );

        // A barrier event forces everything buffered so far out.
        sink.record(event(
            2,
            EventKind::RoundClose {
                iteration: 3,
                epoch: 0,
                shares: 4,
                elapsed_ns: 9,
            },
        ));
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert_eq!(on_disk.lines().count(), 2, "{on_disk}");
        assert!(on_disk.contains("\"round_close\""), "{on_disk}");

        // Explicit flush drains later non-barrier lines too.
        sink.record(event(3, EventKind::WorkerUp { node: 2 }));
        sink.flush();
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert_eq!(on_disk.lines().count(), 3, "{on_disk}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!("ppml-jsonl-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("dropped.jsonl");
        {
            let sink = JsonlSink::create(&path).expect("create");
            sink.record(event(1, EventKind::WorkerUp { node: 1 }));
        }
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert_eq!(on_disk.lines().count(), 1, "{on_disk}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_renders_straggler_verdicts() {
        let summary = SummarySink::new();
        summary.record(event(
            0,
            EventKind::TelemetryDelta {
                from: 1,
                iteration: 2,
                span: 9,
                frames: 3,
                bytes: 512,
                elapsed_ns: 1_000,
            },
        ));
        summary.record(event(
            1_500_000_000,
            EventKind::SlowLearner {
                party: 2,
                iteration: 4,
                lag_ns: 6_000_000,
                median_ns: 2_000_000,
                score: 3.0,
            },
        ));
        let text = summary.render();
        assert!(
            text.contains("cluster: 1 telemetry deltas folded"),
            "{text}"
        );
        assert!(
            text.contains("straggler: party 2 at round 4, score 3.00 (+1.500s)"),
            "{text}"
        );
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = RingSink::new(8);
        let b = RingSink::new(8);
        let fan = FanoutSink::new(vec![a.clone() as Arc<dyn Sink>, b.clone()]);
        fan.record(event(5, EventKind::WorkerUp { node: 1 }));
        assert_eq!(a.recorded(), 1);
        assert_eq!(b.recorded(), 1);
    }
}
