//! Proves the ISSUE 3 acceptance criterion "with no sink installed,
//! instrumented hot paths allocate nothing": every `emit` and `Span`
//! call with telemetry disabled must perform zero heap allocations.
//!
//! The library itself is `#![forbid(unsafe_code)]`; the counting
//! allocator below needs `unsafe` only to delegate to the system
//! allocator, which is fine in an integration test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_emit_and_span_allocate_nothing() {
    use ppml_telemetry::{emit, enabled, EventKind, Span};

    assert!(!enabled(), "no sink installed in this process");

    // Warm anything lazily initialized outside the measured window.
    emit(
        0,
        EventKind::FrameSent {
            to: 1,
            bytes: 64,
            retransmit: false,
        },
    );
    let _ = Span::begin(0, "train");

    let before = allocations();
    for i in 0..10_000u64 {
        emit(
            0,
            EventKind::FrameSent {
                to: 1,
                bytes: i,
                retransmit: false,
            },
        );
        emit(
            1,
            EventKind::AdmmIteration {
                iteration: i,
                primal_sq: 0.5,
                dual_sq: 0.25,
                z_delta: 1e-9,
                objective: Some(42.0),
            },
        );
        let span = Span::begin(2, "collect");
        span.end();
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "disabled telemetry hot path must not touch the heap"
    );
}
