//! Locality-aware map task placement.
//!
//! GFS/Hadoop scheduling heuristic in miniature: prefer a node that holds a
//! replica of the task's block and currently has the lightest load; fall
//! back to the globally lightest node (a *remote read*) when every replica
//! holder is saturated relative to it. Deterministic: ties break toward the
//! lower node id, so every run schedules identically.

use crate::{BlockId, BlockStore, NodeId};

/// One scheduled map task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAssignment {
    /// The block to map.
    pub block: BlockId,
    /// Where the attempt runs.
    pub node: NodeId,
    /// Whether `node` holds a replica of `block`.
    pub data_local: bool,
}

/// Static per-iteration scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    nodes: usize,
    /// Load-balance slack: a replica holder is chosen as long as its queue
    /// is at most this much longer than the emptiest queue.
    locality_slack: usize,
}

impl Scheduler {
    /// Creates a scheduler for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Scheduler {
            nodes,
            locality_slack: 1,
        }
    }

    /// Overrides how much extra queue depth a local placement may cost
    /// before the scheduler gives up locality for balance. `0` = strict
    /// balance, large = strict locality.
    pub fn with_locality_slack(mut self, slack: usize) -> Self {
        self.locality_slack = slack;
        self
    }

    /// Assigns every block to a node. `exclude` removes candidate nodes for
    /// specific blocks (used to re-place failed attempts away from the node
    /// that just failed them).
    pub fn assign<T>(
        &self,
        store: &BlockStore<T>,
        blocks: &[BlockId],
        exclude: &[(BlockId, NodeId)],
    ) -> Vec<TaskAssignment> {
        let mut load = vec![0usize; self.nodes];
        let mut out = Vec::with_capacity(blocks.len());
        for &block in blocks {
            let banned: Vec<NodeId> = exclude
                .iter()
                .filter(|(b, _)| *b == block)
                .map(|(_, n)| *n)
                .collect();
            let replicas: Vec<NodeId> = store
                .replicas(block)
                .map(|r| r.iter().copied().filter(|n| !banned.contains(n)).collect())
                .unwrap_or_default();
            let min_load = (0..self.nodes)
                .filter(|n| !banned.contains(&NodeId(*n)))
                .map(|n| load[n])
                .min()
                .unwrap_or(0);
            // Best replica holder within the slack budget.
            let local_choice = replicas
                .iter()
                .copied()
                .filter(|n| load[n.0] <= min_load + self.locality_slack)
                .min_by_key(|n| (load[n.0], n.0));
            let (node, data_local) = match local_choice {
                Some(n) => (n, true),
                None => {
                    let n = (0..self.nodes)
                        .filter(|n| !banned.contains(&NodeId(*n)))
                        .min_by_key(|&n| (load[n], n))
                        .map(NodeId)
                        .unwrap_or(NodeId(0));
                    (n, replicas.contains(&n))
                }
            };
            load[node.0] += 1;
            out.push(TaskAssignment {
                block,
                node,
                data_local,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(nodes: usize, replication: usize, blocks: usize) -> (BlockStore<u32>, Vec<BlockId>) {
        let mut s = BlockStore::new(nodes, replication);
        let ids = (0..blocks as u32).map(|i| s.put(i)).collect();
        (s, ids)
    }

    #[test]
    fn all_local_when_blocks_match_nodes() {
        let (s, ids) = store(4, 1, 4);
        let plan = Scheduler::new(4).assign(&s, &ids, &[]);
        assert!(plan.iter().all(|t| t.data_local));
        // One task per node.
        let mut nodes: Vec<usize> = plan.iter().map(|t| t.node.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn balances_when_blocks_exceed_nodes() {
        let (s, ids) = store(2, 1, 6);
        let plan = Scheduler::new(2).assign(&s, &ids, &[]);
        let on0 = plan.iter().filter(|t| t.node.0 == 0).count();
        let on1 = plan.iter().filter(|t| t.node.0 == 1).count();
        assert_eq!(on0 + on1, 6);
        assert!((on0 as i64 - on1 as i64).abs() <= 1, "{on0} vs {on1}");
    }

    #[test]
    fn skewed_placement_forces_remote_reads() {
        // All blocks pinned to node 0 with no replicas: strict balance makes
        // some tasks remote.
        let mut s: BlockStore<u32> = BlockStore::new(4, 1);
        let ids: Vec<BlockId> = (0..8).map(|i| s.put_on(i, NodeId(0))).collect();
        let plan = Scheduler::new(4)
            .with_locality_slack(0)
            .assign(&s, &ids, &[]);
        let remote = plan.iter().filter(|t| !t.data_local).count();
        assert!(
            remote > 0,
            "expected some remote reads under strict balance"
        );
        // With unbounded slack, everything stays local on node 0.
        let plan = Scheduler::new(4)
            .with_locality_slack(100)
            .assign(&s, &ids, &[]);
        assert!(plan.iter().all(|t| t.data_local && t.node == NodeId(0)));
    }

    #[test]
    fn exclusion_moves_task_elsewhere() {
        let (s, ids) = store(3, 1, 3);
        let first = Scheduler::new(3).assign(&s, &ids, &[]);
        let victim = first[0];
        let replan = Scheduler::new(3).assign(&s, &ids[..1], &[(victim.block, victim.node)]);
        assert_ne!(replan[0].node, victim.node);
    }

    #[test]
    fn deterministic() {
        let (s, ids) = store(4, 2, 10);
        let a = Scheduler::new(4).assign(&s, &ids, &[]);
        let b = Scheduler::new(4).assign(&s, &ids, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn replication_improves_locality_under_exclusion() {
        // With replication 2, excluding the primary still leaves a local
        // placement.
        let (s, ids) = store(4, 2, 4);
        let reps = s.replicas(ids[0]).unwrap().to_vec();
        let plan = Scheduler::new(4).assign(&s, &ids[..1], &[(ids[0], reps[0])]);
        assert!(plan[0].data_local);
        assert_eq!(plan[0].node, reps[1]);
    }
}
