//! Locality-aware map task placement and the fault-tolerant task driver.
//!
//! Two layers live here. [`Scheduler`] is the pure placement heuristic —
//! GFS/Hadoop in miniature: prefer a node that holds a replica of the
//! task's block and currently has the lightest load; fall back to the
//! globally lightest node (a *remote read*) when every replica holder is
//! saturated relative to it. Deterministic: ties break toward the lower
//! node id, so every run schedules identically.
//!
//! [`TaskScheduler`] is the driver for *real OS-process* workers behind a
//! [`Courier`]: it dispatches [`Message::TaskDispatch`] frames, collects
//! [`Message::TaskResult`]s, and survives the three classic failure modes
//! (DESIGN.md §13):
//!
//! * **failed attempts** — bounded retry with [`RetryPolicy`]-shaped
//!   backoff, preferring a worker that has not failed this task yet;
//! * **stragglers** — speculative re-execution: when most of the round is
//!   done and one attempt has run longer than
//!   `speculation_factor ×` the round's lower-median attempt time, a
//!   duplicate launches on another worker; first result wins and the
//!   loser is cancelled (results are bit-identical either way because
//!   [`ProcessJob::map`] is pure);
//! * **dead workers** — a send failure or an attempt exceeding
//!   `attempt_timeout` declares the worker dead; its in-flight tasks
//!   re-queue on survivors, and when fewer than `quorum` workers remain
//!   the round fails fast with [`MapReduceError::QuorumLost`] instead of
//!   hanging.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use ppml_telemetry::{emit, ClusterRegistry, EventKind};
use ppml_transport::{Courier, Message, PartyId, RetryPolicy, Transport};

use crate::job::ProcessJob;
use crate::worker::{decode_register, REGISTER_TAG};
use crate::{BlockId, BlockStore, JobMetrics, MapReduceError, NodeId};

/// One scheduled map task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAssignment {
    /// The block to map.
    pub block: BlockId,
    /// Where the attempt runs.
    pub node: NodeId,
    /// Whether `node` holds a replica of `block`.
    pub data_local: bool,
}

/// Static per-iteration scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    nodes: usize,
    /// Load-balance slack: a replica holder is chosen as long as its queue
    /// is at most this much longer than the emptiest queue.
    locality_slack: usize,
}

impl Scheduler {
    /// Creates a scheduler for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Scheduler {
            nodes,
            locality_slack: 1,
        }
    }

    /// Overrides how much extra queue depth a local placement may cost
    /// before the scheduler gives up locality for balance. `0` = strict
    /// balance, large = strict locality.
    pub fn with_locality_slack(mut self, slack: usize) -> Self {
        self.locality_slack = slack;
        self
    }

    /// Assigns every block to a node. `exclude` removes candidate nodes for
    /// specific blocks (used to re-place failed attempts away from the node
    /// that just failed them).
    pub fn assign<T>(
        &self,
        store: &BlockStore<T>,
        blocks: &[BlockId],
        exclude: &[(BlockId, NodeId)],
    ) -> Vec<TaskAssignment> {
        let mut load = vec![0usize; self.nodes];
        let mut out = Vec::with_capacity(blocks.len());
        for &block in blocks {
            let banned: Vec<NodeId> = exclude
                .iter()
                .filter(|(b, _)| *b == block)
                .map(|(_, n)| *n)
                .collect();
            let replicas: Vec<NodeId> = store
                .replicas(block)
                .map(|r| r.iter().copied().filter(|n| !banned.contains(n)).collect())
                .unwrap_or_default();
            let min_load = (0..self.nodes)
                .filter(|n| !banned.contains(&NodeId(*n)))
                .map(|n| load[n])
                .min()
                .unwrap_or(0);
            // Best replica holder within the slack budget.
            let local_choice = replicas
                .iter()
                .copied()
                .filter(|n| load[n.0] <= min_load + self.locality_slack)
                .min_by_key(|n| (load[n.0], n.0));
            let (node, data_local) = match local_choice {
                Some(n) => (n, true),
                None => {
                    let n = (0..self.nodes)
                        .filter(|n| !banned.contains(&NodeId(*n)))
                        .min_by_key(|&n| (load[n], n))
                        .map(NodeId)
                        .unwrap_or(NodeId(0));
                    (n, replicas.contains(&n))
                }
            };
            load[node.0] += 1;
            out.push(TaskAssignment {
                block,
                node,
                data_local,
            });
        }
        out
    }
}

/// Retry, speculation and liveness knobs for [`TaskScheduler`].
#[derive(Debug, Clone)]
pub struct TaskPolicy {
    /// Give up on a task after this many *failed* attempts (worker
    /// deaths re-queue without consuming the budget — they are the
    /// cluster's fault, not the task's).
    pub max_attempts: usize,
    /// An attempt older than this declares its worker dead (the
    /// Hadoop-style liveness rule: with speculation covering mere
    /// slowness, only a dead or wedged worker ever gets this far).
    pub attempt_timeout: Duration,
    /// Backoff schedule between retries of a failed task.
    pub retry: RetryPolicy,
    /// Whether stragglers get speculative duplicate attempts.
    pub speculate: bool,
    /// Speculate when an attempt has run longer than this multiple of
    /// the round's lower-median completed-attempt time.
    pub speculation_factor: f64,
    /// Delay-scheduling budget: a queued task waits up to this long for
    /// a live replica holder to free up before paying a remote read.
    pub locality_wait: Duration,
    /// Fail fast with [`MapReduceError::QuorumLost`] when fewer live
    /// workers than this remain.
    pub quorum: usize,
}

impl Default for TaskPolicy {
    fn default() -> Self {
        TaskPolicy {
            max_attempts: 3,
            attempt_timeout: Duration::from_secs(10),
            retry: RetryPolicy::fast_local(),
            speculate: true,
            speculation_factor: 2.0,
            locality_wait: Duration::from_millis(50),
            quorum: 1,
        }
    }
}

/// Driver-side view of one registered worker process.
#[derive(Debug, Clone, Default)]
struct RemoteWorker {
    /// Blocks the worker holds locally (from its registration blob).
    resident: BTreeSet<u64>,
    /// False once declared dead; a dead worker is never dispatched to
    /// again (a restarted process must re-register as itself).
    alive: bool,
    /// Dispatches currently outstanding on this worker.
    inflight: usize,
}

/// One outstanding dispatch of a task.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    worker: PartyId,
    attempt: u32,
    started: Instant,
}

/// A cancelled attempt the worker is still (obliviously) crunching.
///
/// A single-slot worker cannot be interrupted mid-map, so a speculation
/// loser keeps its slot *occupied* until its late result surfaces (and
/// is discarded) or the liveness timeout expires. Forgetting this and
/// treating the loser as free would dispatch fresh work into a blocked
/// worker and then declare it dead when the send goes unacknowledged.
#[derive(Debug, Clone, Copy)]
struct Zombie {
    worker: PartyId,
    block: u64,
    attempt: u32,
    started: Instant,
}

/// Driver-side lifecycle of one map task within a round:
/// queued → dispatched → (speculated) → done / failed.
#[derive(Debug, Default)]
struct TaskState {
    /// Attempt ids handed out so far (unique per task within a round).
    attempts_started: u32,
    /// Failed (`ok=false`) attempts — counted against `max_attempts`.
    failures: usize,
    /// Outstanding dispatches (two while a speculation race runs).
    inflight: Vec<Inflight>,
    /// Earliest instant the next retry may dispatch (backoff).
    retry_at: Option<Instant>,
    /// Workers that failed this task (preferred-against on retry).
    blamed: BTreeSet<PartyId>,
    /// When the task last entered (or re-entered) the queue — the
    /// delay-scheduling clock.
    queued_at: Option<Instant>,
    /// True once a duplicate launched (at most one speculation/task).
    speculated: bool,
    /// The winning map output.
    output: Option<Vec<u8>>,
}

/// Fault-tolerant driver for map tasks on real worker processes.
///
/// Construction order: [`TaskScheduler::new`] →
/// [`TaskScheduler::register_workers`] (once) →
/// [`TaskScheduler::run_round`] per iteration →
/// [`TaskScheduler::shutdown`].
pub struct TaskScheduler<T: Transport> {
    courier: Courier<T>,
    job: Box<dyn ProcessJob>,
    policy: TaskPolicy,
    workers: BTreeMap<PartyId, RemoteWorker>,
    /// Cancelled attempts still occupying their worker's slot.
    zombies: Vec<Zombie>,
    iteration: u64,
    /// Accumulated cost/robustness accounting across rounds.
    pub metrics: JobMetrics,
    /// `TaskCancel` frames sent to speculation losers.
    pub cancels_sent: usize,
}

/// Receive slice while waiting for results: short enough to notice
/// attempt timeouts and retry deadlines promptly.
const RECV_SLICE: Duration = Duration::from_millis(5);

impl<T: Transport> TaskScheduler<T> {
    /// Wraps `courier` (the driver endpoint) to drive `job` under
    /// `policy`.
    pub fn new(courier: Courier<T>, job: Box<dyn ProcessJob>, policy: TaskPolicy) -> Self {
        TaskScheduler {
            courier,
            job,
            policy,
            workers: BTreeMap::new(),
            zombies: Vec::new(),
            iteration: 0,
            metrics: JobMetrics::default(),
            cancels_sent: 0,
        }
    }

    /// Waits for `expected` distinct workers to register.
    ///
    /// A registration is a [`Message::Blob`] tagged [`REGISTER_TAG`]
    /// carrying the job name and the worker's resident blocks; a worker
    /// announcing a different job poisons the pool immediately.
    ///
    /// # Errors
    ///
    /// [`MapReduceError::BadWorker`] on a malformed or mismatched
    /// registration, or when fewer than `expected` workers appear
    /// within `timeout`.
    pub fn register_workers(
        &mut self,
        expected: usize,
        timeout: Duration,
    ) -> Result<(), MapReduceError> {
        let deadline = Instant::now() + timeout;
        while self.workers.len() < expected {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(MapReduceError::BadWorker {
                    reason: format!(
                        "registration timed out: {} of {expected} workers announced",
                        self.workers.len()
                    ),
                });
            }
            let Ok(env) = self.courier.recv(left.min(Duration::from_millis(50))) else {
                continue;
            };
            if let Message::Blob { tag, bytes } = env.msg {
                if tag != REGISTER_TAG {
                    continue;
                }
                let (job, blocks) = decode_register(&bytes)
                    .map_err(|reason| MapReduceError::BadWorker { reason })?;
                if job != self.job.name() {
                    return Err(MapReduceError::BadWorker {
                        reason: format!(
                            "worker {} registered for job {job:?}, driver runs {:?}",
                            env.from,
                            self.job.name()
                        ),
                    });
                }
                self.workers.insert(
                    env.from,
                    RemoteWorker {
                        resident: blocks.into_iter().collect(),
                        alive: true,
                        inflight: 0,
                    },
                );
                emit(self.courier.party(), EventKind::WorkerUp { node: env.from });
            }
        }
        Ok(())
    }

    /// Live workers right now.
    pub fn alive_workers(&self) -> usize {
        self.workers.values().filter(|w| w.alive).count()
    }

    fn registry_enabled() -> bool {
        ppml_telemetry::enabled()
    }

    /// Releases the zombie slot for a cancelled attempt whose late
    /// result finally surfaced.
    fn free_zombie(&mut self, from: PartyId, block: u64, attempt: u32) {
        if let Some(z) = self
            .zombies
            .iter()
            .position(|z| z.worker == from && z.block == block && z.attempt == attempt)
        {
            self.zombies.swap_remove(z);
            if let Some(w) = self.workers.get_mut(&from) {
                w.inflight = w.inflight.saturating_sub(1);
            }
        }
    }

    /// Declares `worker` dead: stops dispatching to it and re-queues
    /// everything it was running. Idempotent.
    fn declare_dead(&mut self, worker: PartyId, tasks: &mut BTreeMap<u64, TaskState>) {
        let Some(w) = self.workers.get_mut(&worker) else {
            return;
        };
        if !w.alive {
            return;
        }
        w.alive = false;
        let inflight = w.inflight as u32;
        w.inflight = 0;
        self.zombies.retain(|z| z.worker != worker);
        self.metrics.workers_lost += 1;
        emit(
            self.courier.party(),
            EventKind::WorkerDead {
                node: worker,
                inflight,
            },
        );
        if Self::registry_enabled() {
            ClusterRegistry::global().fold_worker_death(worker);
        }
        for task in tasks.values_mut() {
            // The dead worker's attempts can never produce results;
            // dropping them re-queues the task (no failure charged —
            // the loss is the cluster's fault, not the task's).
            let before = task.inflight.len();
            task.inflight.retain(|f| f.worker != worker);
            if task.inflight.len() < before && task.inflight.is_empty() && task.output.is_none() {
                task.queued_at = Some(Instant::now());
            }
        }
    }

    /// Picks a live worker with a free map slot for `block`.
    ///
    /// Each worker runs one task at a time (a single map slot), so
    /// placement is over *free* workers only — dispatching into a busy
    /// worker's queue would make the driver's liveness clock charge one
    /// task's runtime to the next. Preference order: a free un-blamed
    /// replica holder; otherwise, while `wait_for_local` holds and an
    /// un-blamed holder is alive-but-busy, `None` (delay scheduling —
    /// wait a beat rather than pay a remote read); otherwise the best
    /// free worker, un-blamed before blamed, resident before remote,
    /// ties toward the lower party id. `avoid` excludes the worker
    /// already running the attempt (a speculative duplicate must use a
    /// different machine).
    fn place(
        &self,
        block: u64,
        blamed: &BTreeSet<PartyId>,
        avoid: Option<PartyId>,
        wait_for_local: bool,
    ) -> Option<PartyId> {
        let free: Vec<(PartyId, &RemoteWorker)> = self
            .workers
            .iter()
            .filter(|(p, w)| w.alive && Some(**p) != avoid && w.inflight == 0)
            .map(|(p, w)| (*p, w))
            .collect();
        if let Some(p) = free
            .iter()
            .filter(|(p, w)| w.resident.contains(&block) && !blamed.contains(p))
            .map(|(p, _)| *p)
            .min()
        {
            return Some(p);
        }
        let holder_alive = self.workers.iter().any(|(p, w)| {
            w.alive && Some(*p) != avoid && w.resident.contains(&block) && !blamed.contains(p)
        });
        if wait_for_local && holder_alive {
            return None;
        }
        free.iter()
            .min_by_key(|(p, w)| (blamed.contains(p), !w.resident.contains(&block), *p))
            .map(|(p, _)| *p)
    }

    /// Dispatches one attempt of `block` and records the accounting.
    /// Returns false when the send failed (worker declared dead; caller
    /// re-places on the next loop).
    fn dispatch(
        &mut self,
        worker: PartyId,
        block: u64,
        attempt: u32,
        broadcast: &[u8],
        tasks: &mut BTreeMap<u64, TaskState>,
    ) -> bool {
        let msg = Message::TaskDispatch {
            iteration: self.iteration,
            block,
            attempt,
            broadcast: broadcast.to_vec(),
        };
        if self.courier.send_reliable(worker, &msg).is_err() {
            self.declare_dead(worker, tasks);
            return false;
        }
        let local = self.workers[&worker].resident.contains(&block);
        if local {
            self.metrics.locality_hits += 1;
        } else {
            self.metrics.remote_reads += 1;
        }
        self.metrics.bytes_broadcast += broadcast.len();
        self.workers
            .get_mut(&worker)
            .expect("placed worker")
            .inflight += 1;
        emit(
            self.courier.party(),
            EventKind::TaskAttempt {
                block,
                node: worker,
                attempt,
                local,
            },
        );
        if Self::registry_enabled() {
            ClusterRegistry::global().fold_task_attempt(worker);
        }
        let task = tasks.entry(block).or_default();
        task.inflight.push(Inflight {
            worker,
            attempt,
            started: Instant::now(),
        });
        true
    }

    /// Runs one round: maps every block in `blocks` under `broadcast`
    /// and reduces the outputs in block order. Bit-identical to
    /// [`crate::job::run_local`] for the same job/seed/blocks/broadcast,
    /// whatever faults occur on the way.
    ///
    /// # Errors
    ///
    /// [`MapReduceError::QuorumLost`] when worker deaths leave fewer
    /// than `policy.quorum` alive; [`MapReduceError::TaskFailed`] when
    /// a task burns its whole `max_attempts` retry budget;
    /// [`MapReduceError::NoBlocks`] for an empty block list.
    pub fn run_round(
        &mut self,
        blocks: &[u64],
        broadcast: &[u8],
    ) -> Result<Vec<u8>, MapReduceError> {
        if blocks.is_empty() {
            return Err(MapReduceError::NoBlocks);
        }
        self.iteration += 1;
        let round_start = Instant::now();
        let mut tasks: BTreeMap<u64, TaskState> = blocks
            .iter()
            .map(|&b| {
                let t = TaskState {
                    queued_at: Some(round_start),
                    ..TaskState::default()
                };
                (b, t)
            })
            .collect();
        // Driver-observed durations of completed attempts this round
        // (dispatch → winning result), the speculation baseline.
        let mut durations: Vec<Duration> = Vec::new();

        loop {
            let alive = self.alive_workers();
            if alive < self.policy.quorum {
                return Err(MapReduceError::QuorumLost {
                    alive,
                    needed: self.policy.quorum,
                });
            }
            let done = tasks.values().filter(|t| t.output.is_some()).count();
            if done == tasks.len() {
                break;
            }

            // 1. Dispatch every queued task whose backoff has expired.
            let now = Instant::now();
            let queued: Vec<u64> = tasks
                .iter()
                .filter(|(_, t)| {
                    t.output.is_none()
                        && t.inflight.is_empty()
                        && t.retry_at.is_none_or(|at| at <= now)
                })
                .map(|(&b, _)| b)
                .collect();
            for block in queued {
                let task = &tasks[&block];
                if task.failures >= self.policy.max_attempts {
                    return Err(MapReduceError::TaskFailed {
                        block: BlockId(block),
                        attempts: task.failures,
                    });
                }
                let blamed = task.blamed.clone();
                let wait_for_local = task
                    .queued_at
                    .is_some_and(|q| now.duration_since(q) < self.policy.locality_wait);
                let Some(worker) = self.place(block, &blamed, None, wait_for_local) else {
                    continue; // all slots busy, or worth waiting for locality
                };
                let attempt = tasks
                    .get_mut(&block)
                    .map(|t| {
                        t.attempts_started += 1;
                        t.retry_at = None;
                        t.queued_at = None;
                        t.attempts_started
                    })
                    .expect("queued task exists");
                self.dispatch(worker, block, attempt, broadcast, &mut tasks);
            }

            // 2. Collect results for one slice.
            if let Ok(env) = self.courier.recv(RECV_SLICE) {
                if let Message::TaskResult {
                    iteration,
                    block,
                    attempt,
                    ok,
                    elapsed_ns: _,
                    output,
                } = env.msg
                {
                    // A zombie's late result frees its slot whatever
                    // round it belongs to.
                    self.free_zombie(env.from, block, attempt);
                    if iteration == self.iteration {
                        self.absorb_result(
                            env.from,
                            block,
                            attempt,
                            ok,
                            output,
                            &mut tasks,
                            &mut durations,
                        );
                    }
                }
            }

            // 3. Liveness sweep: an attempt past its timeout means a
            //    dead (or wedged) worker, not a slow task. Zombie slots
            //    expire on the same clock.
            let now = Instant::now();
            let overdue: Vec<PartyId> = tasks
                .values()
                .flat_map(|t| t.inflight.iter())
                .filter(|f| now.duration_since(f.started) > self.policy.attempt_timeout)
                .map(|f| f.worker)
                .chain(
                    self.zombies
                        .iter()
                        .filter(|z| now.duration_since(z.started) > self.policy.attempt_timeout)
                        .map(|z| z.worker),
                )
                .collect();
            for worker in overdue {
                self.declare_dead(worker, &mut tasks);
            }

            // 4. Speculation: duplicate the straggling attempt once most
            //    of the round is home and a baseline exists.
            if self.policy.speculate && durations.len() >= 2 && 2 * done >= tasks.len() {
                let mut sorted: Vec<Duration> = durations.clone();
                sorted.sort_unstable();
                let median = sorted[(sorted.len() - 1) / 2];
                let threshold = median.mul_f64(self.policy.speculation_factor);
                let candidates: Vec<(u64, PartyId, Duration)> = tasks
                    .iter()
                    .filter(|(_, t)| t.output.is_none() && !t.speculated && t.inflight.len() == 1)
                    .filter_map(|(&b, t)| {
                        let f = &t.inflight[0];
                        let elapsed = now.duration_since(f.started);
                        (elapsed > threshold).then_some((b, f.worker, elapsed))
                    })
                    .collect();
                for (block, running_on, elapsed) in candidates {
                    let blamed = tasks[&block].blamed.clone();
                    let Some(worker) = self.place(block, &blamed, Some(running_on), false) else {
                        continue; // nowhere else to run it
                    };
                    let attempt = tasks
                        .get_mut(&block)
                        .map(|t| {
                            t.attempts_started += 1;
                            t.speculated = true;
                            t.attempts_started
                        })
                        .expect("candidate task exists");
                    if self.dispatch(worker, block, attempt, broadcast, &mut tasks) {
                        self.metrics.task_speculations += 1;
                        emit(
                            self.courier.party(),
                            EventKind::TaskSpeculated {
                                block,
                                node: worker,
                                attempt,
                                elapsed_ns: elapsed.as_nanos() as u64,
                            },
                        );
                        if Self::registry_enabled() {
                            ClusterRegistry::global().fold_task_speculation(worker);
                        }
                    }
                }
            }
        }

        // Reduce in block order — completion order cannot leak into the
        // result, so faulted and fault-free runs agree byte-for-byte.
        let outputs: Vec<(u64, Vec<u8>)> = tasks
            .iter_mut()
            .map(|(&b, t)| (b, t.output.take().expect("round complete")))
            .collect();
        let reduce_start = Instant::now();
        let result = self.job.reduce(&outputs);
        self.metrics.reduce_time += reduce_start.elapsed();
        self.metrics.map_time += reduce_start.duration_since(round_start);
        self.metrics.iterations += 1;

        // Score the round's attempt lags and surface slow-worker
        // verdicts (the MapReduce twin of the learner straggler scorer).
        if Self::registry_enabled() {
            for v in ClusterRegistry::global().score_task_round(self.iteration) {
                if v.is_slow() {
                    emit(
                        self.courier.party(),
                        EventKind::SlowWorker {
                            node: v.party,
                            iteration: v.iteration,
                            lag_ns: v.lag_ns,
                            median_ns: v.median_ns,
                            score: v.score,
                        },
                    );
                }
            }
        }
        Ok(result)
    }

    /// Folds one `TaskResult` into the round state.
    #[allow(clippy::too_many_arguments)]
    fn absorb_result(
        &mut self,
        from: PartyId,
        block: u64,
        attempt: u32,
        ok: bool,
        output: Vec<u8>,
        tasks: &mut BTreeMap<u64, TaskState>,
        durations: &mut Vec<Duration>,
    ) {
        let Some(task) = tasks.get_mut(&block) else {
            return;
        };
        let Some(pos) = task
            .inflight
            .iter()
            .position(|f| f.attempt == attempt && f.worker == from)
        else {
            // Stale: a cancelled loser's late result (already freed via
            // the zombie list) or an attempt of a dead-declared worker.
            return;
        };
        let flight = task.inflight.swap_remove(pos);
        if let Some(w) = self.workers.get_mut(&from) {
            w.inflight = w.inflight.saturating_sub(1);
        }
        if ok {
            let elapsed = flight.started.elapsed();
            if task.output.is_none() {
                task.output = Some(output);
                self.metrics.bytes_shuffled += task.output.as_ref().map_or(0, Vec::len);
                durations.push(elapsed);
                if Self::registry_enabled() {
                    ClusterRegistry::global().observe_task_lag(
                        from,
                        self.iteration,
                        elapsed.as_nanos() as u64,
                    );
                }
                // First result wins; tell every sibling attempt to
                // stand down. Best-effort: the loser's late result is
                // de-duplicated here anyway. The loser's slot stays
                // occupied (zombie) until that late result surfaces.
                let losers: Vec<Inflight> = task.inflight.drain(..).collect();
                for loser in losers {
                    self.zombies.push(Zombie {
                        worker: loser.worker,
                        block,
                        attempt: loser.attempt,
                        started: loser.started,
                    });
                    let _ = self.courier.send_unreliable(
                        loser.worker,
                        &Message::TaskCancel {
                            iteration: self.iteration,
                            block,
                            attempt: loser.attempt,
                        },
                    );
                    self.cancels_sent += 1;
                }
            }
        } else {
            task.failures += 1;
            task.blamed.insert(from);
            self.metrics.task_retries += 1;
            let now = Instant::now();
            task.queued_at = Some(now);
            task.retry_at = Some(now + self.policy.retry.backoff(task.failures as u32));
        }
    }

    /// Sends an orderly [`Message::Shutdown`] to every live worker,
    /// retrying for a grace period: a straggler may still be busy with a
    /// (cancelled) attempt and unable to acknowledge anything until it
    /// surfaces — the retry loop keeps pumping the courier, which also
    /// acks the straggler's late result so it can drain its cancel and
    /// exit cleanly.
    pub fn shutdown(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut pending: Vec<PartyId> = self
            .workers
            .iter()
            .filter(|(_, w)| w.alive)
            .map(|(p, _)| *p)
            .collect();
        while !pending.is_empty() && Instant::now() < deadline {
            pending.retain(|&worker| {
                self.courier
                    .send_reliable(worker, &Message::Shutdown)
                    .is_err()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(nodes: usize, replication: usize, blocks: usize) -> (BlockStore<u32>, Vec<BlockId>) {
        let mut s = BlockStore::new(nodes, replication);
        let ids = (0..blocks as u32).map(|i| s.put(i)).collect();
        (s, ids)
    }

    #[test]
    fn all_local_when_blocks_match_nodes() {
        let (s, ids) = store(4, 1, 4);
        let plan = Scheduler::new(4).assign(&s, &ids, &[]);
        assert!(plan.iter().all(|t| t.data_local));
        // One task per node.
        let mut nodes: Vec<usize> = plan.iter().map(|t| t.node.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn balances_when_blocks_exceed_nodes() {
        let (s, ids) = store(2, 1, 6);
        let plan = Scheduler::new(2).assign(&s, &ids, &[]);
        let on0 = plan.iter().filter(|t| t.node.0 == 0).count();
        let on1 = plan.iter().filter(|t| t.node.0 == 1).count();
        assert_eq!(on0 + on1, 6);
        assert!((on0 as i64 - on1 as i64).abs() <= 1, "{on0} vs {on1}");
    }

    #[test]
    fn skewed_placement_forces_remote_reads() {
        // All blocks pinned to node 0 with no replicas: strict balance makes
        // some tasks remote.
        let mut s: BlockStore<u32> = BlockStore::new(4, 1);
        let ids: Vec<BlockId> = (0..8).map(|i| s.put_on(i, NodeId(0))).collect();
        let plan = Scheduler::new(4)
            .with_locality_slack(0)
            .assign(&s, &ids, &[]);
        let remote = plan.iter().filter(|t| !t.data_local).count();
        assert!(
            remote > 0,
            "expected some remote reads under strict balance"
        );
        // With unbounded slack, everything stays local on node 0.
        let plan = Scheduler::new(4)
            .with_locality_slack(100)
            .assign(&s, &ids, &[]);
        assert!(plan.iter().all(|t| t.data_local && t.node == NodeId(0)));
    }

    #[test]
    fn exclusion_moves_task_elsewhere() {
        let (s, ids) = store(3, 1, 3);
        let first = Scheduler::new(3).assign(&s, &ids, &[]);
        let victim = first[0];
        let replan = Scheduler::new(3).assign(&s, &ids[..1], &[(victim.block, victim.node)]);
        assert_ne!(replan[0].node, victim.node);
    }

    #[test]
    fn deterministic() {
        let (s, ids) = store(4, 2, 10);
        let a = Scheduler::new(4).assign(&s, &ids, &[]);
        let b = Scheduler::new(4).assign(&s, &ids, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn replication_improves_locality_under_exclusion() {
        // With replication 2, excluding the primary still leaves a local
        // placement.
        let (s, ids) = store(4, 2, 4);
        let reps = s.replicas(ids[0]).unwrap().to_vec();
        let plan = Scheduler::new(4).assign(&s, &ids[..1], &[(ids[0], reps[0])]);
        assert!(plan[0].data_local);
        assert_eq!(plan[0].node, reps[1]);
    }
}

#[cfg(test)]
mod task_scheduler_tests {
    use std::thread::JoinHandle;

    use ppml_transport::{LoopbackHub, TransportError};

    use super::*;
    use crate::job::{process_job, run_local};
    use crate::worker::{serve, WorkerOptions, WorkerReport};

    const SEED: u64 = 42;

    /// Blocks resident on worker `party` (1-based) out of `workers`.
    fn resident(blocks: &[u64], party: u32, workers: usize) -> Vec<u64> {
        blocks
            .iter()
            .copied()
            .filter(|b| 1 + (b % workers as u64) as u32 == party)
            .collect()
    }

    /// Spins up `opts.len()` worker threads on a loopback hub and a
    /// registered driver-side scheduler over them.
    fn pool(
        blocks: &[u64],
        opts: Vec<WorkerOptions>,
        policy: TaskPolicy,
    ) -> (
        TaskScheduler<ppml_transport::LoopbackTransport>,
        Vec<JoinHandle<Result<WorkerReport, TransportError>>>,
    ) {
        let workers = opts.len();
        let hub = LoopbackHub::new(workers + 1);
        let mut handles = Vec::new();
        for (i, opt) in opts.into_iter().enumerate() {
            let party = (i + 1) as u32;
            let mine = resident(blocks, party, workers);
            let endpoint = hub.endpoint(party);
            handles.push(std::thread::spawn(move || {
                let mut courier = Courier::new(endpoint, RetryPolicy::fast_local());
                let job = process_job("wordcount").unwrap();
                serve(&mut courier, 0, job.as_ref(), SEED, &mine, &opt)
            }));
        }
        let courier = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut sched = TaskScheduler::new(courier, process_job("wordcount").unwrap(), policy);
        sched
            .register_workers(workers, Duration::from_secs(5))
            .expect("registration");
        (sched, handles)
    }

    fn reference(blocks: &[u64]) -> Vec<u8> {
        let job = process_job("wordcount").unwrap();
        run_local(job.as_ref(), SEED, blocks, &[])
    }

    #[test]
    fn fault_free_round_matches_run_local_and_stays_local() {
        let blocks = [0u64, 1, 2, 3, 4, 5];
        // A generous delay-scheduling budget and no speculation: no
        // block may run off its (healthy) holder just because the test
        // host hiccuped — this test pins down the pure locality path.
        let policy = TaskPolicy {
            locality_wait: Duration::from_secs(5),
            speculate: false,
            ..TaskPolicy::default()
        };
        let (mut sched, handles) = pool(&blocks, vec![WorkerOptions::default(); 3], policy);
        let out = sched.run_round(&blocks, &[]).expect("round");
        assert_eq!(out, reference(&blocks));
        // Every block had its holder free: placement should be all-local.
        assert_eq!(sched.metrics.remote_reads, 0);
        assert_eq!(sched.metrics.locality_hits, blocks.len());
        sched.shutdown();
        for h in handles {
            assert!(!h.join().unwrap().unwrap().died);
        }
    }

    #[test]
    fn failed_attempts_retry_elsewhere_bit_identically() {
        let blocks = [0u64, 1, 2, 3];
        let mut opts = vec![WorkerOptions::default(); 2];
        // Worker 1 (holder of even blocks) refuses block 2: the retry
        // must land on worker 2 and still produce the reference bytes.
        // The long locality wait pins the first attempt to the holder.
        opts[0].fail_blocks = vec![2];
        let policy = TaskPolicy {
            locality_wait: Duration::from_secs(5),
            ..TaskPolicy::default()
        };
        let (mut sched, handles) = pool(&blocks, opts, policy);
        let out = sched.run_round(&blocks, &[]).expect("round");
        assert_eq!(out, reference(&blocks));
        assert!(sched.metrics.task_retries >= 1);
        sched.shutdown();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn dead_worker_requeues_inflight_on_survivors() {
        let blocks = [0u64, 1];
        let mut opts = vec![WorkerOptions::default(); 2];
        // Worker 2 dies mid-task on its first dispatch, never replying.
        opts[1].die_on_task = Some(1);
        let policy = TaskPolicy {
            attempt_timeout: Duration::from_millis(750),
            ..TaskPolicy::default()
        };
        let (mut sched, handles) = pool(&blocks, opts, policy);
        let out = sched.run_round(&blocks, &[]).expect("round");
        assert_eq!(out, reference(&blocks));
        assert_eq!(sched.metrics.workers_lost, 1);
        // The re-queued block ran away from its (dead) holder.
        assert!(sched.metrics.remote_reads >= 1);
        assert_eq!(sched.alive_workers(), 1);
        sched.shutdown();
        let reports: Vec<WorkerReport> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        assert_eq!(reports.iter().filter(|r| r.died).count(), 1);
    }

    #[test]
    fn retry_exhaustion_is_a_typed_error_not_a_hang() {
        let blocks = [0u64, 1];
        let mut opts = vec![WorkerOptions::default(); 2];
        // Block 0 fails everywhere: the budget must burn out quickly.
        opts[0].fail_blocks = vec![0];
        opts[1].fail_blocks = vec![0];
        let policy = TaskPolicy {
            max_attempts: 2,
            ..TaskPolicy::default()
        };
        let (mut sched, handles) = pool(&blocks, opts, policy);
        let err = sched.run_round(&blocks, &[]).expect_err("must exhaust");
        assert_eq!(
            err,
            MapReduceError::TaskFailed {
                block: BlockId(0),
                attempts: 2,
            }
        );
        sched.shutdown();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn quorum_loss_is_a_typed_error() {
        let blocks = [0u64];
        let opts = vec![WorkerOptions {
            die_on_task: Some(1),
            ..WorkerOptions::default()
        }];
        let policy = TaskPolicy {
            attempt_timeout: Duration::from_millis(100),
            ..TaskPolicy::default()
        };
        let (mut sched, handles) = pool(&blocks, opts, policy);
        let err = sched.run_round(&blocks, &[]).expect_err("must lose quorum");
        assert_eq!(
            err,
            MapReduceError::QuorumLost {
                alive: 0,
                needed: 1
            }
        );
        for h in handles {
            assert!(h.join().unwrap().unwrap().died);
        }
    }

    #[test]
    fn speculation_beats_the_straggler_and_cancels_the_loser() {
        let blocks = [0u64, 1, 2, 3];
        let mut opts = vec![WorkerOptions::default(); 2];
        // Worker 2 (holder of odd blocks) is pathologically slow; the
        // duplicate attempts on worker 1 must win the race.
        opts[1].lag = Duration::from_millis(400);
        let policy = TaskPolicy {
            speculation_factor: 1.5,
            ..TaskPolicy::default()
        };
        let started = Instant::now();
        let (mut sched, handles) = pool(&blocks, opts, policy);
        let out = sched.run_round(&blocks, &[]).expect("round");
        assert_eq!(out, reference(&blocks));
        assert!(sched.metrics.task_speculations >= 1, "no speculation fired");
        assert!(sched.cancels_sent >= 1, "winner never cancelled the loser");
        // Two straggling tasks at 400ms each would serialise to 800ms on
        // the slow worker; speculation must beat that comfortably.
        assert!(
            started.elapsed() < Duration::from_millis(700),
            "speculation did not shorten the round: {:?}",
            started.elapsed()
        );
        sched.shutdown();
        // The slow worker saw at least one cancel (late or pre-empting).
        let mut cancels = 0;
        for h in handles {
            // The straggler may still be blocked re-sending a result the
            // driver no longer waits for; tolerate its timeout.
            if let Ok(report) = h.join().unwrap() {
                cancels += report.cancels_seen;
            }
        }
        assert!(cancels >= 1, "loser never learned it lost");
    }

    #[test]
    fn mismatched_job_name_is_rejected_at_registration() {
        let hub = LoopbackHub::new(2);
        let endpoint = hub.endpoint(1);
        let handle = std::thread::spawn(move || {
            let mut courier = Courier::new(endpoint, RetryPolicy::fast_local());
            let job = process_job("spin").unwrap();
            serve(
                &mut courier,
                0,
                job.as_ref(),
                SEED,
                &[0],
                &WorkerOptions {
                    idle_timeout: Duration::from_millis(200),
                    ..WorkerOptions::default()
                },
            )
        });
        let courier = Courier::new(hub.endpoint(0), RetryPolicy::fast_local());
        let mut sched = TaskScheduler::new(
            courier,
            process_job("wordcount").unwrap(),
            TaskPolicy::default(),
        );
        let err = sched
            .register_workers(1, Duration::from_secs(2))
            .expect_err("job mismatch");
        assert!(matches!(err, MapReduceError::BadWorker { .. }), "{err:?}");
        let _ = handle.join().unwrap();
    }
}
