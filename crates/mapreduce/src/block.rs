//! In-memory stand-in for HDFS block placement.
//!
//! Each block is stored on `replication` distinct nodes, chosen
//! deterministically from a seed (rack-awareness is out of scope — the
//! paper's privacy argument only needs "a block's data lives on its owning
//! learner's node"). The [`crate::Scheduler`] consults the placement map to
//! schedule map tasks onto replicas.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::NodeId;

/// Identifier of a stored block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// Block placement directory plus payload storage.
///
/// Payloads are reference-counted: handing one to a worker thread is a
/// pointer copy, matching the "local read" the placement is supposed to
/// model (remote reads are charged by the scheduler, not copied again).
#[derive(Debug)]
pub struct BlockStore<T> {
    nodes: usize,
    replication: usize,
    blocks: BTreeMap<BlockId, Arc<T>>,
    placement: BTreeMap<BlockId, Vec<NodeId>>,
    next_id: u64,
    rr_cursor: usize,
}

impl<T> BlockStore<T> {
    /// Creates a store over `nodes` data nodes with the given replication
    /// factor.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `replication == 0`, or
    /// `replication > nodes` — caller ([`crate::Cluster`]) validates first.
    pub fn new(nodes: usize, replication: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(
            replication >= 1 && replication <= nodes,
            "replication {replication} invalid for {nodes} nodes"
        );
        BlockStore {
            nodes,
            replication,
            blocks: BTreeMap::new(),
            placement: BTreeMap::new(),
            next_id: 0,
            rr_cursor: 0,
        }
    }

    /// Stores a block, placing its replicas round-robin starting at a
    /// rotating cursor (even spread without randomness).
    pub fn put(&mut self, payload: T) -> BlockId {
        let id = BlockId(self.next_id);
        self.next_id += 1;
        let primary = self.rr_cursor % self.nodes;
        self.rr_cursor += 1;
        let replicas: Vec<NodeId> = (0..self.replication)
            .map(|k| NodeId((primary + k) % self.nodes))
            .collect();
        self.blocks.insert(id, Arc::new(payload));
        self.placement.insert(id, replicas);
        id
    }

    /// Stores a block pinned to an explicit primary node (used by the
    /// trainers: learner `m`'s partition must live on learner `m`'s node).
    ///
    /// # Panics
    ///
    /// Panics if `primary` is not a valid node.
    pub fn put_on(&mut self, payload: T, primary: NodeId) -> BlockId {
        assert!(primary.0 < self.nodes, "no such node {primary}");
        let id = BlockId(self.next_id);
        self.next_id += 1;
        let replicas: Vec<NodeId> = (0..self.replication)
            .map(|k| NodeId((primary.0 + k) % self.nodes))
            .collect();
        self.blocks.insert(id, Arc::new(payload));
        self.placement.insert(id, replicas);
        id
    }

    /// Shared handle to a block's payload.
    pub fn payload(&self, id: BlockId) -> Option<Arc<T>> {
        self.blocks.get(&id).cloned()
    }

    /// Nodes holding a replica of the block (primary first).
    pub fn replicas(&self, id: BlockId) -> Option<&[NodeId]> {
        self.placement.get(&id).map(Vec::as_slice)
    }

    /// All block ids in insertion order.
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.blocks.keys().copied().collect()
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of data nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Blocks whose replica set includes `node`.
    pub fn blocks_on(&self, node: NodeId) -> Vec<BlockId> {
        self.placement
            .iter()
            .filter(|(_, reps)| reps.contains(&node))
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_respects_replication() {
        let mut s: BlockStore<u32> = BlockStore::new(4, 2);
        let ids: Vec<BlockId> = (0..8).map(|i| s.put(i)).collect();
        for id in &ids {
            let reps = s.replicas(*id).unwrap();
            assert_eq!(reps.len(), 2);
            assert_ne!(reps[0], reps[1]);
        }
    }

    #[test]
    fn round_robin_spreads_primaries_evenly() {
        let mut s: BlockStore<u32> = BlockStore::new(4, 1);
        for i in 0..8 {
            s.put(i);
        }
        for n in 0..4 {
            assert_eq!(s.blocks_on(NodeId(n)).len(), 2);
        }
    }

    #[test]
    fn put_on_pins_primary() {
        let mut s: BlockStore<&str> = BlockStore::new(3, 2);
        let id = s.put_on("learner-2 data", NodeId(2));
        let reps = s.replicas(id).unwrap();
        assert_eq!(reps[0], NodeId(2));
        assert_eq!(*s.payload(id).unwrap(), "learner-2 data");
    }

    #[test]
    fn payload_is_shared_not_copied() {
        let mut s: BlockStore<Vec<u8>> = BlockStore::new(1, 1);
        let id = s.put(vec![1, 2, 3]);
        let a = s.payload(id).unwrap();
        let b = s.payload(id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn missing_block_is_none() {
        let s: BlockStore<u8> = BlockStore::new(1, 1);
        assert!(s.payload(BlockId(99)).is_none());
        assert!(s.replicas(BlockId(99)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn rejects_replication_above_nodes() {
        let _ = BlockStore::<u8>::new(2, 3);
    }
}
