//! Deterministic fault injection for map task attempts.
//!
//! Production MapReduce tolerates task failure by re-execution; the trainers
//! inherit that for free because their mapper state lives with the driver
//! between iterations. The plan here lets tests and benches kill or delay
//! *specific attempts* of specific blocks at specific iterations, so
//! re-execution paths are exercised deterministically rather than by luck.

use std::collections::BTreeMap;
use std::time::Duration;

use ppml_telemetry::mix64;

use crate::{BlockId, NodeId};

/// What to do to one (iteration, block) map task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Fail this many initial attempts (each failure triggers a retry on
    /// another node).
    pub fail_attempts: usize,
    /// Artificial execution delay applied to every attempt (straggler
    /// simulation).
    pub delay: Duration,
}

/// A schedule of injected faults.
///
/// # Example
///
/// ```
/// use ppml_mapreduce::{BlockId, FaultPlan, FaultSpec};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .fail_first_attempts(2, BlockId(0), 1)           // iteration 2: one failure
///     .delay(3, BlockId(1), Duration::from_millis(5)); // iteration 3: straggler
/// assert_eq!(plan.spec(2, BlockId(0)).fail_attempts, 1);
/// ```
/// What to do to one worker (node), across every task it runs — the
/// worker-level twin of the per-task [`FaultSpec`], mirroring the
/// transport crate's `LinkFilter`-style plans: a straggler is slowed on
/// *every* attempt, and a crash kills the worker at a counted point so
/// the schedule is deterministic and reusable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerFault {
    /// Artificial per-task delay (straggler simulation): the worker
    /// sleeps this long before every map attempt it executes.
    pub slow_by: Duration,
    /// Kill the worker *mid-task* while it executes its Nth assigned
    /// task (1-based count across the whole job): the task's result is
    /// never sent and the worker is gone, exactly like a SIGKILL at
    /// that point. `None` = never.
    pub kill_on_task: Option<usize>,
}

/// A schedule of injected faults.
///
/// Per-task faults (`fail_first_attempts`, `delay`) are keyed by
/// `(iteration, block)`; worker-level faults (`slow_worker`,
/// `kill_worker_on_task`, or a whole [`FaultPlan::seeded`] schedule)
/// are keyed by node and apply for the worker's lifetime.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: BTreeMap<(usize, BlockId), FaultSpec>,
    workers: BTreeMap<NodeId, WorkerFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fails the first `attempts` attempts of `block`'s map task at
    /// `iteration`.
    pub fn fail_first_attempts(
        mut self,
        iteration: usize,
        block: BlockId,
        attempts: usize,
    ) -> Self {
        self.specs
            .entry((iteration, block))
            .or_default()
            .fail_attempts = attempts;
        self
    }

    /// Delays every attempt of `block`'s map task at `iteration`.
    pub fn delay(mut self, iteration: usize, block: BlockId, delay: Duration) -> Self {
        self.specs.entry((iteration, block)).or_default().delay = delay;
        self
    }

    /// Slows `node` down: every map attempt it executes sleeps `by`
    /// first (worker-level straggler).
    pub fn slow_worker(mut self, node: NodeId, by: Duration) -> Self {
        self.workers.entry(node).or_default().slow_by = by;
        self
    }

    /// Kills `node` mid-task while it executes its `task`th assigned
    /// task (1-based): the result is never sent and the worker is gone.
    pub fn kill_worker_on_task(mut self, node: NodeId, task: usize) -> Self {
        self.workers.entry(node).or_default().kill_on_task = Some(task.max(1));
        self
    }

    /// A deterministic straggler-and-crash schedule derived from `seed`:
    /// one worker is slowed by `slow_by` on every task and a *different*
    /// worker is killed mid-way through its second task. Which workers
    /// draw the short straws is a pure function of `(seed, nodes)`, so a
    /// chaos test can replay the exact same schedule by replaying the
    /// seed. Needs `nodes >= 2`; with fewer there is no "different
    /// worker" and the plan stays empty.
    pub fn seeded(seed: u64, nodes: usize, slow_by: Duration) -> Self {
        if nodes < 2 {
            return FaultPlan::new();
        }
        let slow = (mix64(seed) % nodes as u64) as usize;
        let victim = (slow + 1 + (mix64(seed ^ 0xDEAD) % (nodes as u64 - 1)) as usize) % nodes;
        FaultPlan::new()
            .slow_worker(NodeId(slow), slow_by)
            .kill_worker_on_task(NodeId(victim), 2)
    }

    /// The spec applying to one task (default = no fault).
    pub fn spec(&self, iteration: usize, block: BlockId) -> FaultSpec {
        self.specs
            .get(&(iteration, block))
            .copied()
            .unwrap_or_default()
    }

    /// The fault applying to one worker (default = no fault).
    pub fn worker(&self, node: NodeId) -> WorkerFault {
        self.workers.get(&node).copied().unwrap_or_default()
    }

    /// `true` when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty() && self.workers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_no_fault() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let s = plan.spec(0, BlockId(0));
        assert_eq!(s.fail_attempts, 0);
        assert_eq!(s.delay, Duration::ZERO);
    }

    #[test]
    fn builder_accumulates_on_same_key() {
        let plan = FaultPlan::new()
            .fail_first_attempts(1, BlockId(2), 3)
            .delay(1, BlockId(2), Duration::from_millis(7));
        let s = plan.spec(1, BlockId(2));
        assert_eq!(s.fail_attempts, 3);
        assert_eq!(s.delay, Duration::from_millis(7));
        assert!(!plan.is_empty());
    }

    #[test]
    fn keys_are_independent() {
        let plan = FaultPlan::new().fail_first_attempts(1, BlockId(0), 1);
        assert_eq!(plan.spec(1, BlockId(1)).fail_attempts, 0);
        assert_eq!(plan.spec(2, BlockId(0)).fail_attempts, 0);
    }

    #[test]
    fn worker_faults_are_per_node() {
        let plan = FaultPlan::new()
            .slow_worker(NodeId(1), Duration::from_millis(9))
            .kill_worker_on_task(NodeId(2), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.worker(NodeId(1)).slow_by, Duration::from_millis(9));
        assert_eq!(plan.worker(NodeId(1)).kill_on_task, None);
        assert_eq!(plan.worker(NodeId(2)).kill_on_task, Some(3));
        assert_eq!(plan.worker(NodeId(0)), WorkerFault::default());
    }

    #[test]
    fn kill_on_task_zero_clamps_to_first_task() {
        let plan = FaultPlan::new().kill_worker_on_task(NodeId(0), 0);
        assert_eq!(plan.worker(NodeId(0)).kill_on_task, Some(1));
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_disjoint() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 4, Duration::from_millis(5));
            let b = FaultPlan::seeded(seed, 4, Duration::from_millis(5));
            let slow_a: Vec<_> = (0..4)
                .map(NodeId)
                .filter(|&n| a.worker(n).slow_by > Duration::ZERO)
                .collect();
            let kill_a: Vec<_> = (0..4)
                .map(NodeId)
                .filter(|&n| a.worker(n).kill_on_task.is_some())
                .collect();
            assert_eq!(slow_a.len(), 1, "seed {seed}");
            assert_eq!(kill_a.len(), 1, "seed {seed}");
            assert_ne!(slow_a[0], kill_a[0], "seed {seed}: victims must differ");
            for n in (0..4).map(NodeId) {
                assert_eq!(a.worker(n), b.worker(n), "seed {seed} not reproducible");
            }
        }
        // Too small a cluster to keep the victims disjoint: no faults.
        assert!(FaultPlan::seeded(7, 1, Duration::from_millis(5)).is_empty());
    }
}
