//! Deterministic fault injection for map task attempts.
//!
//! Production MapReduce tolerates task failure by re-execution; the trainers
//! inherit that for free because their mapper state lives with the driver
//! between iterations. The plan here lets tests and benches kill or delay
//! *specific attempts* of specific blocks at specific iterations, so
//! re-execution paths are exercised deterministically rather than by luck.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::BlockId;

/// What to do to one (iteration, block) map task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Fail this many initial attempts (each failure triggers a retry on
    /// another node).
    pub fail_attempts: usize,
    /// Artificial execution delay applied to every attempt (straggler
    /// simulation).
    pub delay: Duration,
}

/// A schedule of injected faults.
///
/// # Example
///
/// ```
/// use ppml_mapreduce::{BlockId, FaultPlan, FaultSpec};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .fail_first_attempts(2, BlockId(0), 1)           // iteration 2: one failure
///     .delay(3, BlockId(1), Duration::from_millis(5)); // iteration 3: straggler
/// assert_eq!(plan.spec(2, BlockId(0)).fail_attempts, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: BTreeMap<(usize, BlockId), FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fails the first `attempts` attempts of `block`'s map task at
    /// `iteration`.
    pub fn fail_first_attempts(
        mut self,
        iteration: usize,
        block: BlockId,
        attempts: usize,
    ) -> Self {
        self.specs
            .entry((iteration, block))
            .or_default()
            .fail_attempts = attempts;
        self
    }

    /// Delays every attempt of `block`'s map task at `iteration`.
    pub fn delay(mut self, iteration: usize, block: BlockId, delay: Duration) -> Self {
        self.specs.entry((iteration, block)).or_default().delay = delay;
        self
    }

    /// The spec applying to one task (default = no fault).
    pub fn spec(&self, iteration: usize, block: BlockId) -> FaultSpec {
        self.specs
            .get(&(iteration, block))
            .copied()
            .unwrap_or_default()
    }

    /// `true` when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_no_fault() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let s = plan.spec(0, BlockId(0));
        assert_eq!(s.fail_attempts, 0);
        assert_eq!(s.delay, Duration::ZERO);
    }

    #[test]
    fn builder_accumulates_on_same_key() {
        let plan = FaultPlan::new()
            .fail_first_attempts(1, BlockId(2), 3)
            .delay(1, BlockId(2), Duration::from_millis(7));
        let s = plan.spec(1, BlockId(2));
        assert_eq!(s.fail_attempts, 3);
        assert_eq!(s.delay, Duration::from_millis(7));
        assert!(!plan.is_empty());
    }

    #[test]
    fn keys_are_independent() {
        let plan = FaultPlan::new().fail_first_attempts(1, BlockId(0), 1);
        assert_eq!(plan.spec(1, BlockId(1)).fail_attempts, 0);
        assert_eq!(plan.spec(2, BlockId(0)).fail_attempts, 0);
    }
}
