//! The worker half of the multi-process MapReduce protocol.
//!
//! A worker is one OS process serving map tasks over a
//! [`Courier`]: it registers with the driver
//! (a [`Message::Blob`] carrying job name and resident blocks), then
//! loops on [`Message::TaskDispatch`] → map → [`Message::TaskResult`]
//! until a [`Message::Shutdown`] arrives. The loop is deliberately
//! single-threaded — one task at a time — which is what makes a slow
//! worker *visibly* slow to the driver and gives the speculation drill
//! something real to race against.
//!
//! Fault hooks ([`WorkerOptions`]) mirror the in-process
//! [`crate::FaultPlan`] worker faults: an artificial per-task lag
//! (straggler), a counted mid-task death (the process returns without
//! replying, indistinguishable from SIGKILL to the driver), and
//! per-block failure injection (exercises bounded retry).

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use ppml_transport::{
    Courier, Envelope, Message, PartyId, Reader, Transport, TransportError, Wire,
};

use crate::job::ProcessJob;

/// `Blob` tag announcing a worker to the driver ("MR" little-endian).
pub const REGISTER_TAG: u16 = 0x524D;

/// Encodes a worker registration blob: job name plus resident blocks.
#[must_use]
pub fn encode_register(job: &str, blocks: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    job.to_string().encode_into(&mut out);
    blocks.to_vec().encode_into(&mut out);
    out
}

/// Decodes a worker registration blob back into `(job, blocks)`.
///
/// # Errors
///
/// A human-readable reason when the blob is truncated or malformed.
pub fn decode_register(bytes: &[u8]) -> Result<(String, Vec<u64>), String> {
    let mut r = Reader::new(bytes);
    let job = r.string().map_err(|e| format!("register job: {e}"))?;
    let blocks = r.vec_u64().map_err(|e| format!("register blocks: {e}"))?;
    if r.remaining() != 0 {
        return Err(format!(
            "register blob has {} trailing bytes",
            r.remaining()
        ));
    }
    Ok((job, blocks))
}

/// Fault hooks and loop knobs for one worker process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Sleep this long before executing every map task (straggler).
    pub lag: Duration,
    /// Exit the serve loop *mid-task* while executing the Nth dispatched
    /// task (1-based) — the result is never sent, so the driver sees a
    /// silent death exactly like a SIGKILL. `None` = never.
    pub die_on_task: Option<usize>,
    /// Blocks whose map attempts report failure instead of running
    /// (bounded-retry exercise).
    pub fail_blocks: Vec<u64>,
    /// Give up when no message arrives for this long. A worker that has
    /// lost its driver must exit rather than hang forever.
    pub idle_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            lag: Duration::ZERO,
            die_on_task: None,
            fail_blocks: Vec::new(),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// What a worker did over its lifetime (returned by [`serve`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Map attempts executed and answered (ok or injected failure).
    pub tasks_done: usize,
    /// Dispatches skipped because a cancel arrived first, plus cancels
    /// for tasks already answered (speculation losers).
    pub cancels_seen: usize,
    /// True when the worker exited via its `die_on_task` fault.
    pub died: bool,
}

/// Serves map tasks to the driver until shutdown.
///
/// Registers `(job, blocks)` with the driver, then answers every
/// [`Message::TaskDispatch`] with a [`Message::TaskResult`] (`ok=false`
/// carries a UTF-8 reason in `output`). [`Message::TaskCancel`]
/// suppresses a not-yet-executed dispatch of that exact attempt;
/// cancels that arrive late are counted but otherwise moot, because the
/// driver de-duplicates results by attempt id.
///
/// # Errors
///
/// Propagates transport failures; [`TransportError::Timeout`] after
/// `idle_timeout` of silence.
pub fn serve<T: Transport>(
    courier: &mut Courier<T>,
    driver: PartyId,
    job: &dyn ProcessJob,
    seed: u64,
    blocks: &[u64],
    opts: &WorkerOptions,
) -> Result<WorkerReport, TransportError> {
    courier.send_reliable(
        driver,
        &Message::Blob {
            tag: REGISTER_TAG,
            bytes: encode_register(job.name(), blocks),
        },
    )?;

    let mut report = WorkerReport::default();
    let mut dispatched = 0usize;
    let mut cancelled: BTreeSet<(u64, u64, u32)> = BTreeSet::new();
    loop {
        let Envelope { from, msg, .. } = courier.recv(opts.idle_timeout)?;
        if from != driver {
            continue;
        }
        match msg {
            Message::TaskDispatch {
                iteration,
                block,
                attempt,
                broadcast,
            } => {
                if cancelled.remove(&(iteration, block, attempt)) {
                    report.cancels_seen += 1;
                    continue;
                }
                dispatched += 1;
                if opts.die_on_task == Some(dispatched) {
                    report.died = true;
                    return Ok(report);
                }
                if opts.lag > Duration::ZERO {
                    std::thread::sleep(opts.lag);
                }
                let started = Instant::now();
                let outcome = if opts.fail_blocks.contains(&block) {
                    Err(format!("injected failure for block {block}"))
                } else {
                    job.map(&job.make_block(seed, block), &broadcast)
                };
                let elapsed_ns = started.elapsed().as_nanos() as u64;
                let (ok, output) = match outcome {
                    Ok(bytes) => (true, bytes),
                    Err(reason) => (false, reason.into_bytes()),
                };
                report.tasks_done += 1;
                courier.send_reliable(
                    driver,
                    &Message::TaskResult {
                        iteration,
                        block,
                        attempt,
                        ok,
                        elapsed_ns,
                        output,
                    },
                )?;
            }
            Message::TaskCancel {
                iteration,
                block,
                attempt,
            } => {
                // Single-threaded loop: a cancel can only preempt a
                // dispatch still queued behind it. Late cancels (the
                // common speculation-loser case) are counted so drills
                // can assert the loser was told.
                cancelled.insert((iteration, block, attempt));
                report.cancels_seen += 1;
            }
            Message::Shutdown => return Ok(report),
            // Liveness probes and anything else are the courier's
            // business (acked there); the task loop ignores them.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_blob_round_trips() {
        let bytes = encode_register("wordcount", &[0, 3, 9]);
        let (job, blocks) = decode_register(&bytes).unwrap();
        assert_eq!(job, "wordcount");
        assert_eq!(blocks, vec![0, 3, 9]);
    }

    #[test]
    fn register_blob_rejects_junk() {
        assert!(decode_register(&[1, 2, 3]).is_err());
        let mut bytes = encode_register("spin", &[1]);
        bytes.push(0xFF);
        let err = decode_register(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
