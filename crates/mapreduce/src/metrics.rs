//! Runtime cost accounting.

use std::time::Duration;

/// Aggregate metrics for a job (accumulated across iterations).
///
/// These carry the paper's systems claims: `locality_hits` vs
/// `remote_reads` quantify data locality, `bytes_shuffled` vs the raw data
/// size quantifies "moving computation results is much cheaper than moving
/// data" (§I).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Iterations driven so far.
    pub iterations: usize,
    /// Map task attempts that ran on a node holding a replica.
    pub locality_hits: usize,
    /// Map task attempts that had to read their block remotely.
    pub remote_reads: usize,
    /// Map task attempts that failed (fault injection or panic) and were
    /// retried.
    pub task_retries: usize,
    /// Speculative duplicate attempts launched against stragglers.
    pub task_speculations: usize,
    /// Workers that died mid-job (thread exit, process crash, or an
    /// unreachable peer) whose tasks were re-queued on survivors.
    pub workers_lost: usize,
    /// Bytes of map output crossing the simulated network (shuffle).
    pub bytes_shuffled: usize,
    /// Bytes of broadcast state pushed to mappers (feedback channel).
    pub bytes_broadcast: usize,
    /// Bytes of block payload read remotely due to locality misses.
    pub bytes_remote_read: usize,
    /// Wall-clock spent inside map tasks (summed over tasks).
    pub map_time: Duration,
    /// Wall-clock spent inside reduce calls.
    pub reduce_time: Duration,
}

impl JobMetrics {
    /// Fraction of map attempts that were data-local (1.0 when no attempts
    /// ran yet).
    pub fn locality_ratio(&self) -> f64 {
        let total = self.locality_hits + self.remote_reads;
        if total == 0 {
            1.0
        } else {
            self.locality_hits as f64 / total as f64
        }
    }

    /// Total bytes that crossed the simulated network.
    pub fn total_network_bytes(&self) -> usize {
        self.bytes_shuffled + self.bytes_broadcast + self.bytes_remote_read
    }

    /// Folds another metrics block into this one.
    pub fn merge(&mut self, other: &JobMetrics) {
        self.iterations += other.iterations;
        self.locality_hits += other.locality_hits;
        self.remote_reads += other.remote_reads;
        self.task_retries += other.task_retries;
        self.task_speculations += other.task_speculations;
        self.workers_lost += other.workers_lost;
        self.bytes_shuffled += other.bytes_shuffled;
        self.bytes_broadcast += other.bytes_broadcast;
        self.bytes_remote_read += other.bytes_remote_read;
        self.map_time += other.map_time;
        self.reduce_time += other.reduce_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_ratio_handles_empty() {
        assert_eq!(JobMetrics::default().locality_ratio(), 1.0);
    }

    #[test]
    fn locality_ratio_counts() {
        let m = JobMetrics {
            locality_hits: 3,
            remote_reads: 1,
            ..Default::default()
        };
        assert_eq!(m.locality_ratio(), 0.75);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JobMetrics {
            iterations: 1,
            bytes_shuffled: 10,
            map_time: Duration::from_millis(5),
            ..Default::default()
        };
        let b = JobMetrics {
            iterations: 2,
            bytes_shuffled: 7,
            map_time: Duration::from_millis(3),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.iterations, 3);
        assert_eq!(a.bytes_shuffled, 17);
        assert_eq!(a.map_time, Duration::from_millis(8));
    }

    #[test]
    fn network_bytes_totals() {
        let m = JobMetrics {
            bytes_shuffled: 1,
            bytes_broadcast: 2,
            bytes_remote_read: 4,
            ..Default::default()
        };
        assert_eq!(m.total_network_bytes(), 7);
    }
}
