//! The threaded cluster runtime: workers, shuffle, reduce, iteration driver.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppml_telemetry as telemetry;
use ppml_transport::FRAME_OVERHEAD;
use telemetry::{ClusterRegistry, EventKind, NO_PARTY};

use crate::fault::WorkerFault;
use crate::{
    BlockId, BlockStore, ByteSized, FaultPlan, IterativeJob, JobMetrics, MapReduceError, NodeId,
    Scheduler,
};

/// How often the driver wakes from the result queue to sweep for
/// overdue attempts.
const RECV_SLICE: Duration = Duration::from_millis(5);

/// Static description of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data/compute nodes (the paper's `M` learners map 1:1 onto
    /// nodes in the trainers).
    pub nodes: usize,
    /// Concurrent map slots per node.
    pub map_slots_per_node: usize,
    /// HDFS-style replication factor for stored blocks.
    pub replication: usize,
    /// Per-task retry budget (attempts, not retries).
    pub max_attempts: usize,
    /// Injected faults (empty by default).
    pub fault_plan: FaultPlan,
    /// Scheduler locality/balance trade-off; see
    /// [`Scheduler::with_locality_slack`].
    pub locality_slack: usize,
    /// Number of parallel reduce tasks per iteration. `1` reduces inline on
    /// the driver (the paper's single-Reducer topology); larger values
    /// partition the key space round-robin across worker nodes.
    pub reduce_tasks: usize,
    /// A map attempt older than this declares its node dead: the
    /// attempt's tasks re-queue on survivors and the node is never
    /// scheduled again. Generous by default (a minute) so legitimate
    /// long maps survive; chaos tests shrink it.
    pub task_timeout: Duration,
}

impl Default for ClusterConfig {
    /// Four nodes — the paper's evaluation setup — with one slot each,
    /// no replication, three attempts.
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            map_slots_per_node: 1,
            replication: 1,
            max_attempts: 3,
            fault_plan: FaultPlan::new(),
            locality_slack: 1,
            reduce_tasks: 1,
            task_timeout: Duration::from_secs(60),
        }
    }
}

impl ClusterConfig {
    fn validate(&self) -> Result<(), MapReduceError> {
        let fail = |reason: &str| {
            Err(MapReduceError::BadConfig {
                reason: reason.to_string(),
            })
        };
        if self.nodes == 0 {
            return fail("zero nodes");
        }
        if self.map_slots_per_node == 0 {
            return fail("zero map slots per node");
        }
        if self.replication == 0 || self.replication > self.nodes {
            return fail("replication must be in 1..=nodes");
        }
        if self.max_attempts == 0 {
            return fail("max_attempts must be at least 1");
        }
        if self.reduce_tasks == 0 {
            return fail("reduce_tasks must be at least 1");
        }
        if self.task_timeout.is_zero() {
            return fail("task_timeout must be nonzero");
        }
        Ok(())
    }
}

/// What one driven iteration returned.
pub struct IterationOutput<J: IterativeJob> {
    /// Reduce outputs in key order.
    pub outputs: Vec<(J::Key, J::ReduceOut)>,
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Metrics for this iteration only (cumulative totals live on
    /// [`Cluster::metrics`]).
    pub metrics: JobMetrics,
}

impl<J: IterativeJob> std::fmt::Debug for IterationOutput<J>
where
    J::Key: std::fmt::Debug,
    J::ReduceOut: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterationOutput")
            .field("iteration", &self.iteration)
            .field("outputs", &self.outputs)
            .field("metrics", &self.metrics)
            .finish()
    }
}

enum WorkerMsg<J: IterativeJob> {
    Map {
        block: BlockId,
        /// Attempt id within the iteration; results echo it so the
        /// driver can drop stale answers from nodes it gave up on.
        attempt: usize,
        payload: Arc<J::BlockPayload>,
        state: J::MapperState,
        broadcast: J::Broadcast,
        inject_failure: bool,
        delay: Duration,
    },
    Reduce {
        groups: Vec<(J::Key, Vec<J::MapOut>)>,
    },
    Shutdown,
}

struct MapResult<J: IterativeJob> {
    block: BlockId,
    attempt: usize,
    node: NodeId,
    state: J::MapperState,
    pairs: Option<Vec<(J::Key, J::MapOut)>>,
    elapsed: Duration,
}

enum WorkerOut<J: IterativeJob> {
    Map(MapResult<J>),
    Reduce {
        outputs: Vec<(J::Key, J::ReduceOut)>,
        elapsed: Duration,
    },
}

/// A running iterative MapReduce cluster bound to one job.
///
/// See the crate-level docs for the execution model and an end-to-end
/// example.
pub struct Cluster<J: IterativeJob> {
    job: Arc<J>,
    config: ClusterConfig,
    store: BlockStore<J::BlockPayload>,
    states: BTreeMap<BlockId, J::MapperState>,
    senders: Vec<Sender<WorkerMsg<J>>>,
    results: Receiver<WorkerOut<J>>,
    handles: Vec<JoinHandle<()>>,
    scheduler: Scheduler,
    metrics: JobMetrics,
    iteration: usize,
    /// Nodes declared dead (overdue attempt or closed channel). A dead
    /// node is blacklisted for the rest of the cluster's life.
    dead: Vec<bool>,
}

impl<J: IterativeJob> Cluster<J>
where
    J::BlockPayload: ByteSized,
{
    /// Boots the worker threads and an empty block store.
    ///
    /// # Errors
    ///
    /// [`MapReduceError::BadConfig`] for degenerate configurations.
    pub fn new(config: ClusterConfig, job: J) -> Result<Self, MapReduceError> {
        config.validate()?;
        let job = Arc::new(job);
        let (result_tx, results) = channel::<WorkerOut<J>>();
        let mut senders = Vec::with_capacity(config.nodes);
        let mut handles = Vec::new();
        for node in 0..config.nodes {
            // `std::sync::mpsc` receivers are single-consumer; the map slots
            // of one node share theirs behind a mutex (lock, take one
            // message, release — the queue itself stays MPMC-shaped).
            let (tx, rx) = channel::<WorkerMsg<J>>();
            senders.push(tx);
            let rx = Arc::new(Mutex::new(rx));
            let fault = config.fault_plan.worker(NodeId(node));
            for slot in 0..config.map_slots_per_node {
                let rx = Arc::clone(&rx);
                let result_tx = result_tx.clone();
                let job = Arc::clone(&job);
                let node_id = NodeId(node);
                let handle = std::thread::Builder::new()
                    .name(format!("mr-node{node}-slot{slot}"))
                    .spawn(move || worker_loop(node_id, fault, job, rx, result_tx))
                    .expect("spawning worker thread");
                handles.push(handle);
            }
        }
        Ok(Cluster {
            scheduler: Scheduler::new(config.nodes).with_locality_slack(config.locality_slack),
            store: BlockStore::new(config.nodes, config.replication),
            dead: vec![false; config.nodes],
            job,
            config,
            states: BTreeMap::new(),
            senders,
            results,
            handles,
            metrics: JobMetrics::default(),
            iteration: 0,
        })
    }

    /// Loads blocks with automatic (round-robin) placement; returns their
    /// ids in input order.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid configs; returns `Result` to keep the
    /// signature stable once quota checks land.
    pub fn load_blocks(
        &mut self,
        payloads: Vec<J::BlockPayload>,
    ) -> Result<Vec<BlockId>, MapReduceError> {
        Ok(payloads
            .into_iter()
            .map(|p| {
                let id = self.store.put(p);
                let payload = self.store.payload(id).expect("just inserted");
                self.states.insert(id, self.job.init_state(id, &payload));
                id
            })
            .collect())
    }

    /// Loads one block pinned to a specific node — learner `m`'s private
    /// partition must live on learner `m`'s machine.
    ///
    /// # Errors
    ///
    /// [`MapReduceError::BadConfig`] when the node does not exist.
    pub fn load_block_on(
        &mut self,
        payload: J::BlockPayload,
        node: NodeId,
    ) -> Result<BlockId, MapReduceError> {
        if node.0 >= self.config.nodes {
            return Err(MapReduceError::BadConfig {
                reason: format!("no such node {node}"),
            });
        }
        let id = self.store.put_on(payload, node);
        let payload = self.store.payload(id).expect("just inserted");
        self.states.insert(id, self.job.init_state(id, &payload));
        Ok(id)
    }

    /// Runs one Map → Shuffle → Reduce round with the given broadcast and
    /// returns the reduce outputs (in key order) plus per-iteration metrics.
    ///
    /// Fault tolerance mirrors the multi-process
    /// [`TaskScheduler`](crate::TaskScheduler): failed attempts retry on
    /// other nodes within `max_attempts`; a node whose attempt outlives
    /// `task_timeout` (or whose channel is closed) is declared dead, its
    /// in-flight tasks re-queue on survivors, and the node is never
    /// scheduled again. Late results from a node the driver gave up on
    /// are dropped by their `(attempt, node)` tag.
    ///
    /// # Errors
    ///
    /// [`MapReduceError::NoBlocks`] before any data is loaded;
    /// [`MapReduceError::TaskFailed`] when a task exhausts its attempts;
    /// [`MapReduceError::QuorumLost`] when every node has died;
    /// [`MapReduceError::WorkerLost`] if a worker thread panicked
    /// mid-reduce.
    pub fn run_iteration(
        &mut self,
        broadcast: &J::Broadcast,
    ) -> Result<IterationOutput<J>, MapReduceError> {
        let blocks = self.store.block_ids();
        if blocks.is_empty() {
            return Err(MapReduceError::NoBlocks);
        }
        let mut iter_metrics = JobMetrics {
            iterations: 1,
            ..Default::default()
        };

        // Broadcast cost: once per node that receives at least one task
        // (charged lazily as dispatches actually land).
        let mut nodes_hit: Vec<bool> = vec![false; self.config.nodes];
        // Tasks awaiting (re-)placement, attempts handed out so far,
        // current placements, and per-block node exclusions from failed
        // attempts.
        let mut pending: Vec<BlockId> = blocks.clone();
        let mut attempts: BTreeMap<BlockId, usize> = BTreeMap::new();
        let mut inflight: BTreeMap<BlockId, (NodeId, usize, Instant)> = BTreeMap::new();
        let mut exclusions: Vec<(BlockId, NodeId)> = Vec::new();

        #[allow(clippy::type_complexity)]
        let mut block_outputs: BTreeMap<BlockId, Vec<(J::Key, J::MapOut)>> = BTreeMap::new();
        while block_outputs.len() < blocks.len() {
            if self.dead.iter().all(|d| *d) {
                return Err(MapReduceError::QuorumLost {
                    alive: 0,
                    needed: 1,
                });
            }

            // Dispatch the queued wave in one batch so the placement
            // heuristic balances load across it.
            if !pending.is_empty() {
                let wave = std::mem::take(&mut pending);
                let mut banned: Vec<(BlockId, NodeId)> = Vec::new();
                for &block in &wave {
                    banned.extend(self.banned_for(block, &exclusions));
                }
                for a in self.scheduler.assign(&self.store, &wave, &banned) {
                    let attempt = attempts.entry(a.block).and_modify(|n| *n += 1).or_insert(1);
                    let attempt = *attempt;
                    if self.dispatch(
                        a.block,
                        a.node,
                        a.data_local,
                        attempt,
                        broadcast,
                        &mut nodes_hit,
                        &mut iter_metrics,
                    ) {
                        inflight.insert(a.block, (a.node, attempt, Instant::now()));
                    } else {
                        // Channel closed: every thread of that node is
                        // gone. Declare it and re-queue for the next
                        // wave (placement must re-run without it).
                        self.declare_node_dead(
                            a.node,
                            &mut inflight,
                            &mut pending,
                            &mut iter_metrics,
                        );
                        pending.push(a.block);
                    }
                }
                continue;
            }

            // Collect one result slice, retrying failures on other nodes.
            match self.results.recv_timeout(RECV_SLICE) {
                Ok(WorkerOut::Map(res)) => {
                    let current = inflight.get(&res.block).copied();
                    let Some((node, attempt, _)) = current else {
                        continue; // late result for a block already done
                    };
                    if attempt != res.attempt || node != res.node {
                        continue; // stale attempt from a node given up on
                    }
                    inflight.remove(&res.block);
                    iter_metrics.map_time += res.elapsed;
                    self.states.insert(res.block, res.state);
                    match res.pairs {
                        Some(pairs) => {
                            for (_, v) in &pairs {
                                iter_metrics.bytes_shuffled += framed(v.byte_len());
                            }
                            if telemetry::enabled() {
                                ClusterRegistry::global().observe_task_lag(
                                    res.node.0 as u32,
                                    self.iteration as u64,
                                    res.elapsed.as_nanos() as u64,
                                );
                            }
                            block_outputs.insert(res.block, pairs);
                        }
                        None => {
                            iter_metrics.task_retries += 1;
                            let tried = attempts.get(&res.block).copied().unwrap_or(1);
                            if tried >= self.config.max_attempts {
                                return Err(MapReduceError::TaskFailed {
                                    block: res.block,
                                    attempts: tried,
                                });
                            }
                            // Exclude the node that just failed this
                            // attempt, then re-place the task elsewhere.
                            exclusions.push((res.block, res.node));
                            pending.push(res.block);
                        }
                    }
                }
                Ok(WorkerOut::Reduce { .. }) => {
                    // A stray reduce result cannot occur: reduce tasks are
                    // only dispatched after every map result is in.
                    unreachable!("reduce result during map phase");
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MapReduceError::QuorumLost {
                        alive: 0,
                        needed: 1,
                    });
                }
            }

            // Liveness sweep: an attempt older than task_timeout means
            // its node is dead or wedged — either way, give up on it.
            let now = Instant::now();
            let overdue: Vec<NodeId> = inflight
                .values()
                .filter(|(_, _, started)| now.duration_since(*started) > self.config.task_timeout)
                .map(|(node, _, _)| *node)
                .collect();
            for node in overdue {
                self.declare_node_dead(node, &mut inflight, &mut pending, &mut iter_metrics);
            }
        }

        // Shuffle: group by key, deterministic (blocks in id order within
        // each key group).
        let mut groups: BTreeMap<J::Key, Vec<J::MapOut>> = BTreeMap::new();
        for (_block, pairs) in block_outputs {
            for (k, v) in pairs {
                groups.entry(k).or_default().push(v);
            }
        }
        let outputs = self.run_reduce_phase(groups, &mut iter_metrics)?;

        // Hand the round's attempt timings to the straggler scorer and
        // surface its verdicts (twin of the TaskScheduler path).
        if telemetry::enabled() {
            for v in ClusterRegistry::global().score_task_round(self.iteration as u64) {
                if v.is_slow() {
                    telemetry::emit(
                        NO_PARTY,
                        EventKind::SlowWorker {
                            node: v.party,
                            iteration: v.iteration,
                            lag_ns: v.lag_ns,
                            median_ns: v.median_ns,
                            score: v.score,
                        },
                    );
                }
            }
        }

        let iteration = self.iteration;
        telemetry::emit(
            NO_PARTY,
            EventKind::BroadcastBytes {
                iteration: iteration as u64,
                bytes: iter_metrics.bytes_broadcast as u64,
            },
        );
        telemetry::emit(
            NO_PARTY,
            EventKind::ShuffleBytes {
                iteration: iteration as u64,
                bytes: iter_metrics.bytes_shuffled as u64,
            },
        );
        self.iteration += 1;
        self.metrics.merge(&iter_metrics);
        Ok(IterationOutput {
            outputs,
            iteration,
            metrics: iter_metrics,
        })
    }

    /// Executes the reduce phase: inline for a single reduce task (the
    /// paper's lone-Reducer topology), otherwise partitioned round-robin
    /// over the worker nodes and merged back in key order.
    #[allow(clippy::type_complexity)]
    fn run_reduce_phase(
        &mut self,
        groups: BTreeMap<J::Key, Vec<J::MapOut>>,
        iter_metrics: &mut JobMetrics,
    ) -> Result<Vec<(J::Key, J::ReduceOut)>, MapReduceError> {
        let r_tasks = self.config.reduce_tasks.min(groups.len()).max(1);
        if r_tasks <= 1 {
            let reduce_start = Instant::now();
            let outputs = groups
                .into_iter()
                .map(|(k, vs)| {
                    let r = self.job.reduce(&k, vs);
                    (k, r)
                })
                .collect();
            iter_metrics.reduce_time = reduce_start.elapsed();
            return Ok(outputs);
        }
        // Partition key groups round-robin (keys arrive sorted, so the
        // partitioning is deterministic), dispatch one task per partition.
        #[allow(clippy::type_complexity)]
        let mut partitions: Vec<Vec<(J::Key, Vec<J::MapOut>)>> =
            (0..r_tasks).map(|_| Vec::new()).collect();
        for (i, kv) in groups.into_iter().enumerate() {
            partitions[i % r_tasks].push(kv);
        }
        // Round-robin over *live* nodes only — a dead node's channel
        // would swallow its partition forever.
        let live: Vec<usize> = (0..self.config.nodes).filter(|&n| !self.dead[n]).collect();
        if live.is_empty() {
            return Err(MapReduceError::QuorumLost {
                alive: 0,
                needed: 1,
            });
        }
        for (task, part) in partitions.into_iter().enumerate() {
            let node = live[task % live.len()];
            self.senders[node]
                .send(WorkerMsg::Reduce { groups: part })
                .map_err(|_| MapReduceError::WorkerLost { node: NodeId(node) })?;
        }
        let mut merged: BTreeMap<J::Key, J::ReduceOut> = BTreeMap::new();
        let mut done = 0usize;
        while done < r_tasks {
            let out = self
                .results
                .recv()
                .map_err(|_| MapReduceError::WorkerLost { node: NodeId(0) })?;
            match out {
                WorkerOut::Reduce { outputs, elapsed } => {
                    iter_metrics.reduce_time += elapsed;
                    for (k, v) in outputs {
                        merged.insert(k, v);
                    }
                    done += 1;
                }
                WorkerOut::Map(_) => {
                    unreachable!("map result during reduce phase")
                }
            }
        }
        Ok(merged.into_iter().collect())
    }

    /// Sends one map attempt to `node`. Returns `false` when the node's
    /// channel is closed (all its threads are gone); the mapper state is
    /// recovered from the undelivered message so the caller can re-queue.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        block: BlockId,
        node: NodeId,
        data_local: bool,
        attempt: usize,
        broadcast: &J::Broadcast,
        nodes_hit: &mut [bool],
        iter_metrics: &mut JobMetrics,
    ) -> bool {
        let payload = self.store.payload(block).expect("scheduled block exists");
        let state = self
            .states
            .remove(&block)
            .expect("state present for scheduled block");
        let payload_len = payload.byte_len();
        let spec = self.config.fault_plan.spec(self.iteration, block);
        let inject_failure = attempt <= spec.fail_attempts;
        match self.senders[node.0].send(WorkerMsg::Map {
            block,
            attempt,
            payload,
            state,
            broadcast: broadcast.clone(),
            inject_failure,
            delay: spec.delay,
        }) {
            Ok(()) => {
                if data_local {
                    iter_metrics.locality_hits += 1;
                } else {
                    iter_metrics.remote_reads += 1;
                    iter_metrics.bytes_remote_read += framed(payload_len);
                }
                if !nodes_hit[node.0] {
                    nodes_hit[node.0] = true;
                    iter_metrics.bytes_broadcast += framed(broadcast.byte_len());
                }
                telemetry::emit(
                    NO_PARTY,
                    EventKind::TaskAttempt {
                        block: block.0,
                        node: node.0 as u32,
                        attempt: attempt as u32,
                        local: data_local,
                    },
                );
                if telemetry::enabled() {
                    ClusterRegistry::global().fold_task_attempt(node.0 as u32);
                }
                true
            }
            Err(std::sync::mpsc::SendError(msg)) => {
                // The message never left; put its state back.
                if let WorkerMsg::Map { state, .. } = msg {
                    self.states.insert(block, state);
                }
                false
            }
        }
    }

    /// Node exclusions for one block: nodes that already failed it plus
    /// every dead node. When each live node has already failed the block,
    /// the failure history is forgiven (only death stays permanent) so a
    /// retry within budget still has somewhere to run.
    fn banned_for(
        &self,
        block: BlockId,
        exclusions: &[(BlockId, NodeId)],
    ) -> Vec<(BlockId, NodeId)> {
        let mut banned: Vec<(BlockId, NodeId)> = exclusions
            .iter()
            .copied()
            .filter(|(b, _)| *b == block)
            .collect();
        for n in 0..self.config.nodes {
            if self.dead[n] {
                banned.push((block, NodeId(n)));
            }
        }
        let distinct: BTreeSet<usize> = banned.iter().map(|(_, n)| n.0).collect();
        if distinct.len() >= self.config.nodes {
            banned.retain(|(_, n)| self.dead[n.0]);
        }
        banned
    }

    /// Declares `node` dead: blacklists it, re-queues its in-flight tasks
    /// (their mapper state went down with it and is re-derived from the
    /// block payload), and emits the death once.
    fn declare_node_dead(
        &mut self,
        node: NodeId,
        inflight: &mut BTreeMap<BlockId, (NodeId, usize, Instant)>,
        pending: &mut Vec<BlockId>,
        iter_metrics: &mut JobMetrics,
    ) {
        let lost: Vec<BlockId> = inflight
            .iter()
            .filter(|(_, (n, _, _))| *n == node)
            .map(|(b, _)| *b)
            .collect();
        for block in &lost {
            inflight.remove(block);
            let payload = self.store.payload(*block).expect("scheduled block exists");
            self.states
                .insert(*block, self.job.init_state(*block, &payload));
            pending.push(*block);
        }
        if !self.dead[node.0] {
            self.dead[node.0] = true;
            iter_metrics.workers_lost += 1;
            telemetry::emit(
                NO_PARTY,
                EventKind::WorkerDead {
                    node: node.0 as u32,
                    inflight: lost.len() as u32,
                },
            );
            if telemetry::enabled() {
                ClusterRegistry::global().fold_worker_death(node.0 as u32);
            }
        }
    }

    /// Cumulative metrics since the cluster booted.
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Number of iterations driven so far.
    pub fn iterations_run(&self) -> usize {
        self.iteration
    }

    /// Nodes not declared dead so far.
    pub fn live_nodes(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// The block directory (placement inspection for tests/benches).
    pub fn store(&self) -> &BlockStore<J::BlockPayload> {
        &self.store
    }

    /// Read access to a block's persistent mapper state.
    pub fn mapper_state(&self, block: BlockId) -> Option<&J::MapperState> {
        self.states.get(&block)
    }

    /// The job being executed.
    pub fn job(&self) -> &J {
        &self.job
    }
}

/// Bytes one value costs on the wire: its encoding carried as the payload
/// of a single transport frame. Keeping the metrics in frame units makes
/// them directly comparable with the byte counters the TCP/loopback
/// transports report for the genuinely distributed deployment.
fn framed(payload_len: usize) -> usize {
    FRAME_OVERHEAD + payload_len
}

fn worker_loop<J: IterativeJob>(
    node: NodeId,
    fault: WorkerFault,
    job: Arc<J>,
    rx: Arc<Mutex<Receiver<WorkerMsg<J>>>>,
    tx: Sender<WorkerOut<J>>,
) {
    telemetry::emit(
        NO_PARTY,
        EventKind::WorkerUp {
            node: node.0 as u32,
        },
    );
    // Worker-level fault counter: map tasks dequeued by *this* slot
    // (with one slot per node — the default — that is the node's count).
    let mut tasks_taken = 0usize;
    loop {
        // Hold the lock only for the dequeue, never while mapping/reducing.
        let msg = match rx.lock().expect("worker queue lock").recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        match msg {
            WorkerMsg::Shutdown => break,
            WorkerMsg::Reduce { groups } => {
                let start = Instant::now();
                let outputs: Vec<(J::Key, J::ReduceOut)> = groups
                    .into_iter()
                    .map(|(k, vs)| {
                        let r = job.reduce(&k, vs);
                        (k, r)
                    })
                    .collect();
                let _ = tx.send(WorkerOut::Reduce {
                    outputs,
                    elapsed: start.elapsed(),
                });
            }
            WorkerMsg::Map {
                block,
                attempt,
                payload,
                mut state,
                broadcast,
                inject_failure,
                delay,
            } => {
                tasks_taken += 1;
                if fault.kill_on_task == Some(tasks_taken) {
                    // Mid-task death: no result is ever sent and the slot
                    // is gone — indistinguishable from a SIGKILL to the
                    // driver, which must notice via its task timeout.
                    break;
                }
                if !fault.slow_by.is_zero() {
                    std::thread::sleep(fault.slow_by);
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let start = Instant::now();
                let pairs = if inject_failure {
                    None
                } else {
                    let raw = job.map(node, &payload, &mut state, &broadcast);
                    // Node-local combine before anything crosses the network.
                    let mut grouped: BTreeMap<J::Key, Vec<J::MapOut>> = BTreeMap::new();
                    for (k, v) in raw {
                        grouped.entry(k).or_default().push(v);
                    }
                    let mut combined = Vec::new();
                    for (k, vs) in grouped {
                        for v in job.combine(&k, vs) {
                            combined.push((k.clone(), v));
                        }
                    }
                    Some(combined)
                };
                let _ = tx.send(WorkerOut::Map(MapResult {
                    block,
                    attempt,
                    node,
                    state,
                    pairs,
                    elapsed: start.elapsed(),
                }));
            }
        }
    }
    telemetry::emit(
        NO_PARTY,
        EventKind::WorkerDown {
            node: node.0 as u32,
        },
    );
}

impl<J: IterativeJob> Drop for Cluster<J> {
    fn drop(&mut self) {
        for tx in &self.senders {
            // One shutdown per slot sharing this node queue.
            for _ in 0..self.config.map_slots_per_node {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word-count, iterative only trivially (one round).
    struct WordCount;

    impl IterativeJob for WordCount {
        type BlockPayload = String;
        type MapperState = usize; // counts how many times this block was mapped
        type Broadcast = ();
        type Key = String;
        type MapOut = u64;
        type ReduceOut = u64;

        fn init_state(&self, _: BlockId, _: &String) -> usize {
            0
        }

        fn map(
            &self,
            _node: NodeId,
            payload: &String,
            state: &mut usize,
            _b: &(),
        ) -> Vec<(String, u64)> {
            *state += 1;
            payload
                .split_whitespace()
                .map(|w| (w.to_string(), 1))
                .collect()
        }

        fn reduce(&self, _k: &String, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }
    }

    fn wc_cluster(config: ClusterConfig) -> Cluster<WordCount> {
        let mut c = Cluster::new(config, WordCount).unwrap();
        c.load_blocks(vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the fox".to_string(),
        ])
        .unwrap();
        c
    }

    fn counts(out: &IterationOutput<WordCount>) -> BTreeMap<String, u64> {
        out.outputs.iter().cloned().collect()
    }

    #[test]
    fn word_count_is_correct() {
        let mut c = wc_cluster(ClusterConfig::default());
        let out = c.run_iteration(&()).unwrap();
        let m = counts(&out);
        assert_eq!(m["the"], 3);
        assert_eq!(m["fox"], 2);
        assert_eq!(m["dog"], 1);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn results_identical_across_cluster_shapes() {
        let shapes = [
            ClusterConfig {
                nodes: 1,
                ..Default::default()
            },
            ClusterConfig {
                nodes: 3,
                map_slots_per_node: 2,
                replication: 2,
                ..Default::default()
            },
            ClusterConfig {
                nodes: 8,
                ..Default::default()
            },
        ];
        let mut reference = None;
        for cfg in shapes {
            let mut c = wc_cluster(cfg);
            let out = counts(&c.run_iteration(&()).unwrap());
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r),
            }
        }
    }

    #[test]
    fn mapper_state_persists_across_iterations() {
        let mut c = wc_cluster(ClusterConfig::default());
        let blocks = c.store().block_ids();
        for _ in 0..5 {
            c.run_iteration(&()).unwrap();
        }
        for b in blocks {
            assert_eq!(*c.mapper_state(b).unwrap(), 5);
        }
        assert_eq!(c.iterations_run(), 5);
    }

    #[test]
    fn injected_failure_is_retried_and_result_unchanged() {
        let blocks_probe = {
            let c = wc_cluster(ClusterConfig::default());
            c.store().block_ids()
        };
        let cfg = ClusterConfig {
            fault_plan: FaultPlan::new().fail_first_attempts(0, blocks_probe[0], 1),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        let out = c.run_iteration(&()).unwrap();
        assert_eq!(counts(&out)["the"], 3);
        assert_eq!(out.metrics.task_retries, 1);
    }

    #[test]
    fn exhausted_retries_error_out() {
        let blocks_probe = {
            let c = wc_cluster(ClusterConfig::default());
            c.store().block_ids()
        };
        let cfg = ClusterConfig {
            max_attempts: 2,
            fault_plan: FaultPlan::new().fail_first_attempts(0, blocks_probe[0], 10),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        match c.run_iteration(&()) {
            Err(MapReduceError::TaskFailed { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn straggler_delay_shows_in_map_time() {
        let blocks_probe = {
            let c = wc_cluster(ClusterConfig::default());
            c.store().block_ids()
        };
        // Delay is applied before timing starts; map_time measures useful
        // work, so instead check wall clock of the iteration.
        let cfg = ClusterConfig {
            fault_plan: FaultPlan::new().delay(0, blocks_probe[0], Duration::from_millis(30)),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        let t0 = Instant::now();
        c.run_iteration(&()).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn metrics_track_locality_and_shuffle() {
        let mut c = wc_cluster(ClusterConfig::default());
        let out = c.run_iteration(&()).unwrap();
        // 3 blocks on 4 nodes, replication 1, blocks ≤ nodes → all local.
        assert_eq!(out.metrics.locality_hits, 3);
        assert_eq!(out.metrics.remote_reads, 0);
        assert!(out.metrics.bytes_shuffled > 0);
        assert_eq!(c.metrics().iterations, 1);
    }

    #[test]
    fn no_blocks_is_an_error() {
        let mut c: Cluster<WordCount> = Cluster::new(ClusterConfig::default(), WordCount).unwrap();
        assert!(matches!(
            c.run_iteration(&()),
            Err(MapReduceError::NoBlocks)
        ));
    }

    #[test]
    fn bad_configs_rejected() {
        for cfg in [
            ClusterConfig {
                nodes: 0,
                ..Default::default()
            },
            ClusterConfig {
                map_slots_per_node: 0,
                ..Default::default()
            },
            ClusterConfig {
                replication: 9,
                ..Default::default()
            },
            ClusterConfig {
                max_attempts: 0,
                ..Default::default()
            },
        ] {
            assert!(Cluster::new(cfg, WordCount).is_err());
        }
    }

    #[test]
    fn parallel_reduce_matches_inline_reduce() {
        let single = {
            let mut c = wc_cluster(ClusterConfig::default());
            counts(&c.run_iteration(&()).unwrap())
        };
        for reduce_tasks in [2usize, 3, 16] {
            let mut c = wc_cluster(ClusterConfig {
                reduce_tasks,
                ..Default::default()
            });
            let out = c.run_iteration(&()).unwrap();
            assert_eq!(counts(&out), single, "reduce_tasks = {reduce_tasks}");
        }
    }

    #[test]
    fn zero_reduce_tasks_rejected() {
        let cfg = ClusterConfig {
            reduce_tasks: 0,
            ..Default::default()
        };
        assert!(Cluster::new(cfg, WordCount).is_err());
    }

    /// Word-count with a summing combiner: same results, less shuffle.
    struct CombinedWordCount;

    impl IterativeJob for CombinedWordCount {
        type BlockPayload = String;
        type MapperState = ();
        type Broadcast = ();
        type Key = String;
        type MapOut = u64;
        type ReduceOut = u64;

        fn init_state(&self, _: BlockId, _: &String) {}

        fn map(&self, _n: NodeId, payload: &String, _s: &mut (), _b: &()) -> Vec<(String, u64)> {
            payload
                .split_whitespace()
                .map(|w| (w.to_string(), 1))
                .collect()
        }

        fn reduce(&self, _k: &String, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }

        fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }
    }

    #[test]
    fn combiner_preserves_results_and_cuts_shuffle() {
        let payloads = vec![
            "a a a a b".to_string(),
            "a b b b".to_string(),
            "c a a".to_string(),
        ];
        let mut plain = wc_cluster(ClusterConfig::default());
        let plain_out = plain.run_iteration(&()).unwrap();
        let _ = plain_out;

        let mut with = Cluster::new(ClusterConfig::default(), CombinedWordCount).unwrap();
        with.load_blocks(payloads.clone()).unwrap();
        let combined_out = with.run_iteration(&()).unwrap();

        let mut without = Cluster::new(ClusterConfig::default(), WordCount).unwrap();
        without.load_blocks(payloads).unwrap();
        let without_out = without.run_iteration(&()).unwrap();

        let a: BTreeMap<String, u64> = combined_out.outputs.iter().cloned().collect();
        let b: BTreeMap<String, u64> = without_out.outputs.iter().cloned().collect();
        assert_eq!(a, b, "combiner changed the answer");
        assert!(
            combined_out.metrics.bytes_shuffled < without_out.metrics.bytes_shuffled,
            "combiner should cut shuffle bytes: {} vs {}",
            combined_out.metrics.bytes_shuffled,
            without_out.metrics.bytes_shuffled
        );
    }

    #[test]
    fn locality_slack_changes_locality_ratio() {
        // Skewed placement: every block lives on node 0. Strict balance
        // (slack 0) must spread the tasks and pay remote reads; generous
        // slack keeps them local to node 0.
        let run = |slack: usize| {
            let mut c: Cluster<WordCount> = Cluster::new(
                ClusterConfig {
                    locality_slack: slack,
                    ..Default::default()
                },
                WordCount,
            )
            .unwrap();
            for i in 0..8 {
                c.load_block_on(format!("words number {i}"), NodeId(0))
                    .unwrap();
            }
            let out = c.run_iteration(&()).unwrap();
            out.metrics
        };
        let strict = run(0);
        let loose = run(100);
        assert_eq!(loose.locality_ratio(), 1.0);
        assert!(
            strict.locality_ratio() < loose.locality_ratio(),
            "slack 0 ratio {} should be below slack 100 ratio {}",
            strict.locality_ratio(),
            loose.locality_ratio()
        );
        // The locality misses are charged as framed remote block reads.
        assert_eq!(
            strict.bytes_remote_read,
            strict
                .remote_reads
                .checked_mul(framed("words number 0".to_string().byte_len()))
                .unwrap()
        );
    }

    #[test]
    fn killed_worker_requeues_tasks_and_result_unchanged() {
        let reference = {
            let mut c = wc_cluster(ClusterConfig::default());
            counts(&c.run_iteration(&()).unwrap())
        };
        // Node 0 holds block 0 (round-robin placement) and dies mid-way
        // through its first map; the task must re-run on a survivor.
        let cfg = ClusterConfig {
            fault_plan: FaultPlan::new().kill_worker_on_task(NodeId(0), 1),
            task_timeout: Duration::from_millis(250),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        let out = c.run_iteration(&()).unwrap();
        assert_eq!(counts(&out), reference, "death changed the answer");
        assert_eq!(out.metrics.workers_lost, 1);
        assert!(
            out.metrics.remote_reads >= 1,
            "requeue must pay a remote read"
        );
        assert_eq!(c.live_nodes(), 3);

        // The dead node stays blacklisted; later iterations still work
        // and do not re-count the death.
        let out2 = c.run_iteration(&()).unwrap();
        assert_eq!(counts(&out2), reference);
        assert_eq!(out2.metrics.workers_lost, 0);
    }

    #[test]
    fn lone_dead_worker_is_quorum_lost() {
        let cfg = ClusterConfig {
            nodes: 1,
            fault_plan: FaultPlan::new().kill_worker_on_task(NodeId(0), 1),
            task_timeout: Duration::from_millis(150),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        match c.run_iteration(&()) {
            Err(MapReduceError::QuorumLost { alive, needed }) => {
                assert_eq!(alive, 0);
                assert_eq!(needed, 1);
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }

    #[test]
    fn slow_worker_fault_stalls_but_answers() {
        let cfg = ClusterConfig {
            fault_plan: FaultPlan::new().slow_worker(NodeId(1), Duration::from_millis(40)),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        let t0 = Instant::now();
        let out = c.run_iteration(&()).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(40));
        assert_eq!(counts(&out)["the"], 3);
        assert_eq!(out.metrics.workers_lost, 0);
    }

    #[test]
    fn overdue_straggler_is_abandoned_and_its_late_result_ignored() {
        // Node 0 is slowed far past the task timeout: the driver gives
        // up on it, re-runs its block elsewhere, and must drop the
        // straggler's eventual (stale) result instead of double-counting.
        let cfg = ClusterConfig {
            fault_plan: FaultPlan::new().slow_worker(NodeId(0), Duration::from_millis(400)),
            task_timeout: Duration::from_millis(80),
            ..Default::default()
        };
        let mut c = wc_cluster(cfg);
        let out = c.run_iteration(&()).unwrap();
        assert_eq!(counts(&out)["the"], 3);
        assert_eq!(out.metrics.workers_lost, 1);
        assert_eq!(c.live_nodes(), 3);
        // The stale result lands during the next iteration and must not
        // disturb it.
        let out2 = c.run_iteration(&()).unwrap();
        assert_eq!(counts(&out2)["the"], 3);
        assert_eq!(counts(&out2).len(), 6);
    }

    #[test]
    fn zero_task_timeout_rejected() {
        let cfg = ClusterConfig {
            task_timeout: Duration::ZERO,
            ..Default::default()
        };
        assert!(Cluster::new(cfg, WordCount).is_err());
    }

    #[test]
    fn pinned_blocks_map_on_their_node() {
        let mut c: Cluster<WordCount> = Cluster::new(ClusterConfig::default(), WordCount).unwrap();
        let id = c
            .load_block_on("private words".to_string(), NodeId(2))
            .unwrap();
        assert_eq!(c.store().replicas(id).unwrap()[0], NodeId(2));
        let out = c.run_iteration(&()).unwrap();
        assert_eq!(out.metrics.locality_hits, 1);
        assert!(c.load_block_on("x".to_string(), NodeId(99)).is_err());
    }
}
