use std::fmt;

use crate::{BlockId, NodeId};

/// Errors surfaced by the MapReduce runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapReduceError {
    /// The cluster configuration is unusable (zero nodes/slots, replication
    /// larger than the cluster, ...).
    BadConfig {
        /// What is wrong with it.
        reason: String,
    },
    /// A map task exhausted its retry budget.
    TaskFailed {
        /// Block whose map task kept failing.
        block: BlockId,
        /// Attempts made.
        attempts: usize,
    },
    /// A worker thread disappeared (panicked) mid-job.
    WorkerLost {
        /// The node whose worker died.
        node: NodeId,
    },
    /// Job was driven with no blocks loaded.
    NoBlocks,
    /// Too many workers died: fewer than the configured quorum survive,
    /// so the job cannot make progress and fails fast instead of
    /// retrying into an empty cluster.
    QuorumLost {
        /// Workers still alive.
        alive: usize,
        /// Minimum live workers the job needs.
        needed: usize,
    },
    /// The remote worker pool is unusable: a worker registered for a
    /// different job, or registration never arrived.
    BadWorker {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for MapReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapReduceError::BadConfig { reason } => write!(f, "bad cluster config: {reason}"),
            MapReduceError::TaskFailed { block, attempts } => {
                write!(f, "map task for {block:?} failed after {attempts} attempts")
            }
            MapReduceError::WorkerLost { node } => write!(f, "worker for {node} terminated"),
            MapReduceError::NoBlocks => write!(f, "no blocks loaded into the cluster"),
            MapReduceError::QuorumLost { alive, needed } => {
                write!(
                    f,
                    "cluster lost quorum: {alive} workers alive, {needed} needed"
                )
            }
            MapReduceError::BadWorker { reason } => write!(f, "bad worker: {reason}"),
        }
    }
}

impl std::error::Error for MapReduceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = MapReduceError::TaskFailed {
            block: BlockId(3),
            attempts: 4,
        };
        assert!(e.to_string().contains("4 attempts"));
        assert!(MapReduceError::NoBlocks.to_string().contains("no blocks"));
        let q = MapReduceError::QuorumLost {
            alive: 0,
            needed: 1,
        };
        assert!(q.to_string().contains("lost quorum"));
        assert!(q.to_string().contains("0 workers alive"));
    }
}
