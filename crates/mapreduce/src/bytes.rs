//! Size accounting for shuffle and broadcast traffic.
//!
//! The engine charges every map output and broadcast to [`crate::JobMetrics`]
//! so the benchmarks can compare "bytes moved per iteration" against "bytes
//! of raw training data" — the quantitative form of the paper's data-locality
//! argument. `ByteSized` reports the serialized size a value *would* have on
//! the wire (8 bytes per `f64`/`u64`, etc.); nothing is actually serialized.

/// Wire-size estimate of a value.
pub trait ByteSized {
    /// Number of bytes this value would occupy serialized.
    fn byte_len(&self) -> usize;
}

impl ByteSized for () {
    fn byte_len(&self) -> usize {
        0
    }
}

macro_rules! fixed_size {
    ($($t:ty),*) => {
        $(impl ByteSized for $t {
            fn byte_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

fixed_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl<T: ByteSized> ByteSized for Vec<T> {
    fn byte_len(&self) -> usize {
        8 + self.iter().map(ByteSized::byte_len).sum::<usize>()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn byte_len(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSized::byte_len)
    }
}

impl ByteSized for String {
    fn byte_len(&self) -> usize {
        8 + self.len()
    }
}

impl<A: ByteSized, B: ByteSized> ByteSized for (A, B) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
}

impl<A: ByteSized, B: ByteSized, C: ByteSized> ByteSized for (A, B, C) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len() + self.2.byte_len()
    }
}

impl<T: ByteSized + ?Sized> ByteSized for &T {
    fn byte_len(&self) -> usize {
        (*self).byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(0u64.byte_len(), 8);
        assert_eq!(0f64.byte_len(), 8);
        assert_eq!(true.byte_len(), 1);
        assert_eq!(().byte_len(), 0);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1.0f64; 4].byte_len(), 8 + 32);
        assert_eq!("abc".to_string().byte_len(), 11);
        assert_eq!((1u64, 2.0f64).byte_len(), 16);
        assert_eq!(Some(1u32).byte_len(), 5);
        assert_eq!(None::<u32>.byte_len(), 1);
    }

    #[test]
    fn nested() {
        let v: Vec<Vec<f64>> = vec![vec![0.0; 2], vec![0.0; 3]];
        assert_eq!(v.byte_len(), 8 + (8 + 16) + (8 + 24));
    }
}
