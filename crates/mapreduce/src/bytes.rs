//! Size accounting for shuffle and broadcast traffic.
//!
//! The engine charges every map output and broadcast to [`crate::JobMetrics`]
//! so the benchmarks can compare "bytes moved per iteration" against "bytes
//! of raw training data" — the quantitative form of the paper's data-locality
//! argument.
//!
//! Historically this module carried its own `ByteSized` estimator trait that
//! only *predicted* serialized sizes. The wire codec in `ppml-transport`
//! implements the same size arithmetic (8 bytes per `f64`/`u64`, 8-byte
//! length prefixes on `Vec`/`String`, 1-byte `Option` tags …) but backs it
//! with a real encoder, so the numbers the metrics report are the lengths of
//! bytes that genuinely exist. `ByteSized` is now an alias of that trait:
//! every map output and broadcast type is encodable, and
//! [`ByteSized::byte_len`] is exactly `encode().len()`.

pub use ppml_transport::Wire as ByteSized;

#[cfg(test)]
mod tests {
    use super::*;

    /// The legacy estimator numbers must survive the switch to the real
    /// codec — downstream benchmarks compare against recorded baselines.
    #[test]
    fn legacy_sizes_preserved() {
        assert_eq!(0u64.byte_len(), 8);
        assert_eq!(0f64.byte_len(), 8);
        assert_eq!(true.byte_len(), 1);
        assert_eq!(().byte_len(), 0);
        assert_eq!(vec![1.0f64; 4].byte_len(), 8 + 32);
        assert_eq!("abc".to_string().byte_len(), 11);
        assert_eq!((1u64, 2.0f64).byte_len(), 16);
        assert_eq!(Some(1u32).byte_len(), 5);
        assert_eq!(None::<u32>.byte_len(), 1);
        let v: Vec<Vec<f64>> = vec![vec![0.0; 2], vec![0.0; 3]];
        assert_eq!(v.byte_len(), 8 + (8 + 16) + (8 + 24));
    }

    #[test]
    fn byte_len_is_encoded_len() {
        let v: Vec<u64> = vec![7, 8, 9];
        assert_eq!(v.byte_len(), v.encode().len());
        let s = "shuffle".to_string();
        assert_eq!(s.byte_len(), s.encode().len());
    }
}
