//! Byte-level jobs for remote (multi-process) execution.
//!
//! The in-process engine runs arbitrary [`crate::IterativeJob`]
//! closures, but a job that crosses a process boundary must be named,
//! not captured: the driver and every `ppml-worker` process agree on a
//! job by its registry name, and exchange only *bytes* — task
//! descriptors and map outputs — over the wire. Raw block data never
//! moves; a worker materialises its blocks deterministically from
//! `(seed, block)` with [`ProcessJob::make_block`], which is the
//! locality/privacy argument of DESIGN.md §13 in miniature.
//!
//! Two invariants make fault tolerance free:
//!
//! * [`ProcessJob::map`] is a **pure function** of its inputs. A retry
//!   or a speculative duplicate therefore produces bit-identical
//!   output, so the scheduler may accept whichever attempt lands first.
//! * [`ProcessJob::reduce`] consumes outputs sorted by block id, so the
//!   job result is independent of completion order.

use ppml_telemetry::mix64;

/// A job executable by remote workers: pure byte-level map and reduce
/// over deterministically materialised blocks.
pub trait ProcessJob: Send + Sync {
    /// Registry name the driver and workers agree on.
    fn name(&self) -> &'static str;

    /// Deterministically materialises block `block`'s payload from the
    /// job seed. Every holder of `(seed, block)` derives identical
    /// bytes, so placement is pure metadata — no data transfer needed
    /// to "move" a block.
    fn make_block(&self, seed: u64, block: u64) -> Vec<u8>;

    /// Maps one block under the round's broadcast. MUST be a pure,
    /// deterministic function of `(block_bytes, broadcast)`: retries
    /// and speculative duplicates rely on bit-identical output.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the driver counts it as a failed
    /// attempt and retries within the task's budget.
    fn map(&self, block_bytes: &[u8], broadcast: &[u8]) -> Result<Vec<u8>, String>;

    /// Folds the per-block map outputs (sorted by block id) into the
    /// job result.
    fn reduce(&self, outputs: &[(u64, Vec<u8>)]) -> Vec<u8>;
}

/// Looks a job up by registry name.
#[must_use]
pub fn process_job(name: &str) -> Option<Box<dyn ProcessJob>> {
    match name {
        "wordcount" => Some(Box::new(WordCountJob)),
        "spin" => Some(Box::new(SpinJob)),
        _ => None,
    }
}

/// Reference fault-free execution: maps every block in-process and
/// reduces, with no scheduler in the loop. The chaos drills compare a
/// faulted distributed run against this byte-for-byte.
#[must_use]
pub fn run_local(job: &dyn ProcessJob, seed: u64, blocks: &[u64], broadcast: &[u8]) -> Vec<u8> {
    let mut sorted: Vec<u64> = blocks.to_vec();
    sorted.sort_unstable();
    let outputs: Vec<(u64, Vec<u8>)> = sorted
        .iter()
        .map(|&b| {
            let payload = job.make_block(seed, b);
            let out = job
                .map(&payload, broadcast)
                .expect("reference run must not fail");
            (b, out)
        })
        .collect();
    job.reduce(&outputs)
}

/// Classic word-count over deterministically generated text. Blocks are
/// sentences drawn from a fixed lexicon by `mix64(seed ^ block ^ i)`;
/// map emits sorted `word count` lines; reduce merges the counts.
struct WordCountJob;

const LEXICON: &[&str] = &[
    "consensus",
    "admm",
    "map",
    "reduce",
    "block",
    "worker",
    "shuffle",
    "broadcast",
    "privacy",
    "partition",
    "iterate",
    "converge",
];

impl ProcessJob for WordCountJob {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    fn make_block(&self, seed: u64, block: u64) -> Vec<u8> {
        let mut text = String::new();
        for i in 0..200u64 {
            let pick = mix64(seed ^ block.wrapping_mul(0x9E37) ^ i) as usize % LEXICON.len();
            if i > 0 {
                text.push(' ');
            }
            text.push_str(LEXICON[pick]);
        }
        text.into_bytes()
    }

    fn map(&self, block_bytes: &[u8], _broadcast: &[u8]) -> Result<Vec<u8>, String> {
        let text = std::str::from_utf8(block_bytes).map_err(|e| format!("non-utf8 block: {e}"))?;
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for word in text.split_whitespace() {
            *counts.entry(word).or_default() += 1;
        }
        let mut out = String::new();
        for (word, n) in counts {
            out.push_str(word);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        Ok(out.into_bytes())
    }

    fn reduce(&self, outputs: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (_, bytes) in outputs {
            let text = String::from_utf8_lossy(bytes);
            for line in text.lines() {
                if let Some((word, n)) = line.rsplit_once(' ') {
                    if let Ok(n) = n.parse::<u64>() {
                        *counts.entry(word.to_string()).or_default() += n;
                    }
                }
            }
        }
        let mut out = String::new();
        for (word, n) in counts {
            out.push_str(&word);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out.into_bytes()
    }
}

/// Compute-bound benchmark job: map folds `mix64` over the block's
/// words for a broadcast-controlled number of rounds and emits an
/// 8-byte digest; reduce XOR-folds the digests in block order. Wall
/// clock scales linearly with the broadcast rounds, which is what the
/// speculation benchmark needs from a straggler victim.
struct SpinJob;

/// Broadcast layout for the `spin` job: 8 little-endian bytes holding the
/// fold-round count (empty broadcast = 1 round).
#[must_use]
pub fn spin_broadcast(rounds: u64) -> Vec<u8> {
    rounds.to_le_bytes().to_vec()
}

impl ProcessJob for SpinJob {
    fn name(&self) -> &'static str {
        "spin"
    }

    fn make_block(&self, seed: u64, block: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        for i in 0..512u64 {
            out.extend_from_slice(&mix64(seed ^ block.rotate_left(17) ^ i).to_le_bytes());
        }
        out
    }

    fn map(&self, block_bytes: &[u8], broadcast: &[u8]) -> Result<Vec<u8>, String> {
        let rounds = match broadcast.len() {
            0 => 1,
            8 => u64::from_le_bytes(broadcast.try_into().expect("length checked")),
            n => return Err(format!("spin broadcast must be 0 or 8 bytes, got {n}")),
        };
        let mut acc = 0u64;
        for _ in 0..rounds {
            for chunk in block_bytes.chunks_exact(8) {
                let w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
                acc = mix64(acc ^ w);
            }
        }
        Ok(acc.to_le_bytes().to_vec())
    }

    fn reduce(&self, outputs: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut acc = 0u64;
        for (block, bytes) in outputs {
            let mut word = [0u8; 8];
            word[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
            acc = mix64(acc ^ block ^ u64::from_le_bytes(word));
        }
        acc.to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_known_jobs_only() {
        assert!(process_job("wordcount").is_some());
        assert!(process_job("spin").is_some());
        assert!(process_job("no-such-job").is_none());
    }

    #[test]
    fn blocks_and_maps_are_deterministic() {
        for name in ["wordcount", "spin"] {
            let job = process_job(name).unwrap();
            let broadcast = if name == "spin" {
                spin_broadcast(2)
            } else {
                Vec::new()
            };
            for block in 0..4u64 {
                let a = job.make_block(7, block);
                let b = job.make_block(7, block);
                assert_eq!(a, b, "{name} block {block} not deterministic");
                let ma = job.map(&a, &broadcast).unwrap();
                let mb = job.map(&b, &broadcast).unwrap();
                assert_eq!(ma, mb, "{name} map {block} not deterministic");
            }
            assert_ne!(
                job.make_block(7, 0),
                job.make_block(8, 0),
                "{name} seed must matter"
            );
        }
    }

    #[test]
    fn wordcount_counts_add_up() {
        let job = process_job("wordcount").unwrap();
        let result = run_local(job.as_ref(), 3, &[0, 1, 2], &[]);
        let text = String::from_utf8(result).unwrap();
        let total: u64 = text
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        // 3 blocks × 200 words each.
        assert_eq!(total, 600);
    }

    #[test]
    fn run_local_is_order_independent() {
        let job = process_job("spin").unwrap();
        let a = run_local(job.as_ref(), 11, &[0, 1, 2, 3], &spin_broadcast(1));
        let b = run_local(job.as_ref(), 11, &[3, 1, 0, 2], &spin_broadcast(1));
        assert_eq!(a, b);
    }

    #[test]
    fn spin_rejects_malformed_broadcast() {
        let job = process_job("spin").unwrap();
        let block = job.make_block(1, 0);
        assert!(job.map(&block, &[1, 2, 3]).is_err());
    }
}
