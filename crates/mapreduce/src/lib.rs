//! An iterative MapReduce runtime with simulated HDFS data locality.
//!
//! The paper deploys its trainers on Hadoop-style Data Parallel Systems and
//! leans on two of their properties (§I):
//!
//! 1. **Data locality** — each node stores and processes its own blocks, so
//!    raw training data never crosses the network; only (small) Map outputs
//!    move. This is simultaneously the performance argument and the privacy
//!    argument.
//! 2. **Iteration** — consensus ADMM needs a feedback channel from the
//!    Reduce step back to the Mappers every iteration; plain Hadoop cannot
//!    express this, which is why the paper points at Twister
//!    (Ekanayake et al., HPDC'10). This runtime is Twister-shaped:
//!    long-lived map tasks with per-block **state** that persists across
//!    iterations, a broadcast channel for the consensus variables, and a
//!    driver that loops Map → Shuffle → Reduce → feedback.
//!
//! The "cluster" is a pool of OS threads, one set of map slots per simulated
//! node, fed over `std::sync::mpsc` channels; an in-memory [`BlockStore`] plays HDFS
//! (block placement with a replication factor), and the [`Scheduler`]
//! assigns map tasks to replicas-first, falling back to remote reads that
//! are charged to the [`JobMetrics`]. A [`FaultPlan`] can kill or delay
//! individual task attempts to exercise re-execution.
//!
//! # Example: iterative averaging (a miniature of the paper's dataflow)
//!
//! ```
//! use ppml_mapreduce::{Cluster, ClusterConfig, IterativeJob, NodeId};
//!
//! struct Averager;
//! impl IterativeJob for Averager {
//!     type BlockPayload = Vec<f64>;
//!     type MapperState = ();           // stateless mapper
//!     type Broadcast = f64;            // current consensus guess
//!     type Key = ();                   // single reduce group
//!     type MapOut = (f64, usize);      // (local sum, count)
//!     type ReduceOut = f64;
//!
//!     fn init_state(&self, _: ppml_mapreduce::BlockId, _: &Vec<f64>) {}
//!     fn map(&self, _n: NodeId, block: &Vec<f64>, _s: &mut (), z: &f64)
//!         -> Vec<((), (f64, usize))> {
//!         // Each mapper nudges its local mean toward the broadcast z.
//!         let local: f64 = block.iter().sum::<f64>() / block.len() as f64;
//!         vec![((), (0.5 * (local + z), 1))]
//!     }
//!     fn reduce(&self, _k: &(), vs: Vec<(f64, usize)>) -> f64 {
//!         vs.iter().map(|v| v.0).sum::<f64>() / vs.len() as f64
//!     }
//! }
//!
//! # fn main() -> Result<(), ppml_mapreduce::MapReduceError> {
//! let mut cluster = Cluster::new(ClusterConfig::default(), Averager)?;
//! cluster.load_blocks(vec![vec![1.0, 2.0], vec![3.0, 5.0]])?;
//! let mut z = 0.0;
//! for _ in 0..32 {
//!     let out = cluster.run_iteration(&z)?;
//!     z = out.outputs[0].1;
//! }
//! assert!((z - 2.75).abs() < 0.1); // consensus of the block means
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
mod block;
mod bytes;
mod cluster;
mod error;
mod fault;
pub mod job;
mod metrics;
mod scheduler;
pub mod worker;

pub use block::{BlockId, BlockStore};
pub use bytes::ByteSized;
pub use cluster::{Cluster, ClusterConfig, IterationOutput};
pub use error::MapReduceError;
pub use fault::{FaultPlan, FaultSpec, WorkerFault};
pub use job::{process_job, run_local, spin_broadcast, ProcessJob};
pub use metrics::JobMetrics;
pub use scheduler::{Scheduler, TaskAssignment, TaskPolicy, TaskScheduler};
pub use worker::{WorkerOptions, WorkerReport, REGISTER_TAG};

/// Identifier of a simulated cluster node (also an HDFS data node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A Twister-style iterative MapReduce job.
///
/// One implementation describes the whole computation; the [`Cluster`]
/// executes it. Map tasks are *long-lived*: each block owns a
/// [`IterativeJob::MapperState`] that the runtime threads through every
/// iteration — this is where the paper's trainers keep their ADMM dual
/// variables, which never leave the node.
pub trait IterativeJob: Send + Sync + 'static {
    /// Immutable per-block data (the node-local training partition).
    type BlockPayload: Send + Sync + 'static;
    /// Mutable per-block mapper state, preserved across iterations.
    type MapperState: Send + 'static;
    /// Value broadcast from the driver to every mapper each iteration (the
    /// consensus variables in the paper).
    type Broadcast: Clone + Send + Sync + ByteSized + 'static;
    /// Shuffle key. Ordered so reduce groups are deterministic.
    type Key: Ord + Clone + Send + 'static;
    /// Map output value (what actually crosses the simulated network).
    type MapOut: Send + ByteSized + 'static;
    /// Reduce output value.
    type ReduceOut: Send + 'static;

    /// Creates the initial mapper state for a block (called once at load).
    fn init_state(&self, block: BlockId, payload: &Self::BlockPayload) -> Self::MapperState;

    /// The Map() procedure: local computation over one block.
    fn map(
        &self,
        node: NodeId,
        payload: &Self::BlockPayload,
        state: &mut Self::MapperState,
        broadcast: &Self::Broadcast,
    ) -> Vec<(Self::Key, Self::MapOut)>;

    /// The Reduce() procedure: combines all values shuffled to one key.
    fn reduce(&self, key: &Self::Key, values: Vec<Self::MapOut>) -> Self::ReduceOut;

    /// Optional combiner: runs on the mapper's node over that single task's
    /// output for one key, *before* the shuffle, so only its (smaller)
    /// result crosses the network. Classic use: pre-summing word counts.
    ///
    /// The default forwards values unchanged. A combiner must be
    /// semantically idempotent with respect to `reduce`:
    /// `reduce(k, combine(k, v))` must equal `reduce(k, v)`.
    fn combine(&self, key: &Self::Key, values: Vec<Self::MapOut>) -> Vec<Self::MapOut> {
        let _ = key;
        values
    }
}
