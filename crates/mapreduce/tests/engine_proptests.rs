//! Engine invariant: the result of a MapReduce computation is a pure
//! function of the job and its inputs — never of the cluster shape,
//! scheduling, replication, or injected (recoverable) faults.

use std::collections::BTreeMap;

use ppml_data::check::run_cases;
use ppml_mapreduce::{BlockId, Cluster, ClusterConfig, FaultPlan, IterativeJob, NodeId};

/// Sums per-residue-class histograms of integer blocks; iterative so that
/// state persistence also gets exercised.
struct Histogram;

impl IterativeJob for Histogram {
    type BlockPayload = Vec<u64>;
    type MapperState = u64; // running offset, proves state persistence
    type Broadcast = u64; // modulus
    type Key = u64;
    type MapOut = u64;
    type ReduceOut = u64;

    fn init_state(&self, _: BlockId, _: &Vec<u64>) -> u64 {
        0
    }

    fn map(&self, _n: NodeId, block: &Vec<u64>, state: &mut u64, modulus: &u64) -> Vec<(u64, u64)> {
        *state += 1;
        block
            .iter()
            .map(|&v| ((v + *state - 1) % modulus, 1))
            .collect()
    }

    fn reduce(&self, _k: &u64, values: Vec<u64>) -> u64 {
        values.into_iter().sum()
    }
}

fn reference(blocks: &[Vec<u64>], modulus: u64, iteration_state: u64) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for b in blocks {
        for &v in b {
            *m.entry((v + iteration_state) % modulus).or_insert(0) += 1;
        }
    }
    m
}

#[test]
fn output_independent_of_cluster_shape_and_faults() {
    run_cases(
        "output_independent_of_cluster_shape_and_faults",
        24,
        |g, _case| {
            let n_blocks = g.usize_in(1, 6);
            let blocks: Vec<Vec<u64>> = (0..n_blocks)
                .map(|_| {
                    let len = g.usize_in(1, 8);
                    g.vec_u64(0, 100, len)
                })
                .collect();
            let nodes = g.usize_in(1, 6);
            let slots = g.usize_in(1, 3);
            let replication = g.usize_in(1, 4).min(nodes);
            let fail_block = g.usize_in(0, 6);
            let fail_count = g.usize_in(0, 2);
            let modulus = g.u64_in(2, 9);

            let mut fault_plan = FaultPlan::new();
            if fail_count > 0 {
                fault_plan = fault_plan.fail_first_attempts(
                    0,
                    BlockId((fail_block % blocks.len()) as u64),
                    fail_count,
                );
            }
            let cfg = ClusterConfig {
                nodes,
                map_slots_per_node: slots,
                replication,
                max_attempts: 4,
                fault_plan,
                locality_slack: 1,
                reduce_tasks: 1 + nodes % 3,
                ..Default::default()
            };
            let mut cluster = Cluster::new(cfg, Histogram).unwrap();
            cluster.load_blocks(blocks.clone()).unwrap();
            // Two iterations: the second must see updated mapper state.
            for iteration in 0..2u64 {
                let out = cluster
                    .run_iteration(&modulus)
                    .expect("faults are recoverable");
                let got: BTreeMap<u64, u64> = out.outputs.iter().cloned().collect();
                assert_eq!(got, reference(&blocks, modulus, iteration));
            }
            // Metrics sanity: every map attempt is either local or remote.
            let m = cluster.metrics();
            assert!(m.locality_hits + m.remote_reads >= 2 * blocks.len());
            assert_eq!(m.iterations, 2);
        },
    );
}
