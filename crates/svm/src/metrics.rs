//! Classification metrics.

/// Fraction of `(predicted, actual)` pairs that agree (sign comparison).
///
/// Returns 0 for an empty iterator.
///
/// ```
/// let acc = ppml_svm::accuracy([(1.0, 1.0), (-1.0, 1.0)]);
/// assert_eq!(acc, 0.5);
/// ```
pub fn accuracy<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (pred, actual) in pairs {
        total += 1;
        if (pred >= 0.0) == (actual >= 0.0) {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// A binary confusion matrix (positive class = `+1`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Actual `+1` predicted `+1`.
    pub tp: usize,
    /// Actual `−1` predicted `−1`.
    pub tn: usize,
    /// Actual `−1` predicted `+1`.
    pub fp: usize,
    /// Actual `+1` predicted `−1`.
    pub fn_: usize,
}

impl Confusion {
    /// Total samples counted.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Accuracy `= (tp + tn) / total` (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Precision on the positive class (0 when no positive predictions).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall on the positive class (0 when no positive actuals).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall; 0 when undefined).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Builds a confusion matrix from `(predicted, actual)` sign pairs.
pub fn confusion<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Confusion {
    let mut c = Confusion::default();
    for (pred, actual) in pairs {
        match (pred >= 0.0, actual >= 0.0) {
            (true, true) => c.tp += 1,
            (false, false) => c.tn += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_sign_agreement() {
        assert_eq!(accuracy([(0.2, 1.0), (-3.0, -1.0), (0.5, -1.0)]), 2.0 / 3.0);
        assert_eq!(accuracy(std::iter::empty()), 0.0);
    }

    #[test]
    fn confusion_cells() {
        let c = confusion([
            (1.0, 1.0),   // tp
            (1.0, 1.0),   // tp
            (-1.0, -1.0), // tn
            (1.0, -1.0),  // fp
            (-1.0, 1.0),  // fn
        ]);
        assert_eq!((c.tp, c.tn, c.fp, c.fn_), (2, 1, 1, 1));
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusion_is_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }
}
