//! Kernel SVM trained on the Wolfe dual.

use ppml_data::Dataset;
use ppml_kernel::Kernel;
use ppml_linalg::Matrix;
use ppml_qp::{solve_box_eq, QpConfig};

use crate::{Result, SvmError};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Slack penalty `C` (the paper's evaluation uses `C = 50`).
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// Dual KKT tolerance.
    pub tol: f64,
    /// SMO iteration cap.
    pub max_iter: usize,
}

impl Default for SvmParams {
    /// The paper's evaluation settings: `C = 50`, linear kernel.
    fn default() -> Self {
        SvmParams {
            c: 50.0,
            kernel: Kernel::Linear,
            tol: 1e-6,
            max_iter: 200_000,
        }
    }
}

/// A trained (possibly nonlinear) SVM classifier.
///
/// Stores the support vectors with their dual weights; the discriminant is
/// `f(x) = Σ_{i∈SV} λ_i y_i K(x_i, x) + b` (§III-B).
#[derive(Debug, Clone)]
pub struct KernelSvm {
    kernel: Kernel,
    support_x: Matrix,
    /// `λ_i y_i` per support vector.
    coeffs: Vec<f64>,
    bias: f64,
    features: usize,
}

impl KernelSvm {
    /// Trains on `data` with the given parameters.
    ///
    /// # Errors
    ///
    /// [`SvmError::BadTrainingSet`] for empty or single-class data;
    /// [`SvmError::Solver`] if the dual QP fails.
    pub fn train(data: &Dataset, params: &SvmParams) -> Result<Self> {
        if data.is_empty() {
            return Err(SvmError::BadTrainingSet { reason: "empty" });
        }
        let (pos, neg) = data.class_counts();
        if pos == 0 || neg == 0 {
            return Err(SvmError::BadTrainingSet {
                reason: "single-class",
            });
        }
        let n = data.len();
        let y = data.y();
        // H_ij = y_i K(x_i, x_j) y_j
        let gram = params.kernel.gram(data.x());
        let h = Matrix::from_fn(n, n, |i, j| y[i] * gram[(i, j)] * y[j]);
        let lin = vec![-1.0; n];
        let sol = solve_box_eq(
            &h,
            &lin,
            0.0,
            params.c,
            y,
            0.0,
            &QpConfig {
                tol: params.tol,
                max_iter: params.max_iter,
            },
        )?;
        let lambda = sol.x;

        // Collect support vectors and recover the bias from the free ones
        // (0 < λ < C), averaged per Burges; fall back to the KKT interval
        // midpoint when every SV is at bound.
        let sv_idx: Vec<usize> = (0..n).filter(|&i| lambda[i] > params.c * 1e-8).collect();
        let support_x = data.x().select_rows(&sv_idx);
        let coeffs: Vec<f64> = sv_idx.iter().map(|&i| lambda[i] * y[i]).collect();

        let raw = |xi: &[f64]| -> f64 {
            sv_idx
                .iter()
                .zip(&coeffs)
                .map(|(&j, &c)| c * params.kernel.eval(data.sample(j), xi))
                .sum()
        };
        let free: Vec<usize> = sv_idx
            .iter()
            .copied()
            .filter(|&i| lambda[i] > params.c * 1e-6 && lambda[i] < params.c * (1.0 - 1e-6))
            .collect();
        let bias = if !free.is_empty() {
            free.iter()
                .map(|&i| y[i] - raw(data.sample(i)))
                .sum::<f64>()
                / free.len() as f64
        } else {
            // All SVs at bound: take the midpoint of the feasible interval
            // [max over y=+1 of (1 - f), min over y=-1 of (-1 - f)].
            let mut lo = f64::NEG_INFINITY;
            let mut hi = f64::INFINITY;
            for (i, &yi) in y.iter().enumerate().take(n) {
                let v = raw(data.sample(i));
                if yi > 0.0 {
                    lo = lo.max(1.0 - v);
                } else {
                    hi = hi.min(-1.0 - v);
                }
            }
            if lo.is_finite() && hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                0.0
            }
        };

        Ok(KernelSvm {
            kernel: params.kernel,
            support_x,
            coeffs,
            bias,
            features: data.features(),
        })
    }

    /// Decision value `f(x)`; the predicted class is its sign.
    ///
    /// # Errors
    ///
    /// [`SvmError::DimensionMismatch`] for a wrong-sized feature vector.
    pub fn decision(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.features {
            return Err(SvmError::DimensionMismatch {
                expected: self.features,
                found: x.len(),
            });
        }
        let k = self.kernel.eval_row(x, &self.support_x);
        Ok(ppml_linalg::vecops::dot(&k, &self.coeffs) + self.bias)
    }

    /// Predicted label in `{−1, +1}` (ties break positive).
    ///
    /// # Errors
    ///
    /// As [`KernelSvm::decision`].
    pub fn classify(&self, x: &[f64]) -> Result<f64> {
        Ok(if self.decision(x)? >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Fraction of `data` classified correctly (the paper's "correct
    /// classification ratio").
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than the model.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        crate::accuracy((0..data.len()).map(|i| {
            (
                self.classify(data.sample(i)).expect("dimension checked"),
                data.label(i),
            )
        }))
    }

    /// Number of support vectors.
    pub fn support_vector_count(&self) -> usize {
        self.coeffs.len()
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The kernel this model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Feature dimension the model expects.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Support vectors (rows) and their `λ_i y_i` coefficients.
    pub fn support_vectors(&self) -> (&Matrix, &[f64]) {
        (&self.support_x, &self.coeffs)
    }

    /// Rebuilds a model from its parts — the deserialization path for the
    /// binary model format, and the bridge from trainers that produce
    /// kernel-expansion models in other shapes. The feature dimension is
    /// `support_x.cols()`.
    ///
    /// # Errors
    ///
    /// [`SvmError::DimensionMismatch`] when `coeffs.len()` differs from
    /// `support_x.rows()`.
    pub fn from_parts(
        kernel: Kernel,
        support_x: Matrix,
        coeffs: Vec<f64>,
        bias: f64,
    ) -> Result<Self> {
        if coeffs.len() != support_x.rows() {
            return Err(SvmError::DimensionMismatch {
                expected: support_x.rows(),
                found: coeffs.len(),
            });
        }
        let features = support_x.cols();
        Ok(KernelSvm {
            kernel,
            support_x,
            coeffs,
            bias,
            features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::synth;

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let ds = synth::blobs(100, 1);
        let m = KernelSvm::train(&ds, &SvmParams::default()).unwrap();
        assert!(m.accuracy(&ds) > 0.97, "{}", m.accuracy(&ds));
        assert!(m.support_vector_count() < ds.len());
    }

    #[test]
    fn generalizes_to_fresh_test_data() {
        let ds = synth::cancer_like(400, 2);
        let (train, test) = ds.split(0.5, 3).unwrap();
        let m = KernelSvm::train(&train, &SvmParams::default()).unwrap();
        let acc = m.accuracy(&test);
        assert!(acc > 0.88, "cancer-like test accuracy {acc}");
    }

    #[test]
    fn rbf_solves_xor_where_linear_fails() {
        let ds = synth::xor_like(240, 4);
        let (train, test) = ds.split(0.5, 5).unwrap();
        let linear = KernelSvm::train(&train, &SvmParams::default()).unwrap();
        let rbf = KernelSvm::train(
            &train,
            &SvmParams {
                kernel: Kernel::Rbf { gamma: 0.5 },
                ..Default::default()
            },
        )
        .unwrap();
        // A shifted hyperplane can capture 3 of the 4 XOR quadrants (~75%),
        // but only a nonlinear boundary separates all four.
        let lin_acc = linear.accuracy(&test);
        let rbf_acc = rbf.accuracy(&test);
        assert!(lin_acc < 0.85, "linear cannot solve xor, got {lin_acc}");
        assert!(rbf_acc > 0.90, "rbf should solve xor, got {rbf_acc}");
        assert!(rbf_acc > lin_acc + 0.1, "kernel advantage missing");
    }

    #[test]
    fn known_two_point_solution() {
        // Points ±1 on the line, labels ±1 → w = 1, b = 0, margin hits both.
        let ds = Dataset::new(
            Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
            vec![1.0, -1.0],
        )
        .unwrap();
        let m = KernelSvm::train(&ds, &SvmParams::default()).unwrap();
        assert!((m.decision(&[1.0]).unwrap() - 1.0).abs() < 1e-5);
        assert!((m.decision(&[-1.0]).unwrap() + 1.0).abs() < 1e-5);
        assert!(m.bias().abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_training_sets() {
        let empty = Dataset::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert!(matches!(
            KernelSvm::train(&empty, &SvmParams::default()),
            Err(SvmError::BadTrainingSet { .. })
        ));
        let single = Dataset::new(Matrix::zeros(3, 2), vec![1.0, 1.0, 1.0]).unwrap();
        assert!(matches!(
            KernelSvm::train(&single, &SvmParams::default()),
            Err(SvmError::BadTrainingSet { .. })
        ));
    }

    #[test]
    fn dimension_checked_at_prediction() {
        let ds = synth::blobs(20, 6);
        let m = KernelSvm::train(&ds, &SvmParams::default()).unwrap();
        assert!(matches!(
            m.decision(&[1.0, 2.0, 3.0]),
            Err(SvmError::DimensionMismatch {
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn slack_penalty_controls_margin_violations() {
        // With a tiny C the model tolerates misclassification; with a large
        // C it fits the separable data exactly.
        let ds = synth::blobs(60, 7);
        let soft = KernelSvm::train(
            &ds,
            &SvmParams {
                c: 1e-4,
                ..Default::default()
            },
        )
        .unwrap();
        let hard = KernelSvm::train(
            &ds,
            &SvmParams {
                c: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(hard.accuracy(&ds) >= soft.accuracy(&ds));
    }

    #[test]
    fn from_parts_reproduces_the_decision_function() {
        let ds = synth::xor_like(80, 9);
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        };
        let m = KernelSvm::train(&ds, &params).unwrap();
        let (sv, coeffs) = m.support_vectors();
        let rebuilt =
            KernelSvm::from_parts(m.kernel(), sv.clone(), coeffs.to_vec(), m.bias()).unwrap();
        assert_eq!(rebuilt.features(), m.features());
        for i in 0..ds.len() {
            let x = ds.sample(i);
            assert_eq!(rebuilt.decision(x).unwrap(), m.decision(x).unwrap());
        }
        // Coefficient/support mismatches are rejected.
        assert!(matches!(
            KernelSvm::from_parts(m.kernel(), sv.clone(), vec![0.0], m.bias()),
            Err(SvmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn training_is_deterministic() {
        let ds = synth::cancer_like(120, 11);
        let a = KernelSvm::train(&ds, &SvmParams::default()).unwrap();
        let b = KernelSvm::train(&ds, &SvmParams::default()).unwrap();
        assert_eq!(a.bias(), b.bias());
        assert_eq!(a.support_vector_count(), b.support_vector_count());
    }
}
