//! The random-kernel baseline from the paper's related work (§II).
//!
//! Mangasarian & Wild (and Mangasarian, Wild & Fung for the vertical case)
//! protect training data by disclosing only a *randomly projected* kernel:
//! the learners agree on a random basis `Ā` (shared as a common key) and
//! release `K(X, Ā)` instead of `X`; a reduced SVM is then trained over
//! those projected features. The paper criticizes the approach because the
//! random basis must be shared like a key and the scheme only fits
//! client/server topologies — but it is the natural accuracy baseline to
//! compare the consensus trainers against, so it is implemented here.
//!
//! Mechanically, the reduced SVM is a linear SVM over the transformed
//! features `φ'(x) = K(x, Ā)`, which reuses [`crate::LinearSvm`].

use ppml_data::Dataset;
use ppml_kernel::Kernel;
use ppml_linalg::Matrix;

use crate::{LinearSvm, Result, SvmError};

/// A reduced SVM over random-kernel features.
///
/// # Example
///
/// ```
/// use ppml_data::synth;
/// use ppml_kernel::Kernel;
/// use ppml_svm::RandomKernelSvm;
///
/// # fn main() -> Result<(), ppml_svm::SvmError> {
/// let ds = synth::xor_like(240, 3);
/// let (train, test) = ds.split(0.5, 4).unwrap();
/// let model = RandomKernelSvm::train(&train, Kernel::Rbf { gamma: 0.5 }, 30, 50.0, 7)?;
/// assert!(model.accuracy(&test) > 0.85);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RandomKernelSvm {
    basis: Matrix,
    kernel: Kernel,
    inner: LinearSvm,
}

impl RandomKernelSvm {
    /// Trains with a random basis of `basis_size` rows subsampled from the
    /// training data (Mangasarian's "reduced set"), seeded by `seed`.
    ///
    /// # Errors
    ///
    /// [`SvmError::BadTrainingSet`] when `basis_size` is zero or exceeds the
    /// training size, or for the usual degenerate training sets.
    pub fn train(
        data: &Dataset,
        kernel: Kernel,
        basis_size: usize,
        c: f64,
        seed: u64,
    ) -> Result<Self> {
        if basis_size == 0 || basis_size > data.len() {
            return Err(SvmError::BadTrainingSet {
                reason: "basis size must be in 1..=n",
            });
        }
        let basis = subsample_rows(data.x(), basis_size, seed);
        let transformed = transform(data, &basis, kernel)?;
        let inner = LinearSvm::train(&transformed, c)?;
        Ok(RandomKernelSvm {
            basis,
            kernel,
            inner,
        })
    }

    /// The random basis `Ā` (the "common key" the paper objects to).
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// What a data owner would actually disclose for `data`: the projected
    /// features `K(X, Ā)` with the labels.
    ///
    /// # Errors
    ///
    /// [`SvmError::DimensionMismatch`] when feature dimensions differ.
    pub fn disclosed_view(&self, data: &Dataset) -> Result<Dataset> {
        transform(data, &self.basis, self.kernel)
    }

    /// Decision value for a raw (untransformed) sample.
    ///
    /// # Errors
    ///
    /// [`SvmError::DimensionMismatch`] for a wrong-sized sample.
    pub fn decision(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.basis.cols() {
            return Err(SvmError::DimensionMismatch {
                expected: self.basis.cols(),
                found: x.len(),
            });
        }
        let phi = self.kernel.eval_row(x, &self.basis);
        self.inner.decision(&phi)
    }

    /// Predicted label in `{−1, +1}`.
    ///
    /// # Errors
    ///
    /// As [`RandomKernelSvm::decision`].
    pub fn classify(&self, x: &[f64]) -> Result<f64> {
        Ok(if self.decision(x)? >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Correct-classification ratio on raw data.
    ///
    /// # Panics
    ///
    /// Panics if feature dimensions differ.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        crate::accuracy((0..data.len()).map(|i| {
            (
                self.classify(data.sample(i)).expect("dimension checked"),
                data.label(i),
            )
        }))
    }
}

fn transform(data: &Dataset, basis: &Matrix, kernel: Kernel) -> Result<Dataset> {
    if data.features() != basis.cols() {
        return Err(SvmError::DimensionMismatch {
            expected: basis.cols(),
            found: data.features(),
        });
    }
    let phi = kernel.cross_gram(data.x(), basis);
    Dataset::new(phi, data.y().to_vec()).map_err(|_| SvmError::BadTrainingSet {
        reason: "transform produced inconsistent shapes",
    })
}

/// Partial Fisher–Yates subsample (deterministic in `seed`).
fn subsample_rows(x: &Matrix, l: usize, seed: u64) -> Matrix {
    let mut idx: Vec<usize> = (0..x.rows()).collect();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xB5);
    for i in 0..l {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = i + (state as usize) % (idx.len() - i);
        idx.swap(i, j);
    }
    x.select_rows(&idx[..l])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::synth;

    #[test]
    fn solves_xor_like_a_kernel_svm() {
        let ds = synth::xor_like(300, 5);
        let (train, test) = ds.split(0.5, 6).unwrap();
        let model =
            RandomKernelSvm::train(&train, Kernel::Rbf { gamma: 0.5 }, 40, 50.0, 7).unwrap();
        let acc = model.accuracy(&test);
        assert!(acc > 0.9, "random-kernel xor accuracy {acc}");
    }

    #[test]
    fn close_to_full_kernel_svm_on_easy_data() {
        let ds = synth::cancer_like(300, 8);
        let (train, test) = ds.split(0.5, 9).unwrap();
        let full = crate::KernelSvm::train(
            &train,
            &crate::SvmParams {
                kernel: Kernel::Rbf { gamma: 1.0 / 9.0 },
                ..Default::default()
            },
        )
        .unwrap()
        .accuracy(&test);
        let reduced =
            RandomKernelSvm::train(&train, Kernel::Rbf { gamma: 1.0 / 9.0 }, 30, 50.0, 10)
                .unwrap()
                .accuracy(&test);
        assert!(
            reduced > full - 0.07,
            "reduced {reduced} too far below full {full}"
        );
    }

    #[test]
    fn disclosed_view_is_not_the_raw_data() {
        let ds = synth::blobs(50, 11);
        let model = RandomKernelSvm::train(&ds, Kernel::Rbf { gamma: 1.0 }, 10, 50.0, 12).unwrap();
        let view = model.disclosed_view(&ds).unwrap();
        assert_eq!(view.features(), 10, "projected dimension = basis size");
        assert_ne!(view.features(), ds.features());
        // Labels are shared (that is the scheme's design).
        assert_eq!(view.y(), ds.y());
    }

    #[test]
    fn validates_inputs() {
        let ds = synth::blobs(20, 13);
        assert!(RandomKernelSvm::train(&ds, Kernel::Linear, 0, 50.0, 1).is_err());
        assert!(RandomKernelSvm::train(&ds, Kernel::Linear, 21, 50.0, 1).is_err());
        let model = RandomKernelSvm::train(&ds, Kernel::Linear, 5, 50.0, 1).unwrap();
        assert!(model.decision(&[1.0]).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = synth::blobs(40, 14);
        let a = RandomKernelSvm::train(&ds, Kernel::Linear, 8, 50.0, 2).unwrap();
        let b = RandomKernelSvm::train(&ds, Kernel::Linear, 8, 50.0, 2).unwrap();
        assert_eq!(a.basis(), b.basis());
    }
}
