//! Model selection: k-fold cross-validation and grid search.
//!
//! §VI notes that `C` and `ρ` "are highly related to the learning
//! performance" but fixes them by hand. This module provides the standard
//! tooling to pick them empirically: stratification-free k-fold CV over any
//! train-evaluate closure, and a convenience grid search for the
//! centralized SVM's `(C, kernel)`.

use ppml_data::{rng, Dataset};
use ppml_kernel::Kernel;

use crate::{KernelSvm, Result, SvmError, SvmParams};

/// Mean k-fold cross-validation accuracy of an arbitrary trainer.
///
/// `train` receives the training fold and returns a classifier closure
/// mapping a sample to a predicted label.
///
/// # Errors
///
/// [`SvmError::BadTrainingSet`] when `folds < 2` or the dataset is smaller
/// than the fold count; errors from `train` are forwarded.
///
/// # Example
///
/// ```
/// use ppml_data::synth;
/// use ppml_svm::{cross_validate, LinearSvm};
///
/// # fn main() -> Result<(), ppml_svm::SvmError> {
/// let ds = synth::blobs(60, 1);
/// let acc = cross_validate(&ds, 3, 7, |train| {
///     let m = LinearSvm::train(train, 50.0)?;
///     Ok(Box::new(move |x: &[f64]| m.classify(x).expect("dims")))
/// })?;
/// assert!(acc > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn cross_validate<F>(data: &Dataset, folds: usize, seed: u64, mut train: F) -> Result<f64>
where
    F: FnMut(&Dataset) -> Result<Box<dyn Fn(&[f64]) -> f64>>,
{
    if folds < 2 || data.len() < folds {
        return Err(SvmError::BadTrainingSet {
            reason: "need at least 2 folds and one sample per fold",
        });
    }
    let perm = rng::permutation(data.len(), &mut rng::seeded(seed));
    let mut total_correct = 0usize;
    for f in 0..folds {
        let test_idx: Vec<usize> = perm
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % folds == f)
            .map(|(_, v)| v)
            .collect();
        let train_idx: Vec<usize> = perm
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % folds != f)
            .map(|(_, v)| v)
            .collect();
        let model = train(&data.select(&train_idx))?;
        total_correct += test_idx
            .iter()
            .filter(|&&i| (model(data.sample(i)) >= 0.0) == (data.label(i) >= 0.0))
            .count();
    }
    Ok(total_correct as f64 / data.len() as f64)
}

/// Result of a grid search: the winning parameters with their CV accuracy,
/// plus every evaluated cell for inspection.
#[derive(Debug, Clone)]
pub struct GridSearchOutcome {
    /// The best-scoring parameters.
    pub best: SvmParams,
    /// Cross-validation accuracy of `best`.
    pub best_accuracy: f64,
    /// Every `(params, accuracy)` pair evaluated, in scan order.
    pub evaluated: Vec<(SvmParams, f64)>,
}

/// Exhaustive grid search over `(C, kernel)` for the centralized SVM,
/// scored by `folds`-fold cross-validation.
///
/// # Errors
///
/// [`SvmError::BadTrainingSet`] for empty grids or degenerate data; trainer
/// errors are forwarded.
pub fn grid_search(
    data: &Dataset,
    cs: &[f64],
    kernels: &[Kernel],
    folds: usize,
    seed: u64,
) -> Result<GridSearchOutcome> {
    if cs.is_empty() || kernels.is_empty() {
        return Err(SvmError::BadTrainingSet {
            reason: "empty parameter grid",
        });
    }
    let mut evaluated = Vec::with_capacity(cs.len() * kernels.len());
    for &kernel in kernels {
        for &c in cs {
            let params = SvmParams {
                c,
                kernel,
                ..Default::default()
            };
            let acc = cross_validate(data, folds, seed, |train| {
                let m = KernelSvm::train(train, &params)?;
                Ok(Box::new(move |x: &[f64]| {
                    m.classify(x).expect("cv folds share dimensions")
                }))
            })?;
            evaluated.push((params, acc));
        }
    }
    let (best, best_accuracy) = evaluated
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite accuracy"))
        .expect("non-empty grid");
    Ok(GridSearchOutcome {
        best,
        best_accuracy,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::synth;

    #[test]
    fn cv_scores_separable_data_high() {
        let ds = synth::blobs(90, 5);
        let acc = cross_validate(&ds, 3, 1, |train| {
            let m = crate::LinearSvm::train(train, 50.0)?;
            Ok(Box::new(move |x: &[f64]| m.classify(x).expect("dims")))
        })
        .unwrap();
        assert!(acc > 0.93, "cv accuracy {acc}");
    }

    #[test]
    fn cv_validates_fold_count() {
        type Predictor = Box<dyn Fn(&[f64]) -> f64>;
        let ds = synth::blobs(10, 1);
        let fail = |_: &Dataset| -> Result<Predictor> { unreachable!() };
        assert!(cross_validate(&ds, 1, 0, fail).is_err());
        let fail = |_: &Dataset| -> Result<Predictor> { unreachable!() };
        assert!(cross_validate(&ds, 11, 0, fail).is_err());
    }

    #[test]
    fn cv_folds_cover_every_sample_once() {
        // A "trainer" that always predicts +1 scores exactly the positive
        // fraction — proving each sample is tested exactly once.
        let ds = synth::blobs(40, 2);
        let acc = cross_validate(&ds, 4, 3, |_| Ok(Box::new(|_: &[f64]| 1.0))).unwrap();
        let (pos, _) = ds.class_counts();
        assert!((acc - pos as f64 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn grid_search_prefers_kernel_on_xor() {
        let ds = synth::xor_like(160, 7);
        let out = grid_search(
            &ds,
            &[1.0, 50.0],
            &[Kernel::Linear, Kernel::Rbf { gamma: 0.5 }],
            3,
            4,
        )
        .unwrap();
        assert_eq!(out.evaluated.len(), 4);
        assert!(
            matches!(out.best.kernel, Kernel::Rbf { .. }),
            "xor must select the RBF kernel, got {:?}",
            out.best.kernel
        );
        assert!(out.best_accuracy > 0.85);
    }

    #[test]
    fn grid_search_rejects_empty_grid() {
        let ds = synth::blobs(20, 8);
        assert!(grid_search(&ds, &[], &[Kernel::Linear], 2, 0).is_err());
        assert!(grid_search(&ds, &[1.0], &[], 2, 0).is_err());
    }
}
