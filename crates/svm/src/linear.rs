//! Linear SVM with an explicit weight vector.

use ppml_data::Dataset;
use ppml_kernel::Kernel;

use crate::{KernelSvm, Result, SvmError, SvmParams};

/// A linear SVM `f(x) = wᵀx + b` with materialized weights.
///
/// Trained through the same dual as [`KernelSvm`] (with the linear kernel),
/// then collapsed to `w = Σ λ_i y_i x_i` — the form the horizontally
/// partitioned trainer reaches consensus on.
///
/// # Example
///
/// ```
/// use ppml_data::synth;
/// use ppml_svm::LinearSvm;
///
/// # fn main() -> Result<(), ppml_svm::SvmError> {
/// let ds = synth::blobs(60, 2);
/// let m = LinearSvm::train(&ds, 50.0)?;
/// assert_eq!(m.weights().len(), 2);
/// assert!(m.accuracy(&ds) > 0.95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
}

impl LinearSvm {
    /// Trains with slack penalty `c` (dual SMO + weight extraction).
    ///
    /// # Errors
    ///
    /// As [`KernelSvm::train`].
    pub fn train(data: &Dataset, c: f64) -> Result<Self> {
        let model = KernelSvm::train(
            data,
            &SvmParams {
                c,
                kernel: Kernel::Linear,
                ..Default::default()
            },
        )?;
        Ok(Self::from_kernel_model(&model))
    }

    /// Collapses a linear-kernel [`KernelSvm`] into explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if the model was trained with a non-linear kernel (weights do
    /// not exist in input space then).
    pub fn from_kernel_model(model: &KernelSvm) -> Self {
        assert_eq!(
            model.kernel(),
            Kernel::Linear,
            "explicit weights require the linear kernel"
        );
        let (sv, coeffs) = model.support_vectors();
        let mut w = vec![0.0; model.features()];
        for (i, &c) in coeffs.iter().enumerate() {
            ppml_linalg::vecops::axpy(c, sv.row(i), &mut w);
        }
        LinearSvm { w, b: model.bias() }
    }

    /// Builds a model directly from weights (used by the distributed
    /// trainers to wrap their consensus result).
    pub fn from_parts(w: Vec<f64>, b: f64) -> Self {
        LinearSvm { w, b }
    }

    /// The weight vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The bias `b`.
    pub fn bias(&self) -> f64 {
        self.b
    }

    /// Decision value `wᵀx + b`.
    ///
    /// # Errors
    ///
    /// [`SvmError::DimensionMismatch`] for a wrong-sized input.
    pub fn decision(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.w.len() {
            return Err(SvmError::DimensionMismatch {
                expected: self.w.len(),
                found: x.len(),
            });
        }
        Ok(ppml_linalg::vecops::dot(&self.w, x) + self.b)
    }

    /// Predicted label in `{−1, +1}`.
    ///
    /// # Errors
    ///
    /// As [`LinearSvm::decision`].
    pub fn classify(&self, x: &[f64]) -> Result<f64> {
        Ok(if self.decision(x)? >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Serializes as a small line-oriented text format (stable across
    /// versions of this crate; see [`LinearSvm::from_text`]).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "ppml-linear-svm v1\nbias {:e}\nweights {}\n",
            self.b,
            self.w.len()
        );
        for w in &self.w {
            out.push_str(&format!("{w:e}\n"));
        }
        out
    }

    /// Parses the format produced by [`LinearSvm::to_text`].
    ///
    /// # Errors
    ///
    /// [`SvmError::BadTrainingSet`] (reused as the generic parse failure
    /// carrier) when the header, counts or numbers are malformed.
    pub fn from_text(text: &str) -> Result<Self> {
        let parse_err = || SvmError::BadTrainingSet {
            reason: "malformed model text",
        };
        let mut lines = text.lines();
        if lines.next() != Some("ppml-linear-svm v1") {
            return Err(parse_err());
        }
        let bias_line = lines.next().ok_or_else(parse_err)?;
        let b: f64 = bias_line
            .strip_prefix("bias ")
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let count_line = lines.next().ok_or_else(parse_err)?;
        let k: usize = count_line
            .strip_prefix("weights ")
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let mut w = Vec::with_capacity(k);
        for _ in 0..k {
            let v: f64 = lines
                .next()
                .ok_or_else(parse_err)?
                .trim()
                .parse()
                .map_err(|_| parse_err())?;
            w.push(v);
        }
        Ok(LinearSvm { w, b })
    }

    /// Correct-classification ratio on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s feature count differs from the model's.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        crate::accuracy((0..data.len()).map(|i| {
            (
                self.classify(data.sample(i)).expect("dimension checked"),
                data.label(i),
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::synth;
    use ppml_linalg::Matrix;

    #[test]
    fn matches_kernel_model_decisions() {
        let ds = synth::cancer_like(150, 3);
        let km = KernelSvm::train(&ds, &SvmParams::default()).unwrap();
        let lm = LinearSvm::from_kernel_model(&km);
        for i in 0..20 {
            let a = km.decision(ds.sample(i)).unwrap();
            let b = lm.decision(ds.sample(i)).unwrap();
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn two_point_weights() {
        let ds = ppml_data::Dataset::new(
            Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
            vec![1.0, -1.0],
        )
        .unwrap();
        let m = LinearSvm::train(&ds, 50.0).unwrap();
        assert!((m.weights()[0] - 1.0).abs() < 1e-5);
        assert!(m.bias().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "linear kernel")]
    fn refuses_nonlinear_models() {
        let ds = synth::blobs(30, 1);
        let km = KernelSvm::train(
            &ds,
            &SvmParams {
                kernel: Kernel::Rbf { gamma: 1.0 },
                ..Default::default()
            },
        )
        .unwrap();
        let _ = LinearSvm::from_kernel_model(&km);
    }

    #[test]
    fn text_serialization_roundtrip() {
        let m = LinearSvm::from_parts(vec![1.5, -2.25e-3, 0.0], -0.125);
        let back = LinearSvm::from_text(&m.to_text()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn text_parsing_rejects_garbage() {
        assert!(LinearSvm::from_text("").is_err());
        assert!(LinearSvm::from_text("wrong header\nbias 0\nweights 0\n").is_err());
        assert!(LinearSvm::from_text("ppml-linear-svm v1\nbias x\nweights 0\n").is_err());
        assert!(LinearSvm::from_text("ppml-linear-svm v1\nbias 0\nweights 2\n1.0\n").is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let m = LinearSvm::from_parts(vec![1.0, -2.0], 0.5);
        assert_eq!(m.decision(&[2.0, 1.0]).unwrap(), 0.5);
        assert_eq!(m.classify(&[2.0, 1.0]).unwrap(), 1.0);
        assert!(m.decision(&[1.0]).is_err());
    }
}
