//! Centralized SVM baseline (§III / §VI's benchmark).
//!
//! The paper compares every distributed trainer against "the centralized
//! SVM"; this crate is that benchmark. Training solves the standard
//! Wolfe-dual (problem (2) of the paper)
//!
//! ```text
//! min ½ λᵀHλ − 1ᵀλ    s.t. 0 ≤ λ ≤ C,  λᵀy = 0,     H_ij = y_i K(x_i, x_j) y_j
//! ```
//!
//! with the SMO-style solver from [`ppml_qp`]; the bias is recovered from
//! the free support vectors (averaged, per Burges' recommendation the paper
//! cites).
//!
//! # Example
//!
//! ```
//! use ppml_data::synth;
//! use ppml_svm::{KernelSvm, SvmParams};
//!
//! # fn main() -> Result<(), ppml_svm::SvmError> {
//! let ds = synth::blobs(80, 3);
//! let model = KernelSvm::train(&ds, &SvmParams::default())?;
//! assert!(model.accuracy(&ds) > 0.95);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
mod linear;
mod metrics;
mod model;
mod random_kernel;
mod tune;

pub use linear::LinearSvm;
pub use metrics::{accuracy, confusion, Confusion};
pub use model::{KernelSvm, SvmParams};
pub use random_kernel::RandomKernelSvm;
pub use tune::{cross_validate, grid_search, GridSearchOutcome};

use std::fmt;

/// Errors produced while training or evaluating an SVM.
#[derive(Debug, Clone, PartialEq)]
pub enum SvmError {
    /// The training set is empty or single-class.
    BadTrainingSet {
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The dual QP solver failed (shape bug or infeasibility).
    Solver(ppml_qp::QpError),
    /// A feature vector of the wrong dimension was supplied at prediction.
    DimensionMismatch {
        /// Dimension the model was trained with.
        expected: usize,
        /// Dimension supplied.
        found: usize,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::BadTrainingSet { reason } => write!(f, "bad training set: {reason}"),
            SvmError::Solver(e) => write!(f, "dual solver failed: {e}"),
            SvmError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} features, found {found}")
            }
        }
    }
}

impl std::error::Error for SvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvmError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppml_qp::QpError> for SvmError {
    fn from(e: ppml_qp::QpError) -> Self {
        SvmError::Solver(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SvmError>;
