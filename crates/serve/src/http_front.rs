//! The HTTP front: `POST /score`, `GET /healthz`, `GET /model`,
//! `GET /metrics` on one [`Router`].
//!
//! The scoring wire format is deliberately plain text so `curl` is a
//! complete client: the request body is one sample per line, features
//! comma-separated; the response is one line per sample, `label margin`,
//! space-separated. Floats render through Rust's shortest-round-trip
//! `Display`, so parsing a response margin back with `str::parse::<f64>`
//! reproduces the server's f64 bit for bit — that is what lets the
//! integration tests assert serve-vs-in-process equality over a text
//! protocol.
//!
//! `GET /model` reports metadata only — kind, feature count, generation,
//! encoded size. Weights, support vectors and kernel parameters never
//! leave the process (the §V serving privacy rule); a client of this
//! server learns labels and margins for inputs it already owns, nothing
//! about the coordinates that produced them.

use std::sync::Arc;

use ppml_telemetry::{MetricsRegistry, Request, Response, Router};

use crate::engine::Engine;

/// Parses a `POST /score` body: one sample per line, comma-separated
/// features, blank lines skipped. Returns `(features, flattened)`.
fn parse_body(body: &[u8]) -> Result<(usize, Vec<f64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let mut features = 0usize;
    let mut xs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row_start = xs.len();
        for field in line.split(',') {
            let v: f64 = field
                .trim()
                .parse()
                .map_err(|_| format!("line {}: unparseable number {field:?}", lineno + 1))?;
            xs.push(v);
        }
        let row_len = xs.len() - row_start;
        if features == 0 {
            features = row_len;
        } else if row_len != features {
            return Err(format!(
                "line {}: {row_len} features where earlier rows had {features}",
                lineno + 1
            ));
        }
    }
    if xs.is_empty() {
        return Err("empty batch".to_string());
    }
    Ok((features, xs))
}

/// Renders margins as the response body: `label margin`, one per line.
fn render_margins(margins: &[f64]) -> String {
    let mut out = String::with_capacity(margins.len() * 24);
    for m in margins {
        let label = if *m >= 0.0 { 1 } else { -1 };
        out.push_str(&format!("{label} {m}\n"));
    }
    out
}

/// Builds the serving route table over a shared engine and registry.
pub fn router(engine: Arc<Engine>, registry: Arc<MetricsRegistry>) -> Router {
    let score_engine = Arc::clone(&engine);
    let model_engine = engine;
    Router::new()
        .route("POST", "/score", move |req: &Request| {
            let (features, xs) = match parse_body(&req.body) {
                Ok(parsed) => parsed,
                Err(reason) => return Response::text(400, reason),
            };
            match score_engine.score_batch(features, &xs) {
                Ok(margins) => Response::ok_text(render_margins(&margins)),
                Err(e) => Response::text(422, format!("{e}")),
            }
        })
        .route("GET", "/healthz", |_req: &Request| {
            Response::ok_text("ok\n")
        })
        .route("GET", "/model", move |_req: &Request| {
            let snapshot = model_engine.current();
            Response::ok_text(format!(
                "kind {}\nfeatures {}\ngeneration {}\nbytes {}\n",
                snapshot.model.kind(),
                snapshot.model.features(),
                snapshot.generation,
                snapshot.bytes
            ))
        })
        .route("GET", "/metrics", move |_req: &Request| {
            let mut response = Response::ok_text(registry.render());
            response.content_type = "text/plain; version=0.0.4; charset=utf-8";
            response
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SavedModel;
    use ppml_svm::LinearSvm;
    use ppml_telemetry::{request, HttpServer};

    fn serve() -> (HttpServer, Arc<Engine>) {
        let engine = Engine::new(
            SavedModel::Linear(LinearSvm::from_parts(vec![1.0, -2.0], 0.5)),
            16,
        );
        let registry = Arc::new(MetricsRegistry::new());
        let server =
            HttpServer::serve("127.0.0.1:0", router(Arc::clone(&engine), registry)).expect("bind");
        (server, engine)
    }

    #[test]
    fn score_returns_labels_and_round_trippable_margins() {
        let (server, engine) = serve();
        let addr = server.local_addr().to_string();
        let (status, body) =
            request(&addr, "POST", "/score", b"1.0,2.0\n-0.5, 0.25\n").expect("request");
        assert_eq!(status, 200, "{body}");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        let expected = engine.score_batch(2, &[1.0, 2.0, -0.5, 0.25]).unwrap();
        for (line, want) in lines.iter().zip(&expected) {
            let (label, margin) = line.split_once(' ').expect("label margin");
            let margin: f64 = margin.parse().expect("parse margin");
            assert_eq!(margin.to_bits(), want.to_bits(), "margin drifted in text");
            let want_label = if *want >= 0.0 { "1" } else { "-1" };
            assert_eq!(label, want_label);
        }
        server.shutdown();
    }

    #[test]
    fn bad_bodies_answer_400_and_wrong_shapes_422() {
        let (server, _engine) = serve();
        let addr = server.local_addr().to_string();
        let (status, _) = request(&addr, "POST", "/score", b"1.0,banana\n").expect("request");
        assert_eq!(status, 400);
        let (status, _) = request(&addr, "POST", "/score", b"").expect("request");
        assert_eq!(status, 400);
        let (status, _) = request(&addr, "POST", "/score", b"1,2\n1,2,3\n").expect("request");
        assert_eq!(status, 400);
        // Consistent rows of the wrong width parse fine but fail scoring.
        let (status, _) = request(&addr, "POST", "/score", b"1,2,3\n").expect("request");
        assert_eq!(status, 422);
        server.shutdown();
    }

    #[test]
    fn model_endpoint_reveals_metadata_and_nothing_else() {
        let (server, _engine) = serve();
        let addr = server.local_addr().to_string();
        let (status, body) = request(&addr, "GET", "/model", b"").expect("request");
        assert_eq!(status, 200);
        assert!(body.contains("kind linear"), "{body}");
        assert!(body.contains("features 2"), "{body}");
        assert!(body.contains("generation 1"), "{body}");
        // No coordinate of the model (weights 1.0, −2.0, bias 0.5) may
        // appear — only shape and bookkeeping.
        for line in body.lines() {
            let (key, _) = line.split_once(' ').expect("key value");
            assert!(
                matches!(key, "kind" | "features" | "generation" | "bytes"),
                "unexpected /model field {key:?}"
            );
        }
        let (status, body) = request(&addr, "GET", "/healthz", b"").expect("request");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        server.shutdown();
    }

    #[test]
    fn margins_render_shortest_round_trip() {
        // One third is not exactly representable: the classic case where
        // naive formatting loses bits.
        let rendered = render_margins(&[1.0 / 3.0, -2.0 / 3.0]);
        for (line, want) in rendered.lines().zip([1.0_f64 / 3.0, -2.0 / 3.0]) {
            let margin: f64 = line.split_once(' ').unwrap().1.parse().unwrap();
            assert_eq!(margin.to_bits(), want.to_bits());
        }
    }
}
