//! The versioned, checksummed binary model format (`PPMLMODL`).
//!
//! Layout mirrors the `ppml-core` checkpoint discipline byte for byte in
//! structure: magic, version, payload length, `Wire`-encoded payload, and
//! an IEEE CRC-32 trailer over everything before it.
//!
//! ```text
//! [8B magic "PPMLMODL"] [u16 version] [u32 payload_len] [payload…] [u32 crc32]
//! ```
//!
//! The payload opens with a one-byte model tag:
//!
//! * tag 1, linear:  `bias f64 · w Vec<f64>`
//! * tag 2, kernel:  `kernel-tag u8 · params… · bias f64 · features u32 ·
//!   coeffs Vec<f64> · sv Vec<f64>` (support vectors flattened row-major,
//!   `sv.len() == coeffs.len() × features`)
//!
//! Saving is crash-consistent the same way checkpoints are: write
//! `<path>.tmp`, fsync, rename over `path`, fsync the directory. A reader
//! that races a non-atomic writer sees either the old file or a CRC
//! failure — never a half-model.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use ppml_kernel::Kernel;
use ppml_linalg::Matrix;
use ppml_svm::{KernelSvm, LinearSvm};
use ppml_transport::frame::crc32;
use ppml_transport::wire::{Reader, Wire};

/// First eight bytes of every binary model file.
pub const MODEL_MAGIC: &[u8; 8] = b"PPMLMODL";

/// Current format version; readers refuse anything newer.
pub const MODEL_VERSION: u16 = 1;

const TAG_LINEAR: u8 = 1;
const TAG_KERNEL: u8 = 2;

const KERNEL_LINEAR: u8 = 0;
const KERNEL_POLYNOMIAL: u8 = 1;
const KERNEL_RBF: u8 = 2;
const KERNEL_SIGMOID: u8 = 3;

/// Model (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    reason: String,
}

impl ModelError {
    fn new(reason: impl Into<String>) -> Self {
        ModelError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model: {}", self.reason)
    }
}

impl std::error::Error for ModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

/// A trained model in its persistable form: either the flat linear
/// hyperplane or a kernel expansion over stored support vectors.
#[derive(Debug, Clone)]
pub enum SavedModel {
    /// `f(x) = ⟨w, x⟩ + b` — the serving fast path.
    Linear(LinearSvm),
    /// `f(x) = Σ_i c_i K(s_i, x) + b` over stored support rows.
    Kernel(KernelSvm),
}

impl SavedModel {
    /// `"linear"` or `"kernel"` — the label `/model` metadata reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SavedModel::Linear(_) => "linear",
            SavedModel::Kernel(_) => "kernel",
        }
    }

    /// Feature dimension the model expects.
    pub fn features(&self) -> usize {
        match self {
            SavedModel::Linear(m) => m.weights().len(),
            SavedModel::Kernel(m) => m.features(),
        }
    }

    /// Decision value `f(x)`; the predicted class is its sign.
    ///
    /// # Errors
    ///
    /// [`ppml_svm::SvmError::DimensionMismatch`] for a wrong-sized
    /// feature vector.
    pub fn decision(&self, x: &[f64]) -> ppml_svm::Result<f64> {
        match self {
            SavedModel::Linear(m) => m.decision(x),
            SavedModel::Kernel(m) => m.decision(x),
        }
    }

    /// Predicted label in `{−1, +1}` (ties break positive).
    ///
    /// # Errors
    ///
    /// As [`SavedModel::decision`].
    pub fn classify(&self, x: &[f64]) -> ppml_svm::Result<f64> {
        match self {
            SavedModel::Linear(m) => m.classify(x),
            SavedModel::Kernel(m) => m.classify(x),
        }
    }

    /// Serializes to the `PPMLMODL` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            SavedModel::Linear(m) => {
                TAG_LINEAR.encode_into(&mut payload);
                m.bias().encode_into(&mut payload);
                m.weights().to_vec().encode_into(&mut payload);
            }
            SavedModel::Kernel(m) => {
                TAG_KERNEL.encode_into(&mut payload);
                match m.kernel() {
                    Kernel::Linear => KERNEL_LINEAR.encode_into(&mut payload),
                    Kernel::Polynomial { a, b, degree } => {
                        KERNEL_POLYNOMIAL.encode_into(&mut payload);
                        a.encode_into(&mut payload);
                        b.encode_into(&mut payload);
                        degree.encode_into(&mut payload);
                    }
                    Kernel::Rbf { gamma } => {
                        KERNEL_RBF.encode_into(&mut payload);
                        gamma.encode_into(&mut payload);
                    }
                    Kernel::Sigmoid { c } => {
                        KERNEL_SIGMOID.encode_into(&mut payload);
                        c.encode_into(&mut payload);
                    }
                }
                m.bias().encode_into(&mut payload);
                (m.features() as u32).encode_into(&mut payload);
                let (sv, coeffs) = m.support_vectors();
                coeffs.to_vec().encode_into(&mut payload);
                sv.as_slice().to_vec().encode_into(&mut payload);
            }
        }
        let mut out = Vec::with_capacity(8 + 2 + 4 + payload.len() + 4);
        out.extend_from_slice(MODEL_MAGIC);
        out.extend_from_slice(&MODEL_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates the `PPMLMODL` byte layout.
    ///
    /// # Errors
    ///
    /// [`ModelError`] on a wrong magic, a future version, a CRC mismatch,
    /// a length disagreement, trailing bytes, or any structural defect of
    /// the payload (including support/coefficient shape mismatches).
    pub fn from_bytes(bytes: &[u8]) -> Result<SavedModel> {
        if bytes.len() < 8 + 2 + 4 + 4 {
            return Err(ModelError::new("file too short"));
        }
        if &bytes[..8] != MODEL_MAGIC {
            return Err(ModelError::new("bad magic (not a ppml model file)"));
        }
        let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let crc_computed = crc32(&bytes[..bytes.len() - 4]);
        if crc_stored != crc_computed {
            return Err(ModelError::new(format!(
                "checksum mismatch: computed {crc_computed:#010x}, stored {crc_stored:#010x}"
            )));
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
        if version > MODEL_VERSION {
            return Err(ModelError::new(format!(
                "model version {version} is newer than supported {MODEL_VERSION}"
            )));
        }
        let payload_len = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes")) as usize;
        let body = &bytes[14..bytes.len() - 4];
        if body.len() != payload_len {
            return Err(ModelError::new(format!(
                "payload length {payload_len} but {} bytes present",
                body.len()
            )));
        }
        let mut r = Reader::new(body);
        let structural = |e: ppml_transport::wire::WireError| ModelError::new(format!("{e}"));
        let model = match r.u8().map_err(structural)? {
            TAG_LINEAR => {
                let bias = r.f64().map_err(structural)?;
                let w = r.vec_f64().map_err(structural)?;
                if w.is_empty() {
                    return Err(ModelError::new("linear model with zero features"));
                }
                SavedModel::Linear(LinearSvm::from_parts(w, bias))
            }
            TAG_KERNEL => {
                let kernel = match r.u8().map_err(structural)? {
                    KERNEL_LINEAR => Kernel::Linear,
                    KERNEL_POLYNOMIAL => Kernel::Polynomial {
                        a: r.f64().map_err(structural)?,
                        b: r.f64().map_err(structural)?,
                        degree: r.u32().map_err(structural)?,
                    },
                    KERNEL_RBF => Kernel::Rbf {
                        gamma: r.f64().map_err(structural)?,
                    },
                    KERNEL_SIGMOID => Kernel::Sigmoid {
                        c: r.f64().map_err(structural)?,
                    },
                    other => return Err(ModelError::new(format!("unknown kernel tag {other}"))),
                };
                let bias = r.f64().map_err(structural)?;
                let features = r.u32().map_err(structural)? as usize;
                if features == 0 {
                    return Err(ModelError::new("kernel model with zero features"));
                }
                let coeffs = r.vec_f64().map_err(structural)?;
                let sv = r.vec_f64().map_err(structural)?;
                if sv.len() != coeffs.len() * features {
                    return Err(ModelError::new(format!(
                        "support-vector shape mismatch: {} values for {} × {features}",
                        sv.len(),
                        coeffs.len()
                    )));
                }
                let support = Matrix::from_vec(coeffs.len(), features, sv)
                    .map_err(|e| ModelError::new(format!("{e}")))?;
                SavedModel::Kernel(
                    KernelSvm::from_parts(kernel, support, coeffs, bias)
                        .map_err(|e| ModelError::new(format!("{e}")))?,
                )
            }
            other => return Err(ModelError::new(format!("unknown model tag {other}"))),
        };
        if r.remaining() != 0 {
            return Err(ModelError::new(format!(
                "{} trailing payload bytes",
                r.remaining()
            )));
        }
        Ok(model)
    }

    /// Atomically writes the model to `path` (temp + fsync + rename +
    /// directory fsync) and returns the encoded size.
    ///
    /// # Errors
    ///
    /// [`ModelError`] wrapping any I/O failure.
    pub fn save(&self, path: &Path) -> Result<usize> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = Path::new(&tmp);
        let io = |step: &str, e: std::io::Error| {
            ModelError::new(format!("{step} {}: {e}", path.display()))
        };
        let mut file = File::create(tmp).map_err(|e| io("create", e))?;
        file.write_all(&bytes).map_err(|e| io("write", e))?;
        file.sync_all().map_err(|e| io("fsync", e))?;
        drop(file);
        fs::rename(tmp, path).map_err(|e| io("rename", e))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes.len())
    }

    /// Loads a binary `PPMLMODL` model from `path`.
    ///
    /// # Errors
    ///
    /// [`ModelError`] on I/O failure or any validation failure of
    /// [`SavedModel::from_bytes`].
    pub fn load(path: &Path) -> Result<SavedModel> {
        let bytes =
            fs::read(path).map_err(|e| ModelError::new(format!("read {}: {e}", path.display())))?;
        SavedModel::from_bytes(&bytes)
    }

    /// Loads either format: binary `PPMLMODL` when the magic matches,
    /// otherwise the flat-text `ppml-linear-svm v1` format — so every
    /// model `ppml train` has ever written stays loadable.
    ///
    /// # Errors
    ///
    /// [`ModelError`] when the bytes parse as neither format.
    pub fn load_auto(path: &Path) -> Result<SavedModel> {
        let bytes =
            fs::read(path).map_err(|e| ModelError::new(format!("read {}: {e}", path.display())))?;
        if bytes.starts_with(MODEL_MAGIC) {
            return SavedModel::from_bytes(&bytes);
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| ModelError::new("neither a binary model nor UTF-8 model text"))?;
        let linear = LinearSvm::from_text(&text)
            .map_err(|e| ModelError::new(format!("flat-text parse: {e}")))?;
        Ok(SavedModel::Linear(linear))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_data::synth;
    use ppml_svm::SvmParams;

    fn linear_sample() -> SavedModel {
        SavedModel::Linear(LinearSvm::from_parts(vec![0.5, -1.25, 3.0], 0.125))
    }

    fn kernel_sample() -> SavedModel {
        let ds = synth::xor_like(120, 3);
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        };
        SavedModel::Kernel(KernelSvm::train(&ds, &params).unwrap())
    }

    fn decisions_match(a: &SavedModel, b: &SavedModel, probes: &[Vec<f64>]) {
        for x in probes {
            assert_eq!(
                a.decision(x).unwrap().to_bits(),
                b.decision(x).unwrap().to_bits(),
                "decision drifted through serialization"
            );
        }
    }

    fn probes(features: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..features)
                    .map(|j| ((i * features + j) as f64).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn linear_round_trips_bit_exact() {
        let model = linear_sample();
        let back = SavedModel::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(back.kind(), "linear");
        assert_eq!(back.features(), 3);
        decisions_match(&model, &back, &probes(3, 10));
    }

    #[test]
    fn kernel_round_trips_bit_exact() {
        let model = kernel_sample();
        let back = SavedModel::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(back.kind(), "kernel");
        assert_eq!(back.features(), model.features());
        decisions_match(&model, &back, &probes(model.features(), 10));
    }

    #[test]
    fn every_kernel_variant_round_trips() {
        let sv = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        for kernel in [
            Kernel::Linear,
            Kernel::Polynomial {
                a: 0.5,
                b: 1.0,
                degree: 3,
            },
            Kernel::Rbf { gamma: 0.25 },
            Kernel::Sigmoid { c: -0.5 },
        ] {
            let model = SavedModel::Kernel(
                KernelSvm::from_parts(kernel, sv.clone(), vec![1.5, -0.5], 0.75).unwrap(),
            );
            let back = SavedModel::from_bytes(&model.to_bytes()).unwrap();
            decisions_match(&model, &back, &probes(2, 6));
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let good = linear_sample().to_bytes();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    SavedModel::from_bytes(&bad).is_err(),
                    "flip of bit {bit} in byte {byte} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let good = kernel_sample().to_bytes();
        for cut in 0..good.len() {
            assert!(
                SavedModel::from_bytes(&good[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = linear_sample().to_bytes();
        bytes.extend_from_slice(&[0xAB; 5]);
        assert!(SavedModel::from_bytes(&bytes).is_err());
    }

    #[test]
    fn future_versions_are_refused() {
        let mut bytes = linear_sample().to_bytes();
        let future = (MODEL_VERSION + 1).to_le_bytes();
        bytes[8..10].copy_from_slice(&future);
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = SavedModel::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn lying_shape_fields_are_rejected_not_misread() {
        // A kernel payload whose sv vector disagrees with coeffs×features
        // must fail validation even with a correct CRC.
        let sv = Matrix::from_vec(2, 3, vec![0.0; 6]).unwrap();
        let model = SavedModel::Kernel(
            KernelSvm::from_parts(Kernel::Linear, sv, vec![1.0, 2.0], 0.0).unwrap(),
        );
        let mut bytes = model.to_bytes();
        // features lives right after tag(1)+kernel-tag(1)+bias(8) in the
        // payload, which starts at offset 14.
        let features_at = 14 + 1 + 1 + 8;
        bytes[features_at..features_at + 4].copy_from_slice(&7u32.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = SavedModel::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("ppml-model-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let model = kernel_sample();
        let written = model.save(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len() as usize);
        let back = SavedModel::load(&path).unwrap();
        decisions_match(&model, &back, &probes(model.features(), 8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_auto_sniffs_binary_and_text() {
        let dir = std::env::temp_dir().join(format!("ppml-model-auto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let linear = LinearSvm::from_parts(vec![1.0, -2.0], 0.5);
        let text_path = dir.join("model.txt");
        std::fs::write(&text_path, linear.to_text()).unwrap();
        let from_text = SavedModel::load_auto(&text_path).unwrap();
        assert_eq!(from_text.kind(), "linear");

        let bin_path = dir.join("model.bin");
        SavedModel::Linear(linear.clone()).save(&bin_path).unwrap();
        let from_bin = SavedModel::load_auto(&bin_path).unwrap();
        decisions_match(&from_text, &from_bin, &probes(2, 6));

        let junk_path = dir.join("junk");
        std::fs::write(&junk_path, b"neither format").unwrap();
        assert!(SavedModel::load_auto(&junk_path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
