//! `ppml-serve`: batched, hot-reloading inference for trained SVMs
//! (ISSUE 6 tentpole).
//!
//! Training produces a model; this crate answers for it. One [`Engine`]
//! holds the live model behind an atomically swappable snapshot and
//! serves two fronts that share it:
//!
//! * **HTTP** ([`http_front::router`] on `ppml_telemetry::HttpServer`) —
//!   `POST /score` (text batches in, `label margin` lines out),
//!   `GET /healthz`, `GET /model` (metadata only), `GET /metrics`.
//! * **Frames** ([`FrameServer`]) — the workspace's length-prefixed,
//!   CRC-checked protocol, `Score` → `ScoreReply` per batch over
//!   persistent connections.
//!
//! Models persist in the [`model`] module's `PPMLMODL` binary format
//! (magic, version, CRC trailer — the checkpoint discipline applied to
//! models), with [`SavedModel::load_auto`] accepting the older flat-text
//! linear format too. A [`ModelWatcher`] polls the model file and swaps
//! new versions in without dropping in-flight requests.
//!
//! The serving privacy rule, stated once and enforced everywhere: the
//! server returns **labels and margins only**. No endpoint and no wire
//! kind carries weights, support vectors or kernel parameters.

#![forbid(unsafe_code)]

pub mod engine;
pub mod frames;
pub mod http_front;
pub mod model;
pub mod watch;

pub use engine::{Engine, Loaded, ScoreError};
pub use frames::{score_over_frames, FrameScoreClient, FrameServer};
pub use http_front::router;
pub use model::{ModelError, SavedModel, MODEL_MAGIC, MODEL_VERSION};
pub use watch::ModelWatcher;
