//! The frame front: batched scoring over the length-prefixed protocol.
//!
//! A [`FrameServer`] accepts TCP connections and speaks the workspace
//! frame codec — `[u32 len][version][kind][flags][from][to][seq][payload]
//! [crc32]` — answering every [`Message::Score`] with a
//! [`Message::ScoreReply`] on the same connection (source and destination
//! swapped, sequence echoed). Connections are persistent: a client can
//! stream many score requests over one socket. Any frame the server
//! cannot decode closes the connection — a scorer has no business
//! guessing at corrupt input — and non-score kinds are ignored so a
//! misdirected training peer does no harm. Replies carry only margins,
//! never model coordinates (the §V serving privacy rule).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ppml_transport::{Frame, Message};

use crate::engine::Engine;

/// Per-connection read/write budget, matching the HTTP front.
const CONN_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-poll interval while idle.
const POLL: Duration = Duration::from_millis(25);
/// Largest frame body we will buffer: caps a hostile length prefix.
/// 4 MiB ≈ half a million f64 features per request, far beyond any
/// batch the HTTP front would accept either.
const MAX_FRAME: usize = 4 * 1024 * 1024;
/// Party id the server answers from; scoring is outside the training
/// ring, so it uses an address no worker owns.
const SERVER_PARTY: u32 = u32::MAX;

/// A background frame-protocol scoring server. Dropping the handle stops
/// the accept loop (in-flight connections finish on their own threads).
pub struct FrameServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// answering `Score` frames from `engine`'s current model.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn serve(addr: &str, engine: Arc<Engine>) -> std::io::Result<FrameServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("ppml-frames".into())
            .spawn(move || accept_loop(listener, engine, stop_flag))
            .expect("spawn frame accept thread");
        Ok(FrameServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, engine: Arc<Engine>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = engine.clone();
                let _ = std::thread::Builder::new()
                    .name("ppml-frames-conn".into())
                    .spawn(move || {
                        let _ = converse(stream, &engine);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Reads exactly one length-prefixed frame from `stream`, or `None` on a
/// clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match stream.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let body_len = u32::from_le_bytes(prefix) as usize;
    if body_len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {body_len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; 4 + body_len];
    buf[..4].copy_from_slice(&prefix);
    stream.read_exact(&mut buf[4..])?;
    Ok(Some(buf))
}

/// Serves one connection: a loop of Score → ScoreReply exchanges.
fn converse(mut stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    loop {
        let Some(bytes) = read_frame(&mut stream)? else {
            return Ok(());
        };
        // Undecodable input (bad CRC, bad version, unknown kind) closes
        // the connection rather than risking a desynchronized stream.
        let Ok(frame) = Frame::decode(&bytes) else {
            return Ok(());
        };
        match frame.msg {
            Message::Score {
                request_id,
                features,
                xs,
            } => {
                let scored = engine.score_batch(features as usize, &xs);
                let (ok, margins) = match scored {
                    Ok(margins) => (true, margins),
                    Err(_) => (false, Vec::new()),
                };
                let reply = Frame {
                    flags: 0,
                    from: SERVER_PARTY,
                    to: frame.from,
                    seq: frame.seq,
                    msg: Message::ScoreReply {
                        request_id,
                        ok,
                        margins,
                    },
                };
                stream.write_all(&reply.encode())?;
                stream.flush()?;
            }
            Message::Shutdown => return Ok(()),
            // Training-protocol kinds have no meaning here; ignore them
            // so a misdirected peer cannot crash the scorer.
            _ => {}
        }
    }
}

/// A persistent frame-protocol scoring client: one connection, many
/// batches. The bench driver and integration tests share it.
pub struct FrameScoreClient {
    stream: TcpStream,
    next_id: u64,
    seq: u64,
}

impl FrameScoreClient {
    /// Connects to a [`FrameServer`] at `addr`.
    ///
    /// # Errors
    ///
    /// Connection and socket-option failures.
    pub fn connect(addr: &str) -> std::io::Result<FrameScoreClient> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "unresolvable address"))?;
        let stream = TcpStream::connect_timeout(&sockaddr, CONN_TIMEOUT)?;
        stream.set_read_timeout(Some(CONN_TIMEOUT))?;
        stream.set_write_timeout(Some(CONN_TIMEOUT))?;
        Ok(FrameScoreClient {
            stream,
            next_id: 1,
            seq: 1,
        })
    }

    /// Scores one flattened batch (`xs.len()` must be a multiple of
    /// `features`) and returns the margins.
    ///
    /// # Errors
    ///
    /// IO errors, an undecodable reply, a reply for a different request,
    /// or a server-side rejection (`ok: false`) — all surfaced as
    /// [`ErrorKind::InvalidData`] except raw socket failures.
    pub fn score(&mut self, features: u32, xs: Vec<f64>) -> std::io::Result<Vec<f64>> {
        let request_id = self.next_id;
        self.next_id += 1;
        let frame = Frame {
            flags: 0,
            from: 0,
            to: SERVER_PARTY,
            seq: self.seq,
            msg: Message::Score {
                request_id,
                features,
                xs,
            },
        };
        self.seq += 1;
        self.stream.write_all(&frame.encode())?;
        self.stream.flush()?;
        let bytes = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(ErrorKind::UnexpectedEof, "server closed mid-reply")
        })?;
        let reply = Frame::decode(&bytes)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("{e}")))?;
        match reply.msg {
            Message::ScoreReply {
                request_id: rid,
                ok,
                margins,
            } if rid == request_id => {
                if ok {
                    Ok(margins)
                } else {
                    Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        "server rejected the batch",
                    ))
                }
            }
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected reply kind {}", other.kind()),
            )),
        }
    }
}

/// One-shot convenience: connect, score one batch, disconnect.
///
/// # Errors
///
/// As [`FrameScoreClient::score`].
pub fn score_over_frames(addr: &str, features: u32, xs: Vec<f64>) -> std::io::Result<Vec<f64>> {
    FrameScoreClient::connect(addr)?.score(features, xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SavedModel;
    use ppml_svm::LinearSvm;

    fn engine() -> Arc<Engine> {
        Engine::new(
            SavedModel::Linear(LinearSvm::from_parts(vec![2.0, -1.0], 0.25)),
            32,
        )
    }

    #[test]
    fn score_round_trips_over_a_real_socket() {
        let server = FrameServer::serve("127.0.0.1:0", engine()).expect("bind");
        let addr = server.local_addr().to_string();
        let margins = score_over_frames(&addr, 2, vec![1.0, 1.0, 0.0, 4.0]).expect("score");
        assert_eq!(margins, vec![1.25, -3.75]);
        server.shutdown();
    }

    #[test]
    fn one_connection_carries_many_batches() {
        let server = FrameServer::serve("127.0.0.1:0", engine()).expect("bind");
        let mut client =
            FrameScoreClient::connect(&server.local_addr().to_string()).expect("connect");
        for i in 0..10 {
            let x = f64::from(i);
            let margins = client.score(2, vec![x, 0.0]).expect("score");
            assert_eq!(margins, vec![2.0 * x + 0.25]);
        }
        server.shutdown();
    }

    #[test]
    fn dimension_mismatch_answers_a_rejection_not_a_hang() {
        let server = FrameServer::serve("127.0.0.1:0", engine()).expect("bind");
        let addr = server.local_addr().to_string();
        let err = score_over_frames(&addr, 3, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        // The connection protocol survives: a fresh request still works.
        let margins = score_over_frames(&addr, 2, vec![1.0, 0.0]).expect("score");
        assert_eq!(margins, vec![2.25]);
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_close_the_connection_without_wedging() {
        let server = FrameServer::serve("127.0.0.1:0", engine()).expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        // A plausible length prefix followed by garbage: decode fails,
        // server closes, and the next client is unaffected.
        stream
            .write_all(&[30, 0, 0, 0, 1, 2, 3, 4, 5, 6])
            .expect("write");
        drop(stream);
        let margins = score_over_frames(&addr.to_string(), 2, vec![0.0, 0.0]).expect("score");
        assert_eq!(margins, vec![0.25]);
        server.shutdown();
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let server = FrameServer::serve("127.0.0.1:0", engine()).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(&u32::MAX.to_le_bytes())
            .expect("write prefix");
        // The server drops the connection instead of allocating 4 GiB.
        let mut buf = [0u8; 1];
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
        server.shutdown();
    }
}
