//! The scoring engine: one atomically swappable model behind both fronts.
//!
//! The engine holds the live model as an `Arc<Loaded>` inside an `RwLock`.
//! A scoring request clones the `Arc` once up front and computes every
//! margin against that pinned snapshot, so a hot reload never changes the
//! model *mid-batch*: in-flight requests finish on the model they started
//! with, and the old model is freed when its last request drops the `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use ppml_telemetry::{emit, EventKind, NO_PARTY};

use crate::model::SavedModel;

/// One immutable loaded-model snapshot.
#[derive(Debug)]
pub struct Loaded {
    /// The model every request against this snapshot scores with.
    pub model: SavedModel,
    /// Monotonic load counter; generation 1 is the startup load.
    pub generation: u64,
    /// Encoded size of the model file this snapshot came from.
    pub bytes: u64,
}

/// Why a score request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreError {
    reason: String,
}

impl ScoreError {
    fn new(reason: impl Into<String>) -> Self {
        ScoreError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "score: {}", self.reason)
    }
}

impl std::error::Error for ScoreError {}

/// The shared scoring engine.
pub struct Engine {
    current: RwLock<Arc<Loaded>>,
    generation: AtomicU64,
}

impl Engine {
    /// Wraps the startup model and emits the generation-1
    /// [`EventKind::ModelReload`], so "loads since start" is exactly the
    /// reload counter.
    pub fn new(model: SavedModel, bytes: u64) -> Arc<Engine> {
        let loaded = Arc::new(Loaded {
            model,
            generation: 1,
            bytes,
        });
        emit(
            NO_PARTY,
            EventKind::ModelReload {
                generation: 1,
                bytes,
            },
        );
        Arc::new(Engine {
            current: RwLock::new(loaded),
            generation: AtomicU64::new(1),
        })
    }

    /// Pins the current snapshot.
    pub fn current(&self) -> Arc<Loaded> {
        Arc::clone(&self.current.read().expect("engine lock").clone())
    }

    /// Installs `model` as the new current snapshot and returns its
    /// generation. Requests already holding the old snapshot finish on it.
    pub fn swap(&self, model: SavedModel, bytes: u64) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let loaded = Arc::new(Loaded {
            model,
            generation,
            bytes,
        });
        *self.current.write().expect("engine lock") = loaded;
        emit(NO_PARTY, EventKind::ModelReload { generation, bytes });
        generation
    }

    /// Scores a batch of `rows` samples flattened row-major into `xs`
    /// (`xs.len() == rows × features`). Returns one decision margin per
    /// row, all computed against a single pinned model snapshot.
    ///
    /// # Errors
    ///
    /// [`ScoreError`] (after emitting [`EventKind::ScoreRejected`]) when
    /// `features` disagrees with the model, the flattened length is not a
    /// multiple of `features`, or the batch is empty.
    pub fn score_batch(&self, features: usize, xs: &[f64]) -> Result<Vec<f64>, ScoreError> {
        let snapshot = self.current();
        let reject = |rows: usize, reason: String| {
            emit(NO_PARTY, EventKind::ScoreRejected { batch: rows as u32 });
            Err(ScoreError::new(reason))
        };
        if features == 0 || xs.is_empty() {
            return reject(0, "empty batch".into());
        }
        if features != snapshot.model.features() {
            return reject(
                xs.len() / features.max(1),
                format!(
                    "request has {features} features but the model expects {}",
                    snapshot.model.features()
                ),
            );
        }
        if !xs.len().is_multiple_of(features) {
            return reject(
                xs.len() / features,
                format!(
                    "{} values is not a whole number of {features}-feature rows",
                    xs.len()
                ),
            );
        }
        let rows = xs.len() / features;
        let start = Instant::now();
        let mut margins = Vec::with_capacity(rows);
        for row in xs.chunks_exact(features) {
            let margin = snapshot
                .model
                .decision(row)
                .map_err(|e| ScoreError::new(format!("{e}")))?;
            margins.push(margin);
        }
        emit(
            NO_PARTY,
            EventKind::ScoreBatch {
                batch: rows as u32,
                elapsed_ns: start.elapsed().as_nanos() as u64,
            },
        );
        Ok(margins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_svm::LinearSvm;

    fn linear(w: Vec<f64>, b: f64) -> SavedModel {
        SavedModel::Linear(LinearSvm::from_parts(w, b))
    }

    #[test]
    fn batches_score_against_one_snapshot() {
        let engine = Engine::new(linear(vec![1.0, 2.0], 0.5), 64);
        let margins = engine.score_batch(2, &[1.0, 1.0, -1.0, 0.5]).unwrap();
        assert_eq!(margins, vec![3.5, 0.5]);
    }

    #[test]
    fn swap_bumps_generation_and_changes_scores() {
        let engine = Engine::new(linear(vec![1.0], 0.0), 8);
        assert_eq!(engine.current().generation, 1);
        let pinned = engine.current();
        let gen = engine.swap(linear(vec![-1.0], 0.0), 8);
        assert_eq!(gen, 2);
        assert_eq!(engine.current().generation, 2);
        // A request that pinned the old snapshot still scores with it.
        assert_eq!(pinned.model.decision(&[2.0]).unwrap(), 2.0);
        assert_eq!(engine.score_batch(1, &[2.0]).unwrap(), vec![-2.0]);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let engine = Engine::new(linear(vec![1.0, 2.0], 0.0), 8);
        assert!(engine.score_batch(3, &[1.0, 2.0, 3.0]).is_err());
        assert!(engine.score_batch(2, &[1.0, 2.0, 3.0]).is_err());
        assert!(engine.score_batch(2, &[]).is_err());
        assert!(engine.score_batch(0, &[1.0]).is_err());
    }
}
