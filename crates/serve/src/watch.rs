//! Hot-reload: a polling watcher that re-reads the model file on change.
//!
//! `std` offers no portable file-notification or signal API, so the
//! watcher polls the file's fingerprint on an interval (default 500 ms).
//! When it changes it re-loads the file through [`SavedModel::load`]; the
//! CRC trailer rejects torn or half-written reads, and on any load error
//! the engine keeps serving the previous model. Writers that use
//! [`SavedModel::save`]'s atomic temp-and-rename never expose a torn file
//! in the first place, so in practice one poll tick after the rename the
//! new model is live.
//!
//! The fingerprint is mtime + length + the CRC-32 the `PPMLMODL` format
//! already stores in its trailer. mtime + length alone is not enough: a
//! rewrite that lands within the filesystem's mtime granularity with an
//! identical byte length (two same-shape models saved back to back) is
//! invisible to metadata, and the stale model would serve forever. The
//! trailer CRC is content-derived, so any payload change flips it.

use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, SystemTime};

use crate::engine::Engine;
use crate::model::SavedModel;

/// Fingerprint of a file state: (mtime, length, trailer CRC-32).
type Stamp = (SystemTime, u64, u32);

/// The `PPMLMODL` trailer: the last 4 bytes are the little-endian
/// CRC-32 of everything before them. For a file too short to carry a
/// trailer (or an unreadable one) the CRC slot is 0 — the load will
/// reject it anyway; the stamp only has to *change* when content does.
fn trailer_crc(path: &std::path::Path, len: u64) -> u32 {
    if len < 4 {
        return 0;
    }
    let Ok(mut file) = std::fs::File::open(path) else {
        return 0;
    };
    if file.seek(SeekFrom::End(-4)).is_err() {
        return 0;
    }
    let mut crc = [0u8; 4];
    if file.read_exact(&mut crc).is_err() {
        return 0;
    }
    u32::from_le_bytes(crc)
}

fn stamp(path: &std::path::Path) -> Option<Stamp> {
    let meta = std::fs::metadata(path).ok()?;
    let len = meta.len();
    Some((meta.modified().ok()?, len, trailer_crc(path, len)))
}

/// Handle for a running model watcher; dropping it stops the thread.
pub struct ModelWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ModelWatcher {
    /// Starts polling `path` every `interval`, swapping `engine` to each
    /// successfully loaded new version.
    pub fn spawn(path: PathBuf, engine: Arc<Engine>, interval: Duration) -> ModelWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let mut last = stamp(&path);
            while !stop_flag.load(Ordering::SeqCst) {
                thread::sleep(interval);
                let now = stamp(&path);
                if now.is_some() && now != last {
                    // On a torn or mid-write file the load fails; `last`
                    // is left alone so the next tick retries, and the old
                    // model keeps serving.
                    if let Ok(model) = SavedModel::load(&path) {
                        let bytes = now.map(|(_, len, _)| len).unwrap_or(0);
                        engine.swap(model, bytes);
                        last = now;
                    }
                }
            }
        });
        ModelWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the polling thread to exit and joins it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ModelWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_svm::LinearSvm;

    fn linear(w: Vec<f64>, b: f64) -> SavedModel {
        SavedModel::Linear(LinearSvm::from_parts(w, b))
    }

    fn wait_for_generation(engine: &Engine, want: u64) -> bool {
        for _ in 0..400 {
            if engine.current().generation >= want {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn watcher_picks_up_a_rewrite_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("ppml-watch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        linear(vec![1.0], 0.0).save(&path).unwrap();

        let engine = Engine::new(SavedModel::load(&path).unwrap(), 0);
        let mut watcher =
            ModelWatcher::spawn(path.clone(), Arc::clone(&engine), Duration::from_millis(10));

        // A corrupt overwrite must NOT be swapped in.
        std::fs::write(&path, b"PPMLMODLgarbage-that-fails-crc").unwrap();
        thread::sleep(Duration::from_millis(80));
        assert_eq!(engine.current().generation, 1);
        assert_eq!(engine.score_batch(1, &[3.0]).unwrap(), vec![3.0]);

        // A valid rewrite is, and scores flip with it.
        linear(vec![-1.0], 0.0).save(&path).unwrap();
        assert!(wait_for_generation(&engine, 2), "reload never happened");
        assert_eq!(engine.score_batch(1, &[3.0]).unwrap(), vec![-3.0]);

        watcher.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_length_rewrite_within_mtime_granularity_still_reloads() {
        // Two same-shape models encode to identical byte lengths; pinning
        // the mtime makes the metadata fingerprint identical too. Only
        // the trailer CRC distinguishes them — the old mtime+len stamp
        // never reloaded and served the stale model forever.
        let dir = std::env::temp_dir().join(format!("ppml-watch-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        linear(vec![1.0], 0.0).save(&path).unwrap();
        let pinned_mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
        let initial_len = std::fs::metadata(&path).unwrap().len();

        let engine = Engine::new(SavedModel::load(&path).unwrap(), 0);
        let mut watcher =
            ModelWatcher::spawn(path.clone(), Arc::clone(&engine), Duration::from_millis(10));

        let mut expected_generation = 1;
        for weight in [-1.0, 2.0, -3.0] {
            // Stage the rewrite beside the watched path, pin its mtime to
            // the original, then rename it in (rename preserves mtime):
            // the watched path never exposes a differing mtime or length,
            // so only the CRC can betray the change.
            let side = dir.join("incoming.bin");
            linear(vec![weight], 0.0).save(&side).unwrap();
            assert_eq!(std::fs::metadata(&side).unwrap().len(), initial_len);
            let f = std::fs::File::options().write(true).open(&side).unwrap();
            f.set_modified(pinned_mtime).unwrap();
            drop(f);
            std::fs::rename(&side, &path).unwrap();

            expected_generation += 1;
            assert!(
                wait_for_generation(&engine, expected_generation),
                "generation never ticked for the same-length rewrite to w={weight}"
            );
            assert_eq!(engine.score_batch(1, &[1.0]).unwrap(), vec![weight]);
        }

        watcher.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
