//! Hot-reload: a polling watcher that re-reads the model file on change.
//!
//! `std` offers no portable file-notification or signal API, so the
//! watcher polls mtime + length on an interval (default 500 ms). When
//! either changes it re-loads the file through [`SavedModel::load`]; the
//! CRC trailer rejects torn or half-written reads, and on any load error
//! the engine keeps serving the previous model. Writers that use
//! [`SavedModel::save`]'s atomic temp-and-rename never expose a torn file
//! in the first place, so in practice one poll tick after the rename the
//! new model is live.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, SystemTime};

use crate::engine::Engine;
use crate::model::SavedModel;

/// Fingerprint of a file state: (mtime, length).
type Stamp = (SystemTime, u64);

fn stamp(path: &std::path::Path) -> Option<Stamp> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// Handle for a running model watcher; dropping it stops the thread.
pub struct ModelWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ModelWatcher {
    /// Starts polling `path` every `interval`, swapping `engine` to each
    /// successfully loaded new version.
    pub fn spawn(path: PathBuf, engine: Arc<Engine>, interval: Duration) -> ModelWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let mut last = stamp(&path);
            while !stop_flag.load(Ordering::SeqCst) {
                thread::sleep(interval);
                let now = stamp(&path);
                if now.is_some() && now != last {
                    // On a torn or mid-write file the load fails; `last`
                    // is left alone so the next tick retries, and the old
                    // model keeps serving.
                    if let Ok(model) = SavedModel::load(&path) {
                        let bytes = now.map(|(_, len)| len).unwrap_or(0);
                        engine.swap(model, bytes);
                        last = now;
                    }
                }
            }
        });
        ModelWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the polling thread to exit and joins it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ModelWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppml_svm::LinearSvm;

    fn linear(w: Vec<f64>, b: f64) -> SavedModel {
        SavedModel::Linear(LinearSvm::from_parts(w, b))
    }

    fn wait_for_generation(engine: &Engine, want: u64) -> bool {
        for _ in 0..400 {
            if engine.current().generation >= want {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn watcher_picks_up_a_rewrite_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("ppml-watch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        linear(vec![1.0], 0.0).save(&path).unwrap();

        let engine = Engine::new(SavedModel::load(&path).unwrap(), 0);
        let mut watcher =
            ModelWatcher::spawn(path.clone(), Arc::clone(&engine), Duration::from_millis(10));

        // A corrupt overwrite must NOT be swapped in.
        std::fs::write(&path, b"PPMLMODLgarbage-that-fails-crc").unwrap();
        thread::sleep(Duration::from_millis(80));
        assert_eq!(engine.current().generation, 1);
        assert_eq!(engine.score_batch(1, &[3.0]).unwrap(), vec![3.0]);

        // A valid rewrite is, and scores flip with it.
        linear(vec![-1.0], 0.0).save(&path).unwrap();
        assert!(wait_for_generation(&engine, 2), "reload never happened");
        assert_eq!(engine.score_batch(1, &[3.0]).unwrap(), vec![-3.0]);

        watcher.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
