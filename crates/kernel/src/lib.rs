//! Kernel functions, Gram matrices and landmark sets for nonlinear SVMs.
//!
//! The paper's nonlinear trainers (§III-B, §IV-B) never materialize the
//! feature map `φ(·)`; everything is expressed through the kernel function
//! `K(x, y) = ⟨φ(x), φ(y)⟩`. This crate provides the three kernels the paper
//! lists (polynomial, radial-basis-function, sigmoid) plus the linear kernel,
//! Gram/cross-Gram matrix construction, and the landmark machinery used by
//! the reduced-space consensus `G·w = z` with `G = φ(X_g)`.
//!
//! Note: the paper prints the RBF kernel as `e^{‖x_i − x_j‖²}` — a clear
//! typo (that kernel is unbounded and not positive definite); we implement
//! the standard `e^{−γ‖x_i − x_j‖²}`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), ppml_linalg::LinalgError> {
//! use ppml_kernel::Kernel;
//! use ppml_linalg::Matrix;
//!
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]])?;
//! let k = Kernel::Rbf { gamma: 0.5 };
//! let gram = k.gram(&x);
//! assert_eq!(gram.shape(), (3, 3));
//! assert!((gram[(0, 0)] - 1.0).abs() < 1e-12); // K(x, x) = 1 for RBF
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
mod landmarks;
mod nystrom;

pub use landmarks::{LandmarkSet, LandmarkStrategy};
pub use nystrom::NystromFactor;

use ppml_linalg::{vecops, Matrix};

/// A positive-(semi)definite kernel function.
///
/// The variants mirror §III-B of the paper. All variants are `Copy` so
/// trainers can store the kernel by value in their configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Kernel {
    /// `K(x, y) = ⟨x, y⟩` — recovers the linear SVM.
    #[default]
    Linear,
    /// `K(x, y) = (a·⟨x, y⟩ + b)^degree`.
    Polynomial {
        /// Scale on the inner product.
        a: f64,
        /// Additive offset.
        b: f64,
        /// Polynomial degree (`d` in the paper).
        degree: u32,
    },
    /// `K(x, y) = exp(−γ·‖x − y‖²)`.
    Rbf {
        /// Bandwidth parameter `γ > 0`.
        gamma: f64,
    },
    /// `K(x, y) = tanh(⟨x, y⟩ + c)`.
    ///
    /// Only conditionally positive definite; offered because the paper lists
    /// it, but the RBF and polynomial kernels are the recommended choices.
    Sigmoid {
        /// Additive offset `c`.
        c: f64,
    },
}

impl Kernel {
    /// Evaluates `K(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != y.len()`.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vecops::dot(x, y),
            Kernel::Polynomial { a, b, degree } => (a * vecops::dot(x, y) + b).powi(degree as i32),
            Kernel::Rbf { gamma } => (-gamma * vecops::dist_sq(x, y)).exp(),
            Kernel::Sigmoid { c } => (vecops::dot(x, y) + c).tanh(),
        }
    }

    /// Gram matrix `K(X, X)` over the rows of `x` (symmetric, built from the
    /// lower triangle).
    pub fn gram(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.eval(x.row(i), x.row(j));
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }

    /// Cross-Gram matrix `K(A, B)` with entry `(i, j) = K(a_i, b_j)` over
    /// rows of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different column counts.
    pub fn cross_gram(&self, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(
            a.cols(),
            b.cols(),
            "cross_gram: feature dimensions differ ({} vs {})",
            a.cols(),
            b.cols()
        );
        Matrix::from_fn(a.rows(), b.rows(), |i, j| self.eval(a.row(i), b.row(j)))
    }

    /// Kernel row `K(x, B)` against every row of `b` — the hot path of
    /// prediction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != b.cols()`.
    pub fn eval_row(&self, x: &[f64], b: &Matrix) -> Vec<f64> {
        (0..b.rows()).map(|j| self.eval(x, b.row(j))).collect()
    }

    /// `true` for kernels that are positive definite for all parameter
    /// choices used here (linear, polynomial with `a>0, b≥0`, RBF with
    /// `γ>0`).
    pub fn is_positive_definite(&self) -> bool {
        match *self {
            Kernel::Linear => true,
            Kernel::Polynomial { a, b, .. } => a > 0.0 && b >= 0.0,
            Kernel::Rbf { gamma } => gamma > 0.0,
            Kernel::Sigmoid { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x3() -> Matrix {
        Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 2.0]]).unwrap()
    }

    #[test]
    fn linear_matches_dot() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn polynomial_known_value() {
        let k = Kernel::Polynomial {
            a: 1.0,
            b: 1.0,
            degree: 2,
        };
        // (1*2 + 1)^2 = 9
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 9.0);
    }

    #[test]
    fn rbf_properties() {
        let k = Kernel::Rbf { gamma: 0.7 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-15);
        // Symmetric, in (0, 1], decreasing with distance.
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[5.0, 0.0]);
        assert!(near > far && far > 0.0 && near <= 1.0);
        assert_eq!(
            k.eval(&[0.0, 1.0], &[2.0, 0.0]),
            k.eval(&[2.0, 0.0], &[0.0, 1.0])
        );
    }

    #[test]
    fn sigmoid_bounded() {
        let k = Kernel::Sigmoid { c: 0.0 };
        let v = k.eval(&[10.0], &[10.0]);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal_for_rbf() {
        let g = Kernel::Rbf { gamma: 1.0 }.gram(&x3());
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-15);
            for j in 0..3 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn gram_is_positive_semidefinite_for_rbf() {
        // Check via Cholesky of G + tiny jitter.
        let mut g = Kernel::Rbf { gamma: 0.3 }.gram(&x3());
        g.add_diag(1e-9);
        assert!(g.cholesky().is_ok());
    }

    #[test]
    fn cross_gram_shape_and_consistency() {
        let a = x3();
        let b = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let k = Kernel::Polynomial {
            a: 0.5,
            b: 1.0,
            degree: 3,
        };
        let cg = k.cross_gram(&a, &b);
        assert_eq!(cg.shape(), (3, 1));
        assert_eq!(cg[(1, 0)], k.eval(a.row(1), b.row(0)));
        // K(X, X) from cross_gram must equal gram().
        let g1 = k.cross_gram(&a, &a);
        let g2 = k.gram(&a);
        assert!(g1.max_abs_diff(&g2).unwrap() < 1e-15);
    }

    #[test]
    fn eval_row_matches_cross_gram() {
        let a = x3();
        let k = Kernel::Rbf { gamma: 2.0 };
        let row = k.eval_row(&[0.5, 0.5], &a);
        for (j, v) in row.iter().enumerate() {
            assert_eq!(*v, k.eval(&[0.5, 0.5], a.row(j)));
        }
    }

    #[test]
    fn positive_definiteness_flags() {
        assert!(Kernel::Linear.is_positive_definite());
        assert!(Kernel::Rbf { gamma: 1.0 }.is_positive_definite());
        assert!(!Kernel::Rbf { gamma: -1.0 }.is_positive_definite());
        assert!(!Kernel::Sigmoid { c: 0.0 }.is_positive_definite());
    }
}
