//! Nyström low-rank kernel approximation.
//!
//! The vertical kernel trainer factors `(I + ρK_m)` with `K_m` an `N × N`
//! Gram matrix — cubic setup and quadratic memory, which caps the usable
//! `N` well below the paper's HIGGS scale. The Nyström method replaces
//! `K` with `K̃ = C·W⁻¹·Cᵀ` where `C = K(X, L)` against `l ≪ N` landmark
//! rows and `W = K(L, L)`; the Woodbury identity then solves
//! `(I + ρK̃)⁻¹e = e − C·(W/ρ + CᵀC)⁻¹·Cᵀe` in `O(N·l)` per application
//! after an `O(N·l²)` setup. This is the same landmark idea the paper uses
//! for the *horizontal* kernel consensus (§IV-B), applied to the vertical
//! scheme's per-node operator.

use ppml_linalg::{vecops, Cholesky, LinalgError, Matrix};

use crate::Kernel;

/// A fitted Nyström factor for the regularized solve
/// `(I + ρK̃)⁻¹` and the associated landmark expansion.
///
/// # Example
///
/// ```
/// use ppml_kernel::{Kernel, NystromFactor};
/// use ppml_linalg::Matrix;
///
/// # fn main() -> Result<(), ppml_linalg::LinalgError> {
/// let x = Matrix::from_fn(40, 3, |i, j| ((i * 3 + j) as f64 * 0.7).sin());
/// let ny = NystromFactor::fit(&x, Kernel::Rbf { gamma: 0.5 }, 10, 100.0, 7)?;
/// let e = vec![1.0; 40];
/// let alpha = ny.solve(&e)?;            // ≈ (I + ρK)⁻¹ e
/// assert_eq!(alpha.len(), 40);
/// assert_eq!(ny.rank(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NystromFactor {
    /// `C = K(X, L)`, `N × l`.
    c: Matrix,
    /// Cholesky of `W = K(L, L) + jitter`.
    chol_w: Cholesky,
    /// Cholesky of `S = W/ρ + CᵀC`.
    chol_s: Cholesky,
    landmarks: Matrix,
    rho: f64,
}

impl NystromFactor {
    /// Fits the factor over the rows of `x` with `l` landmarks subsampled
    /// deterministically by `seed`.
    ///
    /// # Errors
    ///
    /// [`LinalgError`] when a factorization breaks down (only possible for
    /// non-positive-definite kernels).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `l > x.rows()` (from the landmark subsampler).
    pub fn fit(
        x: &Matrix,
        kernel: Kernel,
        l: usize,
        rho: f64,
        seed: u64,
    ) -> Result<Self, LinalgError> {
        let landmarks = crate::LandmarkSet::subsample(x, l, seed);
        Self::fit_with_landmarks(x, kernel, landmarks.points().clone(), rho)
    }

    /// Fits with explicitly chosen landmark rows.
    ///
    /// # Errors
    ///
    /// As [`NystromFactor::fit`].
    pub fn fit_with_landmarks(
        x: &Matrix,
        kernel: Kernel,
        landmarks: Matrix,
        rho: f64,
    ) -> Result<Self, LinalgError> {
        let c = kernel.cross_gram(x, &landmarks);
        let mut w = kernel.gram(&landmarks);
        w.add_diag(1e-8);
        let chol_w = w.cholesky()?;
        // S = W/ρ + CᵀC
        let mut s = c.t_matmul(&c)?;
        for i in 0..s.rows() {
            for j in 0..s.cols() {
                s[(i, j)] += w[(i, j)] / rho;
            }
        }
        let chol_s = s.cholesky()?;
        Ok(NystromFactor {
            c,
            chol_w,
            chol_s,
            landmarks,
            rho,
        })
    }

    /// The approximation rank `l`.
    pub fn rank(&self) -> usize {
        self.landmarks.rows()
    }

    /// The landmark rows.
    pub fn landmarks(&self) -> &Matrix {
        &self.landmarks
    }

    /// Applies `(I + ρK̃)⁻¹` to `e` via Woodbury in `O(N·l)`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `e.len() != N`.
    pub fn solve(&self, e: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let cte = self.c.t_matvec(e)?;
        let t = self.chol_s.solve(&cte)?;
        let correction = self.c.matvec(&t)?;
        Ok(vecops::sub(e, &correction))
    }

    /// Landmark expansion coefficients `w_L = ρ·W⁻¹·Cᵀα` such that the
    /// node's contribution is `c = C·w_L` and its discriminant piece is
    /// `f(x) = K(x, L)·w_L`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `alpha.len() != N`.
    pub fn landmark_coeffs(&self, alpha: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let cta = self.c.t_matvec(alpha)?;
        Ok(vecops::scale(&self.chol_w.solve(&cta)?, self.rho))
    }

    /// The node contribution `C·w_L` for given landmark coefficients.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `coeffs.len() != l`.
    pub fn contribution(&self, coeffs: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.c.matvec(coeffs)
    }

    /// Materializes `K̃` (tests only — quadratic memory).
    pub fn approx_gram(&self) -> Result<Matrix, LinalgError> {
        // K̃ = C·W⁻¹·Cᵀ.
        let winv_ct = self.chol_w.solve_matrix(&self.c.transpose())?;
        self.c.matmul(&winv_ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Matrix {
        Matrix::from_fn(n, 4, |i, j| ((i * 4 + j) as f64 * 0.37).sin() * 2.0)
    }

    #[test]
    fn full_rank_nystrom_is_exact() {
        // With every row a landmark, K̃ = K exactly.
        let x = data(20);
        let kernel = Kernel::Rbf { gamma: 0.3 };
        let ny = NystromFactor::fit_with_landmarks(&x, kernel, x.clone(), 100.0).unwrap();
        let exact = kernel.gram(&x);
        let approx = ny.approx_gram().unwrap();
        assert!(exact.max_abs_diff(&approx).unwrap() < 1e-4);
    }

    #[test]
    fn solve_matches_dense_woodbury_free_solve() {
        let x = data(25);
        let kernel = Kernel::Rbf { gamma: 0.3 };
        let rho = 50.0;
        let ny = NystromFactor::fit_with_landmarks(&x, kernel, x.clone(), rho).unwrap();
        // Dense reference with the same (full-rank) approximate kernel.
        let mut op = ny.approx_gram().unwrap().scale(rho);
        op.add_diag(1.0);
        let e: Vec<f64> = (0..25).map(|i| (i as f64).cos()).collect();
        let dense = op.cholesky().unwrap().solve(&e).unwrap();
        let fast = ny.solve(&e).unwrap();
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn low_rank_approximates_smooth_kernels_well() {
        // RBF Grams of clustered data decay fast; rank 10 of 40 should be
        // close in operator action.
        let x = data(40);
        let kernel = Kernel::Rbf { gamma: 0.1 };
        let ny = NystromFactor::fit(&x, kernel, 10, 100.0, 3).unwrap();
        let exact = kernel.gram(&x);
        let approx = ny.approx_gram().unwrap();
        let rel = approx.sub(&exact).unwrap().fro_norm() / exact.fro_norm();
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn contribution_consistency() {
        // c = C·w_L must equal ρ·K̃·α.
        let x = data(30);
        let kernel = Kernel::Rbf { gamma: 0.2 };
        let rho = 10.0;
        let ny = NystromFactor::fit(&x, kernel, 12, rho, 4).unwrap();
        let e: Vec<f64> = (0..30).map(|i| (i as f64 * 0.9).sin()).collect();
        let alpha = ny.solve(&e).unwrap();
        let w_l = ny.landmark_coeffs(&alpha).unwrap();
        let c1 = ny.contribution(&w_l).unwrap();
        let c2 = vecops::scale(&ny.approx_gram().unwrap().matvec(&alpha).unwrap(), rho);
        for (a, b) in c1.iter().zip(&c2) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn shape_validation() {
        let x = data(10);
        let ny = NystromFactor::fit(&x, Kernel::Linear, 3, 1.0, 5).unwrap();
        assert!(ny.solve(&[0.0; 9]).is_err());
        assert!(ny.landmark_coeffs(&[0.0; 9]).is_err());
        assert!(ny.contribution(&[0.0; 4]).is_err());
        assert_eq!(ny.rank(), 3);
    }
}
