use ppml_linalg::Matrix;

use crate::Kernel;

/// How landmark points `X_g` are chosen for the reduced-space consensus.
///
/// §IV-B: "`X_g` could be randomly chosen such that `K(X_g, X_g)` is
/// non-singular". The strategies here are the two natural readings, plus a
/// deterministic grid useful in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// Sample `l` rows (without replacement) from the local training data.
    /// This is what the evaluation uses: the landmarks then live where the
    /// data lives, which keeps `K(X_g, X)` informative.
    SubsampleRows,
    /// Draw `l` i.i.d. standard-normal points in feature space. Fully
    /// data-independent (the landmarks reveal nothing about any learner's
    /// data), at some cost in approximation quality.
    GaussianNoise,
}

/// A shared set of `l` landmark points defining the dimension-reduction map
/// `G = φ(X_g)` of §IV-B.
///
/// All learners must agree on the same landmark set before training; in the
/// MapReduce deployment it is broadcast once by the driver.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ppml_linalg::LinalgError> {
/// use ppml_kernel::{Kernel, LandmarkSet};
/// use ppml_linalg::Matrix;
///
/// let data = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0], &[0.5, 0.5]])?;
/// let lm = LandmarkSet::subsample(&data, 2, 42);
/// let kgg = lm.gram(Kernel::Rbf { gamma: 1.0 });
/// assert_eq!(kgg.shape(), (2, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LandmarkSet {
    points: Matrix,
}

impl LandmarkSet {
    /// Builds a landmark set from explicitly chosen points (one per row).
    pub fn from_points(points: Matrix) -> Self {
        LandmarkSet { points }
    }

    /// Samples `l` distinct rows of `data` using a splittable xorshift
    /// stream seeded with `seed` (deterministic across runs and platforms).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `l > data.rows()`.
    pub fn subsample(data: &Matrix, l: usize, seed: u64) -> Self {
        assert!(l > 0, "landmark count must be positive");
        assert!(
            l <= data.rows(),
            "cannot subsample {l} landmarks from {} rows",
            data.rows()
        );
        // Partial Fisher-Yates over the index set.
        let mut idx: Vec<usize> = (0..data.rows()).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in 0..l {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = i + (state as usize) % (idx.len() - i);
            idx.swap(i, j);
        }
        LandmarkSet {
            points: data.select_rows(&idx[..l]),
        }
    }

    /// Draws `l` i.i.d. standard-normal landmark points of dimension `dim`
    /// (Box-Muller over a xorshift stream; deterministic given `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `dim == 0`.
    pub fn gaussian(l: usize, dim: usize, seed: u64) -> Self {
        assert!(l > 0 && dim > 0, "landmark set must be non-empty");
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(f64::MIN_POSITIVE, 1.0)
        };
        let points = Matrix::from_fn(l, dim, |_, _| {
            let u1 = uniform();
            let u2 = uniform();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        });
        LandmarkSet { points }
    }

    /// Number of landmarks `l` (the reduced consensus dimension).
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// `true` if the set contains no landmarks (never constructible through
    /// the public constructors, but required by convention alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Borrows the landmark points, one per row.
    pub fn points(&self) -> &Matrix {
        &self.points
    }

    /// `K(X_g, X_g)` under `kernel`.
    pub fn gram(&self, kernel: Kernel) -> Matrix {
        kernel.gram(&self.points)
    }

    /// `K(X_g, X)` against an arbitrary data matrix.
    ///
    /// # Panics
    ///
    /// Panics if `x` has a different feature dimension.
    pub fn cross_gram(&self, kernel: Kernel, x: &Matrix) -> Matrix {
        kernel.cross_gram(&self.points, x)
    }

    /// The regularized reduced-space operator `K_g = I + ρM·K(X_g, X_g)`
    /// of §IV-B (with the coefficient re-derived; see DESIGN.md §2), plus a
    /// tiny jitter so the Cholesky factorization in the trainer cannot break
    /// down on nearly-duplicate landmarks.
    pub fn kg(&self, kernel: Kernel, rho: f64, m_learners: usize) -> Matrix {
        let mut kg = self.gram(kernel).scale(rho * m_learners as f64);
        kg.add_diag(1.0 + 1e-10);
        kg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_fn(10, 3, |i, j| ((i * 3 + j) as f64 * 0.37).sin())
    }

    #[test]
    fn subsample_draws_existing_rows() {
        let d = data();
        let lm = LandmarkSet::subsample(&d, 4, 1);
        assert_eq!(lm.len(), 4);
        assert!(!lm.is_empty());
        for i in 0..4 {
            let p = lm.points().row(i);
            assert!(
                (0..d.rows()).any(|r| d.row(r) == p),
                "landmark {i} is not a data row"
            );
        }
    }

    #[test]
    fn subsample_rows_are_distinct() {
        let d = data();
        let lm = LandmarkSet::subsample(&d, 10, 9);
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(lm.points().row(i), lm.points().row(j));
            }
        }
    }

    #[test]
    fn subsample_is_deterministic_in_seed() {
        let d = data();
        assert_eq!(
            LandmarkSet::subsample(&d, 3, 5),
            LandmarkSet::subsample(&d, 3, 5)
        );
        assert_ne!(
            LandmarkSet::subsample(&d, 3, 5),
            LandmarkSet::subsample(&d, 3, 6)
        );
    }

    #[test]
    #[should_panic(expected = "cannot subsample")]
    fn subsample_rejects_oversize() {
        LandmarkSet::subsample(&data(), 11, 0);
    }

    #[test]
    fn gaussian_shape_and_moments() {
        let lm = LandmarkSet::gaussian(500, 2, 3);
        assert_eq!(lm.points().shape(), (500, 2));
        let mean: f64 = lm.points().as_slice().iter().sum::<f64>() / 1000.0;
        let var: f64 = lm.points().as_slice().iter().map(|v| v * v).sum::<f64>() / 1000.0;
        assert!(mean.abs() < 0.15, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.2, "variance {var} too far from 1");
    }

    #[test]
    fn kg_is_positive_definite() {
        let d = data();
        let lm = LandmarkSet::subsample(&d, 5, 2);
        let kg = lm.kg(Kernel::Rbf { gamma: 0.5 }, 100.0, 4);
        assert!(kg.cholesky().is_ok());
        assert_eq!(kg.shape(), (5, 5));
    }

    #[test]
    fn cross_gram_dimension() {
        let d = data();
        let lm = LandmarkSet::subsample(&d, 5, 2);
        let cg = lm.cross_gram(Kernel::Linear, &d);
        assert_eq!(cg.shape(), (5, 10));
    }
}
